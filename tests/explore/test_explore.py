"""Design-space exploration subsystem tests."""

import csv
import json

import pytest

from repro.explore import (
    DesignSpace,
    ExplorationReport,
    PlatformSpec,
    WorkloadSpec,
    explore,
)
from repro.explore.runner import _run_task
from repro.partition import EngineConfig
from repro.reporting import (
    render_exploration,
    write_exploration_csv,
    write_exploration_json,
)
from repro.search import AlgorithmSpec


@pytest.fixture(scope="module")
def small_space():
    return DesignSpace(
        workloads=(
            WorkloadSpec.ofdm(),
            WorkloadSpec.synthetic(12, seed=3, comm_intensity=0.8),
        ),
        platforms=(
            PlatformSpec(afpga=1500, cgc_count=2),
            PlatformSpec(afpga=5000, cgc_count=3),
        ),
        constraint_fractions=(1.0, 0.6),
    )


@pytest.fixture(scope="module")
def small_report(small_space):
    return explore(small_space, max_workers=1)


class TestSpecs:
    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="mp3")

    def test_labels(self):
        # Labels equal the built workload names, so they work directly as
        # ExplorationReport query keys.
        assert WorkloadSpec.ofdm().label == "ofdm-transmitter"
        assert WorkloadSpec.jpeg().label == "jpeg-encoder"
        assert WorkloadSpec.synthetic(50, seed=4).label == "synthetic-50b-s4"
        assert PlatformSpec(afpga=1500, cgc_count=2).label.startswith("A1500-2x")

    def test_paper_app_labels_predict_built_names(self):
        for spec in (WorkloadSpec.ofdm(), WorkloadSpec.jpeg()):
            assert spec.label == spec.build().name

    def test_label_distinguishes_shape_parameters(self):
        a = WorkloadSpec.synthetic(100, seed=1, comm_intensity=0.2)
        b = WorkloadSpec.synthetic(100, seed=1, comm_intensity=0.8)
        assert a.label != b.label
        assert a.label == a.build().name  # label predicts the built name

    def test_bare_synthetic_spec_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="synthetic")

    def test_label_honours_custom_name(self):
        spec = WorkloadSpec.synthetic(8, seed=1, name="app")
        assert spec.label == "app"
        assert spec.build().name == "app"

    def test_workload_spec_builds(self):
        workload = WorkloadSpec.synthetic(8, seed=1).build()
        assert workload.block_count == 8

    def test_platform_spec_builds(self):
        platform = PlatformSpec(afpga=2000, cgc_count=2, clock_ratio=4).build()
        assert platform.area_budget == 2000
        assert platform.clock_ratio == 4

    def test_invalid_platform_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(afpga=0)

    def test_specs_are_hashable(self):
        assert len({WorkloadSpec.ofdm(), WorkloadSpec.ofdm()}) == 1


class TestDesignSpace:
    def test_size_and_tasks(self, small_space):
        assert small_space.size == 2 * 2 * 2
        tasks = small_space.tasks()
        assert len(tasks) == 4  # one task per (workload, platform) pair
        assert all(t.constraint_fractions == (1.0, 0.6) for t in tasks)

    def test_grid_factory(self):
        space = DesignSpace.grid(
            [WorkloadSpec.jpeg()],
            afpga_values=(1500, 3000),
            cgc_counts=(1, 2),
            clock_ratios=(2, 3),
            constraint_fractions=(0.5,),
        )
        assert len(space.platforms) == 8
        assert space.size == 8

    def test_grid_reconfiguration_axis(self):
        space = DesignSpace.grid(
            [WorkloadSpec.ofdm()],
            afpga_values=(1500,),
            cgc_counts=(2,),
            reconfig_cycles_values=(0, 20, 80),
            constraint_fractions=(0.5,),
        )
        assert sorted(p.reconfig_cycles for p in space.platforms) == [0, 20, 80]

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(workloads=(), platforms=(PlatformSpec(),))
        with pytest.raises(ValueError):
            DesignSpace(
                workloads=(WorkloadSpec.ofdm(),),
                platforms=(PlatformSpec(),),
                constraint_fractions=(),
            )
        with pytest.raises(ValueError):
            DesignSpace(
                workloads=(WorkloadSpec.ofdm(),),
                platforms=(PlatformSpec(),),
                constraint_fractions=(0.0,),
            )


class TestExplore:
    def test_grid_order_and_size(self, small_space, small_report):
        assert small_report.size == small_space.size
        assert small_report.tasks_run == 4
        # Grid order: workloads x platforms x fractions.
        first = small_report.results[0]
        assert first.workload == "ofdm-transmitter"
        assert first.afpga == 1500
        assert first.constraint_fraction == 1.0

    def test_fraction_one_needs_no_moves(self, small_report):
        for result in small_report.results:
            if result.constraint_fraction == 1.0:
                assert result.constraint_met
                assert result.kernels_moved == 0
                assert result.final_cycles == result.initial_cycles

    def test_records_are_consistent(self, small_report):
        for result in small_report.results:
            assert result.timing_constraint == max(
                1, round(result.initial_cycles * result.constraint_fraction)
            )
            assert result.constraint_met == (
                result.final_cycles <= result.timing_constraint
            )
            assert not (set(result.moved_bb_ids) & set(result.reverted_bb_ids))

    def test_parallel_matches_serial(self, small_space, small_report):
        parallel = explore(small_space, max_workers=2)
        assert parallel.results == small_report.results
        assert parallel.workers_used == 2

    def test_engine_config_propagates(self, small_space):
        strict = explore(
            small_space,
            max_workers=1,
            engine_config=EngineConfig(max_kernels_moved=1),
        )
        assert all(r.kernels_moved <= 1 for r in strict.results)

    def test_full_rescan_reference_mode_honoured(self, small_space):
        """EngineConfig.incremental=False must reach the engine through
        the partitioner layer (regression: the flag was silently
        ignored), visible as the full-rescan evaluation blow-up."""
        incremental = explore(small_space, max_workers=1)
        rescan = explore(
            small_space,
            max_workers=1,
            engine_config=EngineConfig(incremental=False),
        )
        assert rescan.results == incremental.results
        assert (
            rescan.contribution_lookups
            > 2 * incremental.contribution_lookups
        )

    def test_stats_aggregate(self, small_report):
        assert small_report.block_cost_evaluations > 0
        assert small_report.blocks_mapped > 0
        assert small_report.elapsed_seconds > 0.0

    def test_task_prices_each_pair_once(self, small_space):
        workloads: dict = {}
        tables: dict = {}
        outcome = _run_task(small_space.tasks()[0], workloads, tables)
        # One packed table priced every constraint cell of the pair, so
        # each of the 18 OFDM blocks was mapped exactly once, not once
        # per cell.
        assert outcome.blocks_mapped == 18
        # Re-running the task against a warm table cache re-prices
        # nothing at all.
        warm = _run_task(small_space.tasks()[0], workloads, tables)
        assert warm.blocks_mapped == 0
        assert warm.results == outcome.results

    def test_algorithm_cells_share_the_pair_table(self):
        """Different algorithms on the same (workload, platform) pair
        price it once between them (the tentpole sharing claim)."""
        space = DesignSpace(
            workloads=(WorkloadSpec.ofdm(),),
            platforms=(PlatformSpec(afpga=1500, cgc_count=2),),
            constraint_fractions=(0.5,),
            algorithms=(AlgorithmSpec.greedy(), AlgorithmSpec.annealing()),
        )
        greedy_task, annealing_task = space.tasks()
        workloads: dict = {}
        tables: dict = {}
        first = _run_task(greedy_task, workloads, tables)
        assert first.blocks_mapped == 18
        second = _run_task(annealing_task, workloads, tables)
        assert second.blocks_mapped == 0


class TestAlgorithmAxis:
    @pytest.fixture(scope="class")
    def algo_space(self):
        return DesignSpace(
            workloads=(WorkloadSpec.ofdm(),),
            platforms=(PlatformSpec(afpga=1500, cgc_count=2),),
            constraint_fractions=(0.5,),
            algorithms=(
                AlgorithmSpec.greedy(),
                AlgorithmSpec.multi_start(),
                AlgorithmSpec.annealing(seed=2),
            ),
        )

    @pytest.fixture(scope="class")
    def algo_report(self, algo_space):
        return explore(algo_space, max_workers=1)

    def test_size_includes_algorithm_axis(self, algo_space):
        assert algo_space.size == 3
        # One task per (workload, platform, algorithm) triple, so the
        # algorithm axis parallelizes; pricing is shared per pair by
        # the runner's table cache, not by task granularity.
        tasks = algo_space.tasks()
        assert len(tasks) == 3
        assert [t.algorithms for t in tasks] == [
            (spec,) for spec in algo_space.algorithms
        ]

    def test_default_axis_is_greedy_alone(self, small_space, small_report):
        assert small_space.algorithms == (AlgorithmSpec.greedy(),)
        assert small_report.algorithms() == ["greedy"]
        assert all(r.algorithm == "greedy" for r in small_report.results)

    def test_empty_algorithm_axis_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(
                workloads=(WorkloadSpec.ofdm(),),
                platforms=(PlatformSpec(),),
                algorithms=(),
            )

    def test_grid_factory_accepts_algorithms(self):
        space = DesignSpace.grid(
            [WorkloadSpec.ofdm()],
            afpga_values=(1500,),
            cgc_counts=(2,),
            constraint_fractions=(0.5,),
            algorithms=(AlgorithmSpec.greedy(), AlgorithmSpec.annealing()),
        )
        assert space.size == 2

    def test_results_tagged_with_algorithm_label(self, algo_report):
        assert algo_report.algorithms() == [
            "greedy",
            "multi_start",
            "annealing[seed=2]",
        ]
        for result in algo_report.results:
            assert result.to_dict()["algorithm"] == result.algorithm

    def test_heuristics_at_least_match_greedy(self, algo_report):
        # Greedy stops at the constraint; the heuristics minimize fully
        # from a greedy warm start, so they can only end at or below it.
        best = algo_report.best_per_algorithm("ofdm-transmitter", 0.5)
        greedy = best["greedy"]
        for label in ("multi_start", "annealing[seed=2]"):
            assert best[label].final_cycles <= greedy.final_cycles

    def test_best_per_algorithm_filters(self, algo_report):
        assert algo_report.best_per_algorithm("nope") == {}
        best = algo_report.best_per_algorithm()
        assert set(best) == set(algo_report.algorithms())

    def test_for_algorithm_slices(self, algo_report):
        rows = algo_report.for_algorithm("multi_start")
        assert rows and all(r.algorithm == "multi_start" for r in rows)

    def test_parallel_matches_serial_with_algorithms(
        self, algo_space, algo_report
    ):
        parallel = explore(algo_space, max_workers=2)
        assert parallel.results == algo_report.results


class TestReportQueries:
    def test_cheapest_meeting(self, small_report):
        cheapest = small_report.cheapest_meeting("ofdm-transmitter", 0.6)
        assert cheapest is not None
        assert cheapest.constraint_met
        others = [
            r
            for r in small_report.for_workload("ofdm-transmitter")
            if r.constraint_fraction == 0.6 and r.constraint_met
        ]
        assert all(
            (cheapest.afpga, cheapest.cgc_count) <= (r.afpga, r.cgc_count)
            for r in others
        )

    def test_cheapest_meeting_missing(self, small_report):
        assert small_report.cheapest_meeting("nope", 0.6) is None

    def test_best_reduction(self, small_report):
        best = small_report.best_reduction("ofdm-transmitter")
        assert best is not None
        assert best.reduction_percent == max(
            r.reduction_percent
            for r in small_report.for_workload("ofdm-transmitter")
        )

    def test_workload_names(self, small_report):
        # Non-default shape parameters are part of the default name, so
        # two parameterizations can never collide in report queries.
        assert small_report.workload_names() == [
            "ofdm-transmitter",
            "synthetic-12b-s3-ci0.8",
        ]

    def test_summary_mentions_counts(self, small_report):
        text = small_report.summary()
        assert str(small_report.size) in text and "workers" in text


class TestReportingIntegration:
    def test_render(self, small_report):
        text = render_exploration(small_report)
        assert "A_FPGA" in text and "ofdm-transmitter" in text

    def test_csv_roundtrip(self, small_report, tmp_path):
        path = write_exploration_csv(small_report.results, tmp_path / "r.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == small_report.size
        assert rows[0]["workload"] == "ofdm-transmitter"
        assert rows[0]["constraint_met"] in ("True", "False")

    def test_json_roundtrip(self, small_report, tmp_path):
        path = write_exploration_json(small_report, tmp_path / "r.json")
        payload = json.loads(path.read_text())
        assert payload["summary"]["points"] == small_report.size
        assert len(payload["results"]) == small_report.size

    def test_empty_report_renders(self):
        report = ExplorationReport()
        assert "explored 0 points" in report.summary()
        assert render_exploration(report)
