"""Cooperative search deadlines: best-so-far, marked uncertified.

Every engine polls its :class:`~repro.faults.Deadline` at visit-batch
boundaries; an expired budget stops the walk and returns the best
configuration found so far with ``result.partial`` set (``certified``
False).  A generous budget must leave results bit-identical to an
undeadlined run — the deadline is a cut, never a perturbation.
"""

from __future__ import annotations

import pytest

from repro.explore import WorkloadSpec
from repro.faults import Deadline
from repro.partition import EngineConfig
from repro.platform import paper_platform
from repro.search import AlgorithmSpec, make_partitioner

#: 26 supported kernels -> 2^26 subsets; an exhaustive walk takes tens
#: of seconds, so a millisecond budget reliably truncates it.
BIG = WorkloadSpec.synthetic(64, seed=3)
#: Small enough that every engine finishes well inside a 60 s budget.
SMALL = WorkloadSpec.synthetic(18, seed=2)

ENGINE_SPECS = [
    AlgorithmSpec.greedy(),
    AlgorithmSpec.exhaustive(),
    AlgorithmSpec.multi_start(),
    AlgorithmSpec.annealing(),
]


@pytest.fixture(scope="module")
def platform():
    return paper_platform(1500, 2)


@pytest.fixture(scope="module")
def big_workload():
    return BIG.build()


@pytest.fixture(scope="module")
def small_workload():
    return SMALL.build()


def make(algorithm, workload, platform, **config_kwargs):
    return make_partitioner(
        algorithm, workload, platform,
        config=EngineConfig(**config_kwargs),
    )


@pytest.mark.parametrize(
    "spec", ENGINE_SPECS, ids=lambda spec: spec.label
)
def test_generous_deadline_is_a_noop(spec, small_workload, platform):
    baseline = make(spec, small_workload, platform)
    constraint = max(1, baseline.initial_cycles() // 2)
    undeadlined = baseline.run(constraint)
    timed = make(spec, small_workload, platform)
    result = timed.run(constraint, deadline=Deadline.after(60.0))
    assert result == undeadlined
    assert result.partial is False
    assert result.certified is True


@pytest.mark.parametrize(
    "spec", ENGINE_SPECS, ids=lambda spec: spec.label
)
def test_pre_expired_deadline_returns_partial(spec, small_workload, platform):
    partitioner = make(spec, small_workload, platform)
    constraint = max(1, partitioner.initial_cycles() // 2)
    result = partitioner.run(constraint, deadline=Deadline.after(0.0))
    assert result.partial is True
    assert result.certified is False
    # The all-FPGA corner is always a valid configuration.
    assert result.final_cycles >= 1


def test_exhaustive_truncates_mid_walk(big_workload, platform):
    partitioner = make(
        AlgorithmSpec.exhaustive(max_candidates=26), big_workload, platform
    )
    constraint = max(1, partitioner.initial_cycles() // 2)
    result = partitioner.run(constraint, deadline=Deadline.after(0.05))
    assert result.partial is True
    assert result.certified is False
    # Best-so-far: the cut still improved on the all-FPGA corner.
    assert result.final_cycles < partitioner.initial_cycles()
    assert "UNCERTIFIED" in result.summary()


def test_sharded_walk_propagates_partial(big_workload, platform):
    partitioner = make(
        AlgorithmSpec.exhaustive(max_candidates=26, shards=4),
        big_workload, platform, search_workers=1,
    )
    constraint = max(1, partitioner.initial_cycles() // 2)
    result = partitioner.run(constraint, deadline=Deadline.after(0.05))
    assert result.partial is True
    assert result.certified is False


def test_branch_and_bound_honours_deadline(platform):
    # The additive bound is weak on flat-weight comm-heavy workloads, so
    # this pruned walk visits ~1.7M nodes (tens of seconds) undeadlined
    # — a 50 ms budget reliably cuts it mid-walk.
    workload = WorkloadSpec.synthetic(
        128, seed=3, comm_intensity=1.5, weight_skew=1.0
    ).build()
    partitioner = make(
        AlgorithmSpec.exhaustive(max_candidates=64, prune=True),
        workload, platform, search_workers=1,
    )
    constraint = max(1, partitioner.initial_cycles() // 2)
    result = partitioner.run(constraint, deadline=Deadline.after(0.05))
    assert result.partial is True
    assert result.certified is False


def test_partial_is_sticky_across_runs(big_workload, platform):
    # A truncated first run leaves the shared visit caches incomplete;
    # later runs on the same partitioner must stay flagged.
    partitioner = make(
        AlgorithmSpec.exhaustive(max_candidates=26), big_workload, platform
    )
    constraint = max(1, partitioner.initial_cycles() // 2)
    first = partitioner.run(constraint, deadline=Deadline.after(0.05))
    assert first.partial is True
    second = partitioner.run(constraint)
    assert second.partial is True


def test_deadline_pickles_by_remaining_budget():
    import pickle

    deadline = Deadline.after(30.0)
    clone = pickle.loads(pickle.dumps(deadline))
    assert not clone.expired()
    assert 0.0 < clone.remaining() <= 30.0
    expired = pickle.loads(pickle.dumps(Deadline.after(0.0)))
    assert expired.expired()


def test_uncertified_marker_in_summary(small_workload, platform):
    partitioner = make(AlgorithmSpec.greedy(), small_workload, platform)
    constraint = max(1, partitioner.initial_cycles() // 2)
    result = partitioner.run(constraint, deadline=Deadline.after(0.0))
    assert "UNCERTIFIED" in result.summary()
