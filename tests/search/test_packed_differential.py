"""Packed vs. object substrate differential coverage.

The acceptance contract of the packed refactor: on every registered
workload (the paper apps, the filter bank and Viterbi decoder, and the
synthetic skew / communication / size families) and every algorithm,
both substrates produce identical :class:`PartitionResult` records and
identical Pareto fronts.  The object substrate is the reference; the
packed substrate is the one the defaults select.
"""

import pytest

from repro.explore import WorkloadSpec
from repro.partition import EngineConfig
from repro.platform import paper_platform
from repro.search import AlgorithmSpec, make_partitioner

# Every registered workload family (suite registry coverage), built once
# per module.  Exhaustive runs under a move budget on the larger ones so
# the object reference enumeration stays tractable.
WORKLOAD_SPECS = (
    WorkloadSpec.ofdm(),
    WorkloadSpec.jpeg(),
    WorkloadSpec.filterbank(),
    WorkloadSpec.viterbi(),
    WorkloadSpec.synthetic(32, seed=1, weight_skew=3.0),   # skew axis
    WorkloadSpec.synthetic(32, seed=1, weight_skew=1.0),
    WorkloadSpec.synthetic(24, seed=2, comm_intensity=0.1),  # comm axis
    WorkloadSpec.synthetic(24, seed=2, comm_intensity=1.5),
    WorkloadSpec.synthetic(12, seed=4),                     # size axis
    WorkloadSpec.synthetic(96, seed=4),
)

ALGORITHM_SPECS = (
    AlgorithmSpec.greedy(),
    # Explicit cap: the differential property is per-cap, and the
    # substrate-resolved defaults deliberately differ (24 packed / 16
    # object).  The move budget below keeps the object DFS pruned on
    # kernel-rich workloads.
    AlgorithmSpec.exhaustive(max_candidates=128),
    AlgorithmSpec.multi_start(restarts=6, seed=3),
    AlgorithmSpec.annealing(seed=7, temp_levels=10),
)


@pytest.fixture(scope="module")
def workloads():
    return {spec.label: spec.build() for spec in WORKLOAD_SPECS}


@pytest.fixture(scope="module")
def platform():
    return paper_platform(1500, 2)


def _config(substrate: str, algorithm: AlgorithmSpec) -> EngineConfig:
    # Exhaustive needs a budget on kernel-rich workloads: the object
    # reference enumerates subsets one Python call at a time.
    budget = 2 if algorithm.name == "exhaustive" else None
    return EngineConfig(substrate=substrate, max_kernels_moved=budget)


@pytest.mark.parametrize(
    "workload_label", [spec.label for spec in WORKLOAD_SPECS]
)
@pytest.mark.parametrize(
    "algorithm", ALGORITHM_SPECS, ids=[s.name for s in ALGORITHM_SPECS]
)
def test_substrates_are_bit_identical(
    workloads, platform, workload_label, algorithm
):
    workload = workloads[workload_label]
    packed = make_partitioner(
        algorithm, workload, platform,
        config=_config("packed", algorithm),
    )
    reference = make_partitioner(
        algorithm, workload, platform,
        config=_config("object", algorithm),
    )
    initial = packed.initial_cycles()
    assert initial == reference.initial_cycles()
    constraints = [1, max(1, initial // 2)]
    packed_results = packed.sweep(constraints)
    reference_results = reference.sweep(constraints)
    assert packed_results == reference_results
    for packed_result in packed_results:
        assert packed_result.final_cycles <= packed_result.initial_cycles
    assert packed.pareto_front() == reference.pareto_front()
    assert packed.visited_count == reference.visited_count
    assert packed.visited == reference.visited


def test_exhaustive_default_cap_is_substrate_aware(workloads, platform):
    """OFDM has 18 supported kernels: within the packed default cap of
    24 (the Gray walk enumerates 2^18 cheaply), beyond the object
    default of 16 (where 2^18 subsets of object churn is a guard-worthy
    mistake).  An explicit cap applies to either substrate."""
    workload = workloads["ofdm-transmitter"]
    packed = make_partitioner(
        AlgorithmSpec.exhaustive(), workload, platform,
        config=EngineConfig(substrate="packed"),
    )
    assert packed.run(1).final_cycles <= packed.run(1).initial_cycles
    reference = make_partitioner(
        AlgorithmSpec.exhaustive(), workload, platform,
        config=EngineConfig(substrate="object"),
    )
    with pytest.raises(ValueError, match="exceed the exhaustive limit"):
        reference.run(1)
    # Explicitly raised, the object reference enumerates (and agrees).
    raised = make_partitioner(
        AlgorithmSpec.exhaustive(max_candidates=18), workload, platform,
        config=EngineConfig(substrate="object"),
    )
    assert raised.run(1) == packed.run(1)


def test_unknown_substrate_rejected(workloads, platform):
    with pytest.raises(ValueError, match="unknown substrate"):
        EngineConfig(substrate="simd")
    # A config mutated to a bad name after construction is caught at
    # first use.
    config = EngineConfig()
    config.substrate = "simd"
    partitioner = make_partitioner(
        AlgorithmSpec.greedy(),
        workloads["ofdm-transmitter"],
        platform,
        config=config,
    )
    with pytest.raises(ValueError, match="unknown substrate"):
        partitioner.run(1)


def test_injected_table_matches_derived(workloads, platform):
    """A pre-derived (even pickled) table yields identical results."""
    import pickle

    from repro.partition import CostModel, PackedCostTable

    workload = workloads["ofdm-transmitter"]
    table = PackedCostTable.from_model(CostModel(workload, platform))
    shipped = pickle.loads(pickle.dumps(table))
    for algorithm in ALGORITHM_SPECS:
        direct = make_partitioner(
            algorithm, workload, platform,
            config=_config("packed", algorithm),
        )
        injected = make_partitioner(
            algorithm, workload, platform,
            config=_config("packed", algorithm), packed_table=shipped,
        )
        assert injected.run(1) == direct.run(1)
        assert injected.pareto_front() == direct.pareto_front()
        # The injected-table partitioner never had to price a block.
        assert injected.stats.blocks_mapped == 0


def test_exhaustive_unbudgeted_gray_walk_matches_object(platform):
    """The Gray-code walk (no budget) against the object DFS on a
    workload small enough to enumerate both ways."""
    workload = WorkloadSpec.synthetic(
        12, seed=3, kernel_fraction=0.8, comm_intensity=0.8
    ).build()
    packed = make_partitioner(
        AlgorithmSpec.exhaustive(), workload, platform,
        config=EngineConfig(substrate="packed", stop_at_constraint=False),
    )
    reference = make_partitioner(
        AlgorithmSpec.exhaustive(), workload, platform,
        config=EngineConfig(substrate="object", stop_at_constraint=False),
    )
    assert packed.run(1) == reference.run(1)
    assert packed.visited_count == reference.visited_count
    assert packed.pareto_front() == reference.pareto_front()
