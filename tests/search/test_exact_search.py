"""Differential coverage for the exact-search modes.

The contract: the sharded Gray-code walk and the additive-bound
branch-and-bound are *transparent* accelerations of the serial packed
enumeration — identical :class:`PartitionResult` records, identical
Pareto fronts, and (for sharding) identical visit counts, across every
shard count, worker count, and workload family, with or without a move
budget.  The serial unpruned walk is the reference everywhere.
"""

import os

import pytest

from repro.explore import WorkloadSpec
from repro.partition import EngineConfig
from repro.platform import paper_platform
from repro.search import AlgorithmSpec, make_partitioner
from repro.search.exhaustive import ExhaustivePartitioner

# Workload families (6–22 supported kernels; synth20 carries a
# zero-delta kernel, so the moves/BB-ids tie-break is exercised too).
WORKLOAD_SPECS = {
    "ofdm": WorkloadSpec.ofdm(),
    "jpeg": WorkloadSpec.jpeg(),
    "filterbank": WorkloadSpec.filterbank(),
    "viterbi": WorkloadSpec.viterbi(),
    "synth12": WorkloadSpec.synthetic(
        12, seed=3, kernel_fraction=0.8, comm_intensity=0.8
    ),
    "synth20": WorkloadSpec.synthetic(
        20, seed=5, kernel_fraction=0.8, comm_intensity=0.5
    ),
    "synth18-comm": WorkloadSpec.synthetic(18, seed=2, comm_intensity=1.5),
    "synth18-skew": WorkloadSpec.synthetic(18, seed=1, weight_skew=3.0),
    "synth14-flat": WorkloadSpec.synthetic(14, seed=7, weight_skew=1.0),
}

#: Families cheap enough to walk 2^n four times over (jpeg's 2^22 serial
#: reference is computed once, but re-walking it per shard count is not
#: worth the wall clock — branch-and-bound covers it below).
SHARD_FAMILIES = tuple(name for name in WORKLOAD_SPECS if name != "jpeg")

SHARD_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def platform():
    return paper_platform(1500, 2)


@pytest.fixture(scope="module")
def workloads():
    return {name: spec.build() for name, spec in WORKLOAD_SPECS.items()}


@pytest.fixture(scope="module")
def references(workloads, platform):
    """Serial unpruned enumeration per family: the ground truth every
    exact-search mode must reproduce bit-identically."""
    references = {}
    for name, workload in workloads.items():
        partitioner = make_partitioner(
            AlgorithmSpec.exhaustive(), workload, platform,
            config=EngineConfig(),
        )
        initial = partitioner.initial_cycles()
        constraint = max(1, initial // 2)
        references[name] = {
            "constraint": constraint,
            "result": partitioner.run(constraint),
            "front": partitioner.pareto_front(),
            "visits": partitioner.visited_count,
        }
    return references


def _run(workload, platform, algorithm, constraint, **config_kwargs):
    partitioner = make_partitioner(
        algorithm, workload, platform,
        config=EngineConfig(**config_kwargs),
    )
    result = partitioner.run(constraint)
    return partitioner, result


# ----------------------------------------------------------------------
# Sharded Gray walk
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("family", SHARD_FAMILIES)
def test_sharded_walk_is_bit_identical(
    workloads, platform, references, family, shards
):
    reference = references[family]
    partitioner, result = _run(
        workloads[family], platform, AlgorithmSpec.exhaustive(shards=shards),
        reference["constraint"], search_workers=1,
    )
    assert result == reference["result"]
    assert partitioner.pareto_front() == reference["front"]
    assert partitioner.visited_count == reference["visits"]
    outcomes = partitioner.shard_outcomes
    assert len(outcomes) == min(shards, reference["visits"] - 1)
    # Every non-origin configuration is visited exactly once, somewhere.
    assert sum(o["visits"] for o in outcomes) == reference["visits"] - 1
    assert all(o["pruned_subtrees"] == 0 for o in outcomes)


def test_sharded_walk_worker_count_independent(
    workloads, platform, references
):
    """The same shard split through 1 in-process worker, a real 2-worker
    pool, and the machine default produces identical everything."""
    reference = references["synth20"]
    results, fronts = [], []
    for workers in (1, 2, None):
        partitioner, result = _run(
            workloads["synth20"], platform, AlgorithmSpec.exhaustive(shards=4),
            reference["constraint"], search_workers=workers,
        )
        results.append(result)
        fronts.append(partitioner.pareto_front())
        assert partitioner.visited_count == reference["visits"]
    assert results[0] == results[1] == results[2] == reference["result"]
    assert fronts[0] == fronts[1] == fronts[2] == reference["front"]


def test_sharded_keep_visits_reproduces_serial_columns(
    workloads, platform, references
):
    """With ``keep_visits=True`` the shards' concatenated columns are
    the serial walk's visit sequence, record for record."""
    reference = references["synth12"]
    serial = make_partitioner(
        AlgorithmSpec.exhaustive(), workloads["synth12"], platform,
        config=EngineConfig(),
    )
    serial.run(reference["constraint"])
    sharded = ExhaustivePartitioner(
        workloads["synth12"], platform, shards=4, keep_visits=True,
        config=EngineConfig(search_workers=1),
    )
    sharded.run(reference["constraint"])
    assert sharded.visited == serial.visited


# ----------------------------------------------------------------------
# Branch-and-bound
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", tuple(WORKLOAD_SPECS))
def test_branch_and_bound_is_bit_identical(
    workloads, platform, references, family
):
    reference = references[family]
    partitioner, result = _run(
        workloads[family], platform, AlgorithmSpec.exhaustive(prune=True),
        reference["constraint"],
    )
    assert result == reference["result"]
    assert partitioner.pareto_front() == reference["front"]
    assert partitioner.visited_count <= reference["visits"]
    if reference["visits"] > 1024:
        # Big enough spaces must actually prune (tiny ones may not).
        assert partitioner.visited_count < reference["visits"]
        assert partitioner.pruned_subtrees > 0


@pytest.mark.parametrize("shards", (2, 4, 8))
@pytest.mark.parametrize("family", ("ofdm", "synth20", "viterbi"))
def test_sharded_branch_and_bound_is_bit_identical(
    workloads, platform, references, family, shards
):
    """Prefix-decomposed B&B: every prefix task prunes against its own
    incumbent, yet the merged optimum and front stay exact."""
    reference = references[family]
    partitioner, result = _run(
        workloads[family], platform,
        AlgorithmSpec.exhaustive(shards=shards, prune=True),
        reference["constraint"], search_workers=1,
    )
    assert result == reference["result"]
    assert partitioner.pareto_front() == reference["front"]
    assert partitioner.visited_count <= reference["visits"]


@pytest.mark.parametrize("budget", (2, 3))
@pytest.mark.parametrize("family", ("ofdm", "jpeg", "synth20", "viterbi"))
def test_budgeted_branch_and_bound_matches_budgeted_walk(
    workloads, platform, references, family, budget
):
    """Under a move budget the B&B replaces the budget-pruned DFS:
    identical results and fronts, never more visits."""
    constraint = references[family]["constraint"]
    walk, walk_result = _run(
        workloads[family], platform, AlgorithmSpec.exhaustive(),
        constraint, max_kernels_moved=budget,
    )
    bnb, bnb_result = _run(
        workloads[family], platform, AlgorithmSpec.exhaustive(prune=True),
        constraint, max_kernels_moved=budget,
    )
    assert bnb_result == walk_result
    assert bnb.pareto_front() == walk.pareto_front()
    assert bnb.visited_count <= walk.visited_count


def test_bound_slack_makes_visits_monotone(workloads, platform, references):
    """Loosening the admissible bound (the ``_bound_slack`` test hook
    adds that many ticks of slack before a subtree may be cut) can only
    grow the visited set — the property that pins the bound's
    admissibility.  Results stay exact at every slack."""
    reference = references["synth20"]
    visits = []
    for slack in (0, 10, 10_000, 10**12):
        partitioner = ExhaustivePartitioner(
            workloads["synth20"], platform, prune=True,
        )
        partitioner._bound_slack = slack
        result = partitioner.run(reference["constraint"])
        assert result == reference["result"]
        assert partitioner.pareto_front() == reference["front"]
        visits.append(partitioner.visited_count)
    assert visits == sorted(visits)
    # Unbounded slack disables optimum pruning outright; the shape-aware
    # front bound is the only cut left, so the walk grows a lot.
    assert visits[0] < visits[-1]


def test_certifies_32_plus_kernels_against_analytic_optimum(platform):
    """The headline: a 2^34 subset space certified in seconds, checked
    against the analytic Eq. 2 optimum (the objective is additive, so
    the unconstrained optimum is initial plus every negative delta and
    the optimal subset is exactly the negative-delta kernels)."""
    workload = WorkloadSpec.synthetic(
        40, seed=9, kernel_fraction=0.85
    ).build()
    partitioner = ExhaustivePartitioner(workload, platform, prune=True)
    table = partitioner.table
    assert len(table) >= 32
    result = partitioner.run(1)  # unreachable: minimize outright
    negative = [
        index for index, delta in enumerate(table.move_delta) if delta < 0
    ]
    analytic_ticks = table.initial_ticks + sum(
        table.move_delta[index] for index in negative
    )
    assert result.final_cycles == table.ticks_to_cycles(analytic_ticks)
    assert tuple(sorted(result.moved_bb_ids)) == table.bb_ids_of(
        sum(1 << index for index in negative)
    )
    assert partitioner.pruned_subtrees > 0
    assert partitioner.visited_count < 2 ** 20  # nowhere near 2^34


# ----------------------------------------------------------------------
# Reduced visit log through the partitioner API
# ----------------------------------------------------------------------
def test_reduced_log_keeps_front_and_counts(
    workloads, platform, references
):
    reference = references["synth12"]
    partitioner = ExhaustivePartitioner(
        workloads["synth12"], platform, keep_visits=False,
    )
    partitioner.run(reference["constraint"])
    assert partitioner.visited_count == reference["visits"]
    assert partitioner.pareto_front() == reference["front"]
    with pytest.raises(ValueError, match="reduced away"):
        partitioner.visited


def test_sharded_default_drops_visits(workloads, platform, references):
    """Sharded walks default to the reduced log (a 2^32-scale walk
    cannot afford per-visit columns); the front and count survive."""
    reference = references["synth12"]
    partitioner = ExhaustivePartitioner(
        workloads["synth12"], platform, shards=2,
        config=EngineConfig(search_workers=1),
    )
    partitioner.run(reference["constraint"])
    with pytest.raises(ValueError, match="reduced away"):
        partitioner.visited
    assert partitioner.visited_count == reference["visits"]
    assert partitioner.pareto_front() == reference["front"]


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_invalid_knobs_rejected(workloads, platform):
    workload = workloads["viterbi"]
    with pytest.raises(ValueError, match="shards"):
        ExhaustivePartitioner(workload, platform, shards=0)
    with pytest.raises(ValueError, match="search_workers"):
        EngineConfig(search_workers=0)
    # A move budget cannot ride the (full-space) sharded walk.
    partitioner = ExhaustivePartitioner(
        workload, platform, shards=2,
        config=EngineConfig(max_kernels_moved=2, search_workers=1),
    )
    with pytest.raises(ValueError, match="prune=True"):
        partitioner.run(1)
    # The object substrate has no sharded/pruned machinery.
    for kwargs in ({"shards": 2}, {"prune": True}, {"keep_visits": False}):
        partitioner = ExhaustivePartitioner(
            workload, platform,
            config=EngineConfig(substrate="object"),
            **kwargs,
        )
        with pytest.raises(ValueError, match="packed substrate only"):
            partitioner.run(1)


def test_default_caps_are_mode_aware(workloads, platform):
    assert ExhaustivePartitioner.PACKED_DEFAULT_MAX_CANDIDATES == 24
    assert ExhaustivePartitioner.SHARDED_DEFAULT_MAX_CANDIDATES == 32
    assert ExhaustivePartitioner.PRUNED_DEFAULT_MAX_CANDIDATES == 40
    workload = workloads["viterbi"]
    assert ExhaustivePartitioner(
        workload, platform
    )._candidate_cap() == 24
    assert ExhaustivePartitioner(
        workload, platform, shards=4
    )._candidate_cap() == 32
    assert ExhaustivePartitioner(
        workload, platform, prune=True
    )._candidate_cap() == 40
    assert ExhaustivePartitioner(
        workload, platform, max_candidates=12, prune=True
    )._candidate_cap() == 12


def test_pool_fallback_when_workers_exceed_machine(
    workloads, platform, references
):
    """Requesting more workers than shards (or than the machine has)
    must not change anything — the fan-out clamps and, where process
    pools are unavailable, degrades to the in-process walk."""
    reference = references["synth12"]
    partitioner, result = _run(
        workloads["synth12"], platform, AlgorithmSpec.exhaustive(shards=2),
        reference["constraint"],
        search_workers=max(8, (os.cpu_count() or 1) * 2),
    )
    assert result == reference["result"]
    assert partitioner.pareto_front() == reference["front"]
