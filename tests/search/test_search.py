"""Tests for the pluggable partitioning-algorithm subsystem."""

import pytest

from repro.partition import (
    ApplicationWorkload,
    BlockWorkload,
    EngineConfig,
    PartitioningEngine,
)
from repro.platform import paper_platform
from repro.search import (
    ALGORITHM_NAMES,
    AlgorithmSpec,
    AnnealingPartitioner,
    ExhaustivePartitioner,
    GreedyPartitioner,
    MultiStartPartitioner,
    make_partitioner,
)
from repro.workloads import generate_dfg, make_profile, synthetic_application


def block(bb_id, freq, weight, **kwargs):
    profile = make_profile(bb_id, freq, weight, **kwargs)
    return BlockWorkload(
        bb_id=bb_id,
        exec_freq=freq,
        dfg=generate_dfg(profile),
        comm_words_in=profile.live_in_words,
        comm_words_out=profile.live_out_words,
    )


@pytest.fixture(scope="module")
def skewed_workload():
    """The greedy trap: the heaviest kernel (Eq. 1 order) saves almost
    nothing because its communication nearly cancels its FPGA time, while
    two lighter kernels save an order of magnitude more.  Under a
    two-move budget, weight-order greedy spends a slot on BB 1."""
    return ApplicationWorkload(
        name="skewed",
        blocks=[
            block(1, 3000, 20, width=1.0, live=(55, 55)),
            block(2, 900, 50, mul_fraction=0.5, live=(2, 1)),
            block(3, 800, 48, mul_fraction=0.5, live=(2, 1)),
            block(4, 50, 6),
        ],
    )


@pytest.fixture(scope="module")
def platform():
    return paper_platform(1500, 2)


ALL_SPECS = [
    AlgorithmSpec.greedy(),
    AlgorithmSpec.exhaustive(),
    AlgorithmSpec.multi_start(),
    AlgorithmSpec.annealing(),
]


class TestAlgorithmSpec:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            AlgorithmSpec(name="tabu")

    def test_factories_cover_registry(self):
        assert sorted(spec.name for spec in ALL_SPECS) == sorted(
            ALGORITHM_NAMES
        )

    def test_default_labels_are_bare_names(self):
        for spec in ALL_SPECS:
            assert spec.label == spec.name

    def test_non_default_params_appear_in_label(self):
        assert AlgorithmSpec.annealing(seed=3).label == "annealing[seed=3]"
        assert AlgorithmSpec.multi_start().label == "multi_start"
        assert "restarts=16" in AlgorithmSpec.multi_start(restarts=16).label

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = AlgorithmSpec.annealing(seed=3)
        assert len({spec, AlgorithmSpec.annealing(seed=3)}) == 1
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_build_dispatches_to_classes(self, skewed_workload, platform):
        classes = {
            "greedy": GreedyPartitioner,
            "exhaustive": ExhaustivePartitioner,
            "multi_start": MultiStartPartitioner,
            "annealing": AnnealingPartitioner,
        }
        for spec in ALL_SPECS:
            partitioner = make_partitioner(spec, skewed_workload, platform)
            assert isinstance(partitioner, classes[spec.name])
            assert partitioner.algorithm == spec.name


class TestGreedyDifferential:
    """The protocol greedy must be bit-identical to the engine."""

    @pytest.mark.parametrize("afpga,cgc_count", [(1500, 2), (5000, 3)])
    def test_identical_on_paper_workloads(self, ofdm, jpeg, afpga, cgc_count):
        for workload in (ofdm, jpeg):
            plat = paper_platform(afpga, cgc_count)
            engine = PartitioningEngine(workload, plat)
            greedy = GreedyPartitioner(workload, plat)
            initial = engine.initial_cycles()
            constraints = [1, initial // 2, (initial * 3) // 4, initial * 2]
            assert greedy.sweep(constraints) == engine.sweep(constraints)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_on_synthetic_workloads(self, seed, platform):
        workload = synthetic_application(
            20, seed=seed, comm_intensity=0.8, kernel_fraction=0.6
        )
        engine = PartitioningEngine(workload, platform)
        greedy = GreedyPartitioner(workload, platform)
        initial = engine.initial_cycles()
        constraints = [1, initial // 2, (initial * 9) // 10]
        assert greedy.sweep(constraints) == engine.sweep(constraints)

    def test_identical_under_budget_and_no_stop(self, ofdm):
        for config in (
            EngineConfig(max_kernels_moved=2),
            EngineConfig(stop_at_constraint=False),
            EngineConfig(allow_regressing_moves=True),
        ):
            plat = paper_platform(1500, 2)
            engine = PartitioningEngine(
                ofdm, plat, config=EngineConfig(**vars(config))
            )
            greedy = GreedyPartitioner(
                ofdm, plat, config=EngineConfig(**vars(config))
            )
            assert greedy.run(1) == engine.run(1)

    def test_strict_unsupported_mode_raises(self, platform):
        from repro.analysis import profile_cdfg
        from repro.ir import cdfg_from_source
        from repro.partition import workload_from_cdfg

        src = (
            "int f(int n) { int s = 0; "
            "for (int i = 1; i <= n; i++) { s += 100 / i; } return s; }"
        )
        cdfg = cdfg_from_source(src)
        workload = workload_from_cdfg(cdfg, profile_cdfg(cdfg, "f", 10), "div")
        greedy = GreedyPartitioner(
            workload,
            platform,
            config=EngineConfig(skip_unsupported_kernels=False),
        )
        with pytest.raises(ValueError):
            greedy.run(1)


class TestExhaustive:
    def test_lower_bounds_every_heuristic(self, platform):
        """On <= 12-kernel inputs the enumerated optimum is a floor."""
        for seed in (0, 1, 2):
            workload = synthetic_application(
                12, seed=seed, comm_intensity=0.8, kernel_fraction=0.8
            )
            finals = {}
            for spec in ALL_SPECS:
                partitioner = make_partitioner(
                    spec,
                    workload,
                    platform,
                    config=EngineConfig(stop_at_constraint=False),
                )
                finals[spec.name] = partitioner.run(1).final_cycles
            assert finals["exhaustive"] == min(finals.values())

    def test_lower_bounds_under_budget(self, skewed_workload, platform):
        finals = {}
        for spec in ALL_SPECS:
            partitioner = make_partitioner(
                spec,
                skewed_workload,
                platform,
                config=EngineConfig(
                    stop_at_constraint=False, max_kernels_moved=2
                ),
            )
            result = partitioner.run(1)
            assert result.kernels_moved <= 2
            finals[spec.name] = result.final_cycles
        assert finals["exhaustive"] == min(finals.values())

    def test_candidate_limit_guard(self, platform):
        workload = synthetic_application(
            24, seed=1, kernel_fraction=1.0, comm_intensity=0.2
        )
        # An explicit cap below the workload's supported kernel count is
        # rejected at construction, naming both numbers.
        with pytest.raises(ValueError, match=r"24 supported.*max_candidates=4"):
            ExhaustivePartitioner(workload, platform, max_candidates=4)

    def test_default_cap_guard_at_run_time(self, platform):
        workload = synthetic_application(
            24, seed=1, kernel_fraction=1.0, comm_intensity=0.2
        )
        partitioner = ExhaustivePartitioner(workload, platform)
        partitioner.config.substrate = "object"
        with pytest.raises(ValueError, match="exceed the exhaustive limit"):
            partitioner.run(1)

    def test_visits_every_subset(self, skewed_workload, platform):
        partitioner = ExhaustivePartitioner(skewed_workload, platform)
        partitioner.run(1)
        # 3 supported kernels (BB 4 is below no threshold but is a
        # candidate too if supported) -> visited = all 2^n subsets.
        supported, __ = partitioner._split_candidates()
        assert len(partitioner.visited) == 2 ** len(supported)


class TestHeuristics:
    def test_never_worse_than_all_fpga(self, platform):
        for seed in (0, 3):
            workload = synthetic_application(
                16, seed=seed, comm_intensity=0.9, kernel_fraction=0.7
            )
            for spec in ALL_SPECS:
                partitioner = make_partitioner(
                    spec,
                    workload,
                    platform,
                    config=EngineConfig(stop_at_constraint=False),
                )
                result = partitioner.run(1)
                assert result.final_cycles <= result.initial_cycles
                assert result.reduction_percent >= 0.0

    def test_heuristics_never_worse_than_greedy(self, platform):
        """Multi-start restart 0 and annealing's warm start are the
        greedy subset, so neither can end up above greedy."""
        for seed in (0, 1, 4):
            workload = synthetic_application(
                14, seed=seed, comm_intensity=0.8, kernel_fraction=0.7
            )
            config = lambda: EngineConfig(stop_at_constraint=False)  # noqa: E731
            greedy = GreedyPartitioner(workload, platform, config=config())
            greedy_final = greedy.run(1).final_cycles
            for spec in (AlgorithmSpec.multi_start(), AlgorithmSpec.annealing()):
                partitioner = make_partitioner(
                    spec, workload, platform, config=config()
                )
                assert partitioner.run(1).final_cycles <= greedy_final

    def test_heuristics_beat_budgeted_greedy_on_skewed_workload(
        self, skewed_workload, platform
    ):
        """The acceptance scenario: a two-move budget makes weight-order
        greedy provably suboptimal; the randomized heuristics recover the
        exhaustive optimum."""
        finals = {}
        for spec in ALL_SPECS:
            partitioner = make_partitioner(
                spec,
                skewed_workload,
                platform,
                config=EngineConfig(
                    stop_at_constraint=False, max_kernels_moved=2
                ),
            )
            finals[spec.name] = partitioner.run(1).final_cycles
        assert finals["multi_start"] < finals["greedy"]
        assert finals["annealing"] < finals["greedy"]
        assert finals["multi_start"] == finals["exhaustive"]
        assert finals["annealing"] == finals["exhaustive"]

    def test_deterministic_per_seed(self, skewed_workload, platform):
        def run(spec):
            partitioner = make_partitioner(
                spec, skewed_workload, platform,
                config=EngineConfig(stop_at_constraint=False),
            )
            return partitioner.run(1)

        for factory in (AlgorithmSpec.multi_start, AlgorithmSpec.annealing):
            assert run(factory(seed=7)) == run(factory(seed=7))

    def test_results_validate_and_components_sum(self, skewed_workload, platform):
        for spec in ALL_SPECS:
            partitioner = make_partitioner(spec, skewed_workload, platform)
            result = partitioner.run(1)
            result.validate()
            for step in result.steps:
                assert (
                    step.fpga_cycles + step.cgc_fpga_cycles + step.comm_cycles
                    == step.total_cycles
                )

    def test_parameter_validation(self, skewed_workload, platform):
        with pytest.raises(ValueError):
            MultiStartPartitioner(skewed_workload, platform, restarts=0)
        with pytest.raises(ValueError):
            MultiStartPartitioner(skewed_workload, platform, jitter=1.5)
        with pytest.raises(ValueError):
            AnnealingPartitioner(skewed_workload, platform, cooling=1.0)
        with pytest.raises(ValueError):
            AnnealingPartitioner(skewed_workload, platform, initial_temp=-1.0)
        with pytest.raises(ValueError):
            AnnealingPartitioner(skewed_workload, platform, temp_levels=0)
        with pytest.raises(ValueError):
            ExhaustivePartitioner(skewed_workload, platform, max_candidates=0)


class TestProtocolBehaviour:
    def test_invalid_constraint_rejected(self, skewed_workload, platform):
        for spec in ALL_SPECS:
            partitioner = make_partitioner(spec, skewed_workload, platform)
            with pytest.raises(ValueError):
                partitioner.run(0)

    def test_met_constraint_needs_no_search(self, skewed_workload, platform):
        for spec in ALL_SPECS:
            partitioner = make_partitioner(spec, skewed_workload, platform)
            initial = partitioner.initial_cycles()
            result = partitioner.run(initial)
            assert result.constraint_met
            assert result.kernels_moved == 0
            assert result.final_cycles == initial

    def test_config_freeze_after_run(self, skewed_workload, platform):
        partitioner = GreedyPartitioner(
            skewed_workload, platform, config=EngineConfig()
        )
        partitioner.run(1)
        partitioner.config.max_kernels_moved = 1
        with pytest.raises(ValueError, match="mutated"):
            partitioner.run(1)

    def test_config_mutation_before_first_run_is_honoured(self, ofdm):
        """Flags changed between construction and the first run must be
        used, not silently baked out (regression: the cost model was
        built eagerly in __init__)."""
        plat = paper_platform(1500, 2)
        config = EngineConfig()
        greedy = GreedyPartitioner(ofdm, plat, config=config)
        config.charge_single_partition_reconfig = True
        engine = PartitioningEngine(
            ofdm, plat,
            config=EngineConfig(charge_single_partition_reconfig=True),
        )
        assert greedy.run(1) == engine.run(1)

    def test_annealing_with_zero_move_budget(self, skewed_workload, platform):
        """budget=0 must yield the all-FPGA mapping, not crash on an
        empty swap pool (regression)."""
        partitioner = AnnealingPartitioner(
            skewed_workload, platform,
            config=EngineConfig(
                stop_at_constraint=False, max_kernels_moved=0
            ),
        )
        result = partitioner.run(1)
        assert result.kernels_moved == 0
        assert result.final_cycles == result.initial_cycles

    def test_every_algorithm_visits_the_all_fpga_corner(
        self, skewed_workload, platform
    ):
        """The 0-move configuration is always priced, so every front
        includes the all-FPGA corner (regression: greedy/multi-start
        omitted it)."""
        for spec in ALL_SPECS:
            partitioner = make_partitioner(spec, skewed_workload, platform)
            partitioner.run(1)
            assert any(
                v.moved_kernel_count == 0 for v in partitioner.visited
            ), spec.name
            assert any(
                p.moved_kernel_count == 0 for p in partitioner.pareto_front()
            ), spec.name

    def test_sweep_reuses_cached_search_state(self, skewed_workload, platform):
        partitioner = AnnealingPartitioner(
            skewed_workload, platform,
            config=EngineConfig(stop_at_constraint=False),
        )
        first = partitioner.run(1)
        evaluations = partitioner.stats.block_cost_evaluations
        second = partitioner.run(2)
        # The annealing walk is constraint-independent and cached: the
        # second run replays the best subset with zero new evaluations
        # beyond the replay's own contribution lookups.
        assert partitioner.stats.block_cost_evaluations - evaluations < 50
        assert second.moved_bb_ids == first.moved_bb_ids
