"""Tests for the multi-objective (Pareto) analysis layer."""

import pytest

from repro.partition import EngineConfig
from repro.platform import paper_platform
from repro.search import (
    AlgorithmSpec,
    VisitedConfiguration,
    front_of_results,
    make_partitioner,
    pareto_front,
)
from repro.workloads import synthetic_application


def config(cycles, moved, rows, bbs=(), algorithm=""):
    return VisitedConfiguration(
        total_cycles=cycles,
        moved_kernel_count=moved,
        cgc_rows_used=rows,
        moved_bb_ids=tuple(bbs),
        algorithm=algorithm,
    )


class TestDominance:
    def test_strictly_better_dominates(self):
        assert config(100, 1, 1).dominates(config(200, 2, 2))

    def test_equal_does_not_dominate(self):
        a, b = config(100, 1, 1), config(100, 1, 1)
        assert not a.dominates(b) and not b.dominates(a)

    def test_tradeoff_is_incomparable(self):
        fast_many = config(100, 5, 2)
        slow_few = config(300, 1, 1)
        assert not fast_many.dominates(slow_few)
        assert not slow_few.dominates(fast_many)

    def test_partial_improvement_dominates(self):
        assert config(100, 2, 2).dominates(config(100, 2, 3))


class TestParetoFront:
    def test_known_front(self):
        points = [
            config(100, 5, 3, bbs=(1, 2, 3, 4, 5)),  # fastest
            config(150, 3, 2, bbs=(1, 2, 3)),        # tradeoff
            config(150, 4, 2, bbs=(1, 2, 3, 4)),     # dominated by above
            config(300, 0, 0),                       # all-FPGA corner
            config(400, 1, 1, bbs=(9,)),             # dominated by corner
        ]
        front = pareto_front(points)
        assert [p.total_cycles for p in front] == [100, 150, 300]

    def test_front_is_sorted_and_deterministic(self):
        points = [config(200, 1, 1, bbs=(2,)), config(100, 2, 1, bbs=(1, 2))]
        assert pareto_front(points) == pareto_front(reversed(points))
        assert [p.total_cycles for p in pareto_front(points)] == [100, 200]

    def test_duplicate_objectives_collapse(self):
        points = [
            config(100, 1, 1, bbs=(5,)),
            config(100, 1, 1, bbs=(3,)),
        ]
        front = pareto_front(points)
        assert len(front) == 1
        assert front[0].moved_bb_ids == (3,)  # lexicographically smallest

    def test_empty_front(self):
        assert pareto_front([]) == []

    def test_merged_front_across_algorithms(self):
        a = [config(100, 3, 2, algorithm="annealing")]
        b = [config(90, 4, 2, algorithm="exhaustive"), config(120, 1, 1)]
        merged = front_of_results([a, b])
        assert {p.total_cycles for p in merged} == {90, 100, 120}

    def test_to_dict_round_trip(self):
        point = config(10, 2, 1, bbs=(4, 7), algorithm="greedy")
        as_dict = point.to_dict()
        assert as_dict["total_cycles"] == 10
        assert as_dict["moved_bb_ids"] == [4, 7]
        assert as_dict["algorithm"] == "greedy"


class TestPartitionerFronts:
    @pytest.fixture(scope="class")
    def annealer(self):
        workload = synthetic_application(
            12, seed=2, comm_intensity=0.7, kernel_fraction=0.8
        )
        partitioner = make_partitioner(
            AlgorithmSpec.annealing(),
            workload,
            paper_platform(1500, 2),
            config=EngineConfig(stop_at_constraint=False),
        )
        partitioner.run(1)
        return partitioner

    def test_front_subset_of_visited(self, annealer):
        front = annealer.pareto_front()
        assert front
        objectives = {v.objectives for v in annealer.visited}
        assert all(p.objectives in objectives for p in front)

    def test_front_is_mutually_non_dominated(self, annealer):
        front = annealer.pareto_front()
        for p in front:
            assert not any(q.dominates(p) for q in front)

    def test_visited_configs_carry_algorithm(self, annealer):
        assert all(v.algorithm == "annealing" for v in annealer.visited)

    def test_exhaustive_front_dominates_or_matches_heuristic_front(self):
        """The exhaustive visited set is the whole space, so its front is
        the true Pareto surface: nothing a heuristic visited may
        dominate any point of it."""
        workload = synthetic_application(
            10, seed=5, comm_intensity=0.8, kernel_fraction=0.8
        )
        platform = paper_platform(1500, 2)
        exhaustive = make_partitioner(
            AlgorithmSpec.exhaustive(), workload, platform,
            config=EngineConfig(stop_at_constraint=False),
        )
        exhaustive.run(1)
        true_front = exhaustive.pareto_front()
        annealer = make_partitioner(
            AlgorithmSpec.annealing(), workload, platform,
            config=EngineConfig(stop_at_constraint=False),
        )
        annealer.run(1)
        for visited in annealer.visited:
            assert not any(visited.dominates(p) for p in true_front)
