"""Tests for the span/trace telemetry layer."""

import pickle

import pytest

from repro import telemetry
from repro.parallel import _TracedCall, map_tasks
from repro.telemetry import Span, Trace


@pytest.fixture(autouse=True)
def fresh_trace():
    """Every test runs on its own ambient trace, telemetry forced on."""
    telemetry.set_enabled(True)
    telemetry.reset_trace()
    yield
    telemetry.set_enabled(None)
    telemetry.reset_trace()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        trace = telemetry.get_trace()
        outer = trace.find("outer")
        assert outer is not None and outer.calls == 1
        inner = trace.find("outer", "inner")
        assert inner is not None and inner.calls == 2
        assert inner.seconds >= 0.0
        # The same name under a different parent is a different node.
        assert trace.find("inner") is None

    def test_span_yields_its_node(self):
        with telemetry.span("phase") as node:
            telemetry.count("things", 5)
        assert node.counters == {"things": 5}
        assert telemetry.get_trace().find("phase") is node

    def test_counters_attach_to_innermost_span(self):
        with telemetry.span("a"):
            telemetry.count("n")
            with telemetry.span("b"):
                telemetry.count("n", 2)
        trace = telemetry.get_trace()
        assert trace.find("a").counters == {"n": 1}
        assert trace.find("a", "b").counters == {"n": 2}
        assert trace.total_counter("n") == 3

    def test_counts_outside_any_span_land_on_the_root(self):
        telemetry.count("loose", 4)
        assert telemetry.get_trace().root.counters == {"loose": 4}

    def test_exception_still_closes_the_span(self):
        with pytest.raises(RuntimeError):
            with telemetry.span("risky"):
                raise RuntimeError("boom")
        node = telemetry.get_trace().find("risky")
        assert node.calls == 1
        assert telemetry.current_span() is telemetry.get_trace().root

    def test_reentry_accumulates(self):
        for _ in range(3):
            with telemetry.span("hot"):
                pass
        assert telemetry.get_trace().find("hot").calls == 3


class TestDisabled:
    def test_disabled_spans_record_nothing(self):
        telemetry.set_enabled(False)
        with telemetry.span("ghost") as node:
            telemetry.count("ghost")
        assert telemetry.get_trace().root.children == {}
        assert telemetry.get_trace().root.counters == {}
        # The yielded sink is inert but usable.
        assert node.name == "<disabled>"

    def test_enabled_reflects_override_and_env(self, monkeypatch):
        telemetry.set_enabled(False)
        assert not telemetry.enabled()
        telemetry.set_enabled(True)
        assert telemetry.enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        telemetry.set_enabled(None)  # back to the env default
        assert not telemetry.enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        telemetry.set_enabled(None)
        assert telemetry.enabled()

    @pytest.mark.parametrize("value", ["0", "false", "OFF", "no", ""])
    def test_off_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        telemetry.set_enabled(None)
        assert not telemetry.enabled()


class TestMerge:
    def test_merge_sums_recursively(self):
        a, b = Trace(), Trace()
        with telemetry.use_trace(a):
            with telemetry.span("x"):
                telemetry.count("n", 1)
                with telemetry.span("y"):
                    pass
        with telemetry.use_trace(b):
            with telemetry.span("x"):
                telemetry.count("n", 2)
        a.merge(b)
        x = a.find("x")
        assert x.calls == 2 and x.counters == {"n": 3}
        assert a.find("x", "y").calls == 1

    def test_merge_preserves_first_seen_order(self):
        a, b = Trace(), Trace()
        with telemetry.use_trace(a):
            with telemetry.span("alpha"):
                pass
        with telemetry.use_trace(b):
            with telemetry.span("beta"):
                pass
            with telemetry.use_trace(b):
                pass
        a.merge(b)
        assert list(a.root.children) == ["alpha", "beta"]

    def test_merge_order_determines_child_order_only(self):
        """Merging the same subtraces in the same order always yields
        an identical tree (the map_tasks determinism contract)."""

        def subtrace(tag):
            t = Trace()
            with telemetry.use_trace(t):
                with telemetry.span(tag):
                    telemetry.count("c")
            # Zero the wall-clock noise; merge determinism is about
            # structure, calls, and counters.
            for _, node in t.root.walk():
                node.seconds = 0.0
            return t

        merged1, merged2 = Trace(), Trace()
        for target in (merged1, merged2):
            for tag in ("s1", "s2", "s1"):
                target.merge(subtrace(tag))
        assert merged1.to_dict() == merged2.to_dict()


class TestUseTrace:
    def test_use_trace_isolates_and_restores(self):
        scratch = Trace()
        with telemetry.span("ambient"):
            with telemetry.use_trace(scratch):
                with telemetry.span("isolated"):
                    pass
            telemetry.count("back")
        ambient = telemetry.get_trace()
        assert ambient.find("ambient", "isolated") is None
        assert scratch.find("isolated") is not None
        assert ambient.find("ambient").counters == {"back": 1}

    def test_absorb_merges_into_current_span(self):
        sub = Trace()
        with telemetry.use_trace(sub):
            with telemetry.span("work"):
                telemetry.count("done")
        with telemetry.span("parent"):
            telemetry.absorb(sub)
        parent = telemetry.get_trace().find("parent")
        assert parent.children["work"].counters == {"done": 1}
        # A None subtrace (worker with telemetry off) is a no-op.
        telemetry.absorb(None)

    def test_absorb_adds_no_time_to_the_absorbing_span(self):
        sub = Trace()
        with telemetry.use_trace(sub):
            with telemetry.span("work"):
                pass
        with telemetry.span("parent") as parent:
            telemetry.absorb(sub)
        assert parent.children["work"].seconds == sub.root.children[
            "work"
        ].seconds


class TestSerialization:
    def test_pickle_round_trip(self):
        with telemetry.span("a"):
            telemetry.count("k", 7)
            with telemetry.span("b"):
                pass
        trace = telemetry.get_trace()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.to_dict() == trace.to_dict()
        assert clone.find("a", "b").calls == 1

    def test_dict_round_trip(self):
        with telemetry.span("a"):
            telemetry.count("k", 7)
        trace = telemetry.get_trace()
        clone = Trace.from_dict(trace.to_dict())
        assert clone.to_dict() == trace.to_dict()

    def test_span_from_dict_tolerates_minimal_payload(self):
        node = Span.from_dict({"name": "bare"})
        assert node.seconds == 0.0 and node.calls == 0
        assert node.counters == {} and node.children == {}

    def test_render_lists_every_node(self):
        with telemetry.span("a"):
            with telemetry.span("b"):
                telemetry.count("hits", 2)
        text = telemetry.get_trace().render()
        assert "a:" in text and "b:" in text and "hits=2" in text


def _traced_work(x):
    with telemetry.span("work"):
        telemetry.count("tasks")
    return x * x


class TestMapTasksIntegration:
    def test_worker_subtraces_merge_in_task_order(self):
        with telemetry.span("fanout"):
            results, workers = map_tasks(
                _traced_work, [1, 2, 3, 4], 2, what="squares"
            )
        assert results == [1, 4, 9, 16]
        # Whether the pool spawned or fell back to serial, the merged
        # trace is identical: 4 calls under fanout/work.
        node = telemetry.get_trace().find("fanout", "work")
        assert node is not None
        assert node.calls == 4
        assert node.counters == {"tasks": 4}

    def test_serial_path_records_into_ambient_trace(self):
        with telemetry.span("fanout"):
            results, workers = map_tasks(
                _traced_work, [5], 4, what="single"
            )
        assert results == [25] and workers == 1
        assert telemetry.get_trace().find("fanout", "work").calls == 1

    def test_traced_call_returns_subtrace(self):
        call = _TracedCall(_traced_work)
        result, sub = call(3)
        assert result == 9
        assert sub.find("work").counters == {"tasks": 1}
        # Nothing leaked into the ambient trace.
        assert telemetry.get_trace().root.children == {}

    def test_traced_call_disabled_ships_none(self):
        telemetry.set_enabled(False)
        result, sub = _TracedCall(_traced_work)(3)
        assert result == 9 and sub is None
