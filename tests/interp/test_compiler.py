"""Differential tests: the block-compiled engine vs the tree walker.

The compiled fast path must be bit-identical to the walker on every
workload — same return values, step counts, block counts, array state,
global state, block frequencies and raised exceptions.
"""

import pytest

from repro.frontend.ast_nodes import ArrayType, Type
from repro.interp import (
    ArrayStorage,
    BlockProfiler,
    ExecutionLimitExceeded,
    Interpreter,
    cdfg_fingerprint,
    compile_cdfg,
    run_function,
)
from repro.ir import cdfg_from_source
from repro.workloads import (
    BITS_PER_SYMBOL,
    JPEGEncoderApp,
    OFDMTransmitterApp,
    random_bits,
    synthetic_program_source,
)
from repro.workloads import test_image as make_test_image


def run_both(source, fn, *args):
    """Run a program under both engines; return (walker, compiled)."""
    cdfg = cdfg_from_source(source)
    walker = run_function(cdfg, fn, *args, mode="walker")
    compiled = run_function(cdfg, fn, *args, mode="compiled")
    return walker, compiled


def assert_identical(source, fn, *args):
    walker, compiled = run_both(source, fn, *args)
    assert walker == compiled
    return compiled


class TestLanguageSemantics:
    @pytest.mark.parametrize(
        "expr",
        [
            "1 + 2 * 3",
            "7 / 2",
            "-7 / 2",
            "7 % 3",
            "-7 % 3",
            "1 << 5",
            "-16 >> 2",
            "12 & 10",
            "12 | 10",
            "12 ^ 10",
            "~0",
            "!5",
            "1 ? 10 : 20",
            "abs(0 - 9)",
            "min(4, 2)",
            "max(4, 2)",
            "(int) 3.99",
            "round(2.5)",
            "round(0.0 - 2.5)",
        ],
    )
    def test_constant_expressions(self, expr):
        assert_identical(f"int f() {{ return {expr}; }}", "f")

    def test_float_arithmetic_and_casts(self):
        src = """
        float f(float x) {
            float y = sqrt(x) * 0.5 + (float)((int) x);
            return y + floor(x / 2.0);
        }
        """
        assert_identical(src, "f", 6.25)

    def test_float_truncation_on_int_assign(self):
        assert_identical("int f() { int a = 0; a = 7 / 2; return a; }", "f")

    def test_control_flow_and_loops(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 1) { continue; }
                int j = 0;
                while (j <= i) { s += j; j++; }
                if (s > 400) { break; }
            }
            do { s++; } while (0);
            return s;
        }
        """
        for n in (0, 1, 7, 40):
            assert_identical(src, "f", n)

    def test_recursion(self):
        src = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        """
        result = assert_identical(src, "fib", 12)
        assert result.return_value == 144

    def test_global_scalar_mutation(self):
        src = """
        int counter = 3;
        void bump() { counter = counter + 2; }
        int f() { bump(); bump(); return counter; }
        """
        cdfg = cdfg_from_source(src)
        walker = Interpreter(cdfg, mode="walker")
        compiled = Interpreter(cdfg, mode="compiled")
        assert walker.run("f") == compiled.run("f")
        assert walker.global_scalar("counter") == compiled.global_scalar(
            "counter"
        ) == 7

    def test_local_shadowing_global(self):
        src = """
        int x = 41;
        int f() { int x = 5; return x + 1; }
        int g() { return x; }
        """
        assert_identical(src, "f")
        assert_identical(src, "g")

    def test_array_param_mutation_visible(self):
        src = """
        void fill(int a[6], int v) {
            for (int i = 0; i < 6; i++) { a[i] = v * i - 3; }
        }
        """
        cdfg = cdfg_from_source(src)
        storages = []
        for mode in ("walker", "compiled"):
            storage = ArrayStorage.allocate("a", ArrayType(Type.INT, (6,)))
            Interpreter(cdfg, mode=mode).run("fill", storage, 7)
            storages.append(storage.snapshot())
        assert storages[0] == storages[1]

    def test_global_array_mutation(self):
        src = """
        int buf[8];
        void poke(int i, int v) { buf[i] = v; }
        int peek(int i) { return buf[i]; }
        """
        cdfg = cdfg_from_source(src)
        results = []
        for mode in ("walker", "compiled"):
            interp = Interpreter(cdfg, mode=mode)
            for i in range(8):
                interp.run("poke", i, 3 * i - 5)
            results.append(interp.global_array("buf").snapshot())
        assert results[0] == results[1]


class TestErrorParity:
    def test_out_of_bounds_raises_index_error(self):
        src = "int f() { int a[2]; return a[5]; }"
        for mode in ("walker", "compiled"):
            with pytest.raises(IndexError):
                run_function(cdfg_from_source(src), "f", mode=mode)

    def test_wrong_arity_message_identical(self):
        src = "int f(int a) { return a; }"
        messages = []
        for mode in ("walker", "compiled"):
            with pytest.raises(TypeError) as excinfo:
                run_function(cdfg_from_source(src), "f", mode=mode)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_unknown_function_raises_key_error(self):
        for mode in ("walker", "compiled"):
            with pytest.raises(KeyError):
                run_function(
                    cdfg_from_source("int f() { return 1; }"), "g", mode=mode
                )

    def test_scalar_where_array_expected(self):
        src = "int first(int a[3]) { return a[0]; }"
        for mode in ("walker", "compiled"):
            with pytest.raises(TypeError):
                run_function(cdfg_from_source(src), "first", 3, mode=mode)

    def test_step_budget_enforced(self):
        cdfg = cdfg_from_source("void f() { while (1) { } }")
        for mode in ("walker", "compiled"):
            with pytest.raises(ExecutionLimitExceeded):
                run_function(cdfg, "f", max_steps=10_000, mode=mode)

    def test_step_budget_boundary_identical(self):
        # The budget at which a terminating program first fails must
        # agree between engines (same total step accounting).
        src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }"
        cdfg = cdfg_from_source(src)
        steps = run_function(cdfg, "f", 9, mode="walker").steps
        for mode in ("walker", "compiled"):
            assert run_function(cdfg, "f", 9, max_steps=steps, mode=mode)
            with pytest.raises(ExecutionLimitExceeded):
                run_function(cdfg, "f", 9, max_steps=steps - 1, mode=mode)

    def test_compiled_mode_rejects_custom_hooks(self):
        class Custom:
            def on_block_enter(self, block, function): ...

            def on_instruction(self, instruction, function): ...

        cdfg = cdfg_from_source("int f() { return 1; }")
        with pytest.raises(ValueError):
            Interpreter(cdfg, Custom(), mode="compiled")
        # auto mode falls back to the walker instead.
        assert Interpreter(cdfg, Custom()).run("f").return_value == 1

    def test_unknown_mode_rejected(self):
        cdfg = cdfg_from_source("int f() { return 1; }")
        with pytest.raises(ValueError):
            Interpreter(cdfg, mode="jit")

    def test_undefined_temp_read_fails_loudly(self):
        # Malformed IR (a temp read that no instruction wrote) must fail
        # loudly in both engines, not silently treat the unwritten slot
        # as a value.  The compiled engine sanitizes the IR before
        # compiling, so it rejects the program up front; with the
        # sanitizer off it keeps the walker's runtime diagnostic.
        from repro.ir import VerificationError, set_sanitizer
        from repro.ir.operations import Opcode, Temp

        cdfg = cdfg_from_source("int f(int n) { return n + 1; }")
        block = cdfg.cfg("f").entry
        for ins in block.instructions:
            if ins.opcode not in (Opcode.BR, Opcode.CBR, Opcode.RET):
                ins.operands = (Temp(99),) + ins.operands[1:]
                break
        with pytest.raises(RuntimeError, match="undefined temp %t99"):
            run_function(cdfg, "f", 3, mode="walker")
        with pytest.raises(VerificationError, match="t99"):
            run_function(cdfg, "f", 3, mode="compiled")
        set_sanitizer(False)
        try:
            with pytest.raises(RuntimeError, match="undefined temp %t99"):
                run_function(cdfg, "f", 3, mode="compiled")
        finally:
            set_sanitizer(None)


class TestProfilingParity:
    def _frequencies(self, cdfg, fn, *args):
        out = []
        for mode in ("walker", "compiled"):
            profiler = BlockProfiler()
            Interpreter(cdfg, profiler, mode=mode).run(fn, *args)
            out.append(profiler)
        return out

    def test_frequencies_identical(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += i; }
            return s;
        }
        """
        walker, compiled = self._frequencies(cdfg_from_source(src), "f", 10)
        assert walker.frequencies() == compiled.frequencies()
        assert (
            walker.total_blocks_executed() == compiled.total_blocks_executed()
        )

    def test_per_block_statistics_identical_without_calls(self):
        # On call-free programs the walker's per-instruction attribution
        # and the compiled engine's static derivation agree per block.
        src = """
        int f(int a[8]) {
            int s = 0;
            for (int i = 0; i < 8; i++) { s += a[i]; a[i] = s; }
            return s;
        }
        """
        walker, compiled = self._frequencies(
            cdfg_from_source(src), "f", list(range(8))
        )
        assert walker.profiles.keys() == compiled.profiles.keys()
        for bb_id, wp in walker.profiles.items():
            cp = compiled.profiles[bb_id]
            assert (wp.exec_freq, wp.dynamic_instructions,
                    wp.dynamic_memory_accesses) == (
                cp.exec_freq, cp.dynamic_instructions,
                cp.dynamic_memory_accesses,
            )

    def test_instruction_totals_identical_with_calls(self):
        # With calls the walker misattributes a caller's post-call
        # instructions to the callee's last block; frequencies and
        # whole-program totals must still agree exactly.
        src = """
        int inc(int x) { return x + 1; }
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s = inc(s) + inc(i); }
            return s;
        }
        """
        walker, compiled = self._frequencies(cdfg_from_source(src), "f", 6)
        assert walker.frequencies() == compiled.frequencies()
        for attr in ("dynamic_instructions", "dynamic_memory_accesses"):
            assert sum(
                getattr(p, attr) for p in walker.profiles.values()
            ) == sum(getattr(p, attr) for p in compiled.profiles.values())

    def test_profiler_accumulates_across_runs(self):
        src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }"
        cdfg = cdfg_from_source(src)
        results = []
        for mode in ("walker", "compiled"):
            profiler = BlockProfiler()
            interp = Interpreter(cdfg, profiler, mode=mode)
            interp.run("f", 4)
            interp.run("f", 9)
            results.append(profiler.frequencies())
        assert results[0] == results[1]


class TestWorkloadParity:
    def test_ofdm_symbol_bit_identical(self):
        app = OFDMTransmitterApp()
        bits = [int(b) for b in random_bits(BITS_PER_SYMBOL, seed=77)]
        outputs = []
        for mode in ("walker", "compiled"):
            out_re = ArrayStorage.allocate("o_re", ArrayType(Type.INT, (80,)))
            out_im = ArrayStorage.allocate("o_im", ArrayType(Type.INT, (80,)))
            result = Interpreter(app.cdfg, mode=mode).run(
                "ofdm_symbol", list(bits), out_re, out_im
            )
            outputs.append((result, out_re.snapshot(), out_im.snapshot()))
        assert outputs[0] == outputs[1]

    def test_jpeg_image_bit_identical(self):
        app = JPEGEncoderApp()
        pixels = [int(p) for p in make_test_image(seed=11).ravel()]
        walker = Interpreter(app.cdfg, mode="walker").run(
            "encode_image", list(pixels)
        )
        compiled = Interpreter(app.cdfg, mode="compiled").run(
            "encode_image", list(pixels)
        )
        assert walker == compiled

    def test_jpeg_profile_frequencies_identical(self):
        app = JPEGEncoderApp()
        pixels = [int(p) for p in make_test_image(seed=5).ravel()]
        profilers = []
        for mode in ("walker", "compiled"):
            profiler = BlockProfiler()
            Interpreter(app.cdfg, profiler, mode=mode).run(
                "encode_image", list(pixels)
            )
            profilers.append(profiler)
        assert profilers[0].frequencies() == profilers[1].frequencies()

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_synthetic_programs(self, seed):
        source = synthetic_program_source(seed)
        cdfg = cdfg_from_source(source, f"synth{seed}.c")
        data = [((seed * 37 + i * 13) % 256) - 128 for i in range(32)]
        states = []
        for mode in ("walker", "compiled"):
            storage = ArrayStorage.allocate("d", ArrayType(Type.INT, (32,)))
            for index, value in enumerate(data):
                storage.store(index, value)
            profiler = BlockProfiler()
            interp = Interpreter(cdfg, profiler, mode=mode)
            result = interp.run("entry", storage)
            states.append(
                (
                    result,
                    storage.snapshot(),
                    interp.global_scalar("g_acc"),
                    profiler.frequencies(),
                )
            )
        assert states[0] == states[1]


class TestCompilationCache:
    def test_program_cached_on_cdfg(self):
        cdfg = cdfg_from_source("int f() { return 2; }")
        assert compile_cdfg(cdfg) is compile_cdfg(cdfg)

    def test_mutation_triggers_recompile(self):
        from repro.ir.operations import Const

        cdfg = cdfg_from_source("int f() { return 2 + 0; }")
        first = compile_cdfg(cdfg)
        before = run_function(cdfg, "f", mode="compiled").return_value
        mutated = False
        for block in cdfg.all_blocks():
            for ins in block.instructions:
                if any(
                    isinstance(op, Const) and op.value == 2
                    for op in ins.operands
                ):
                    ins.operands = tuple(
                        Const(9) if isinstance(op, Const) and op.value == 2
                        else op
                        for op in ins.operands
                    )
                    mutated = True
        assert mutated
        assert compile_cdfg(cdfg) is not first
        after = run_function(cdfg, "f", mode="compiled").return_value
        assert (before, after) == (2, 9)

    def test_fingerprint_stable_and_content_sensitive(self):
        a = cdfg_from_source("int f() { return 1 + 2; }")
        b = cdfg_from_source("int f() { return 1 + 2; }")
        c = cdfg_from_source("int f() { return 1 + 3; }")
        assert cdfg_fingerprint(a) == cdfg_fingerprint(b)
        assert cdfg_fingerprint(a) != cdfg_fingerprint(c)
