"""Content-keyed profile cache: hits, invalidation, and the disk layer."""

import json

import pytest

from repro.analysis.dynamic_analysis import profile_cdfg, profile_cdfg_many
from repro.interp import ProfileCache, args_digest, profile_key
from repro.ir import cdfg_from_source
from repro.ir.operations import Const

LOOP_SRC = """
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    return s;
}
"""


def loop_cdfg():
    return cdfg_from_source(LOOP_SRC)


class TestMemoryLayer:
    def test_second_lookup_hits(self):
        cache = ProfileCache()
        cdfg = loop_cdfg()
        first = cache.profile(cdfg, "f", 10)
        second = cache.profile(cdfg, "f", 10)
        assert first.frequencies == second.frequencies
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_profile_matches_uncached_run(self):
        cache = ProfileCache()
        cdfg = loop_cdfg()
        cached = cache.profile(cdfg, "f", 10)
        direct = profile_cdfg(cdfg, "f", 10)
        assert cached.frequencies == direct.frequencies

    def test_different_args_miss(self):
        cache = ProfileCache()
        cdfg = loop_cdfg()
        cache.profile(cdfg, "f", 10)
        cache.profile(cdfg, "f", 11)
        assert cache.stats.misses == 2

    def test_different_entry_miss(self):
        src = LOOP_SRC + "\nint g(int n) { return f(n) + 1; }"
        cache = ProfileCache()
        cdfg = cdfg_from_source(src)
        cache.profile(cdfg, "f", 5)
        cache.profile(cdfg, "g", 5)
        assert cache.stats.misses == 2

    def test_equivalent_programs_share_entries(self):
        # Content keying: two CDFG instances from identical source hit
        # the same cache slot.
        cache = ProfileCache()
        cache.profile(loop_cdfg(), "f", 10)
        cache.profile(loop_cdfg(), "f", 10)
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_mutated_cdfg_misses(self):
        cache = ProfileCache()
        cdfg = cdfg_from_source(
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < 10; i++) { s += n; } return s; }"
        )
        before = cache.profile(cdfg, "f", 10)
        # Shrink the loop bound 10 -> 4 in the IR.
        mutated = False
        for block in cdfg.all_blocks():
            for ins in block.instructions:
                if any(
                    isinstance(op, Const) and op.value == 10
                    for op in ins.operands
                ):
                    ins.operands = tuple(
                        Const(4) if isinstance(op, Const) and op.value == 10
                        else op
                        for op in ins.operands
                    )
                    mutated = True
        assert mutated
        after = cache.profile(cdfg, "f", 10)
        assert cache.stats.misses == 2
        assert before.frequencies != after.frequencies

    def test_profile_many_accumulates_per_input(self):
        cache = ProfileCache()
        cdfg = loop_cdfg()
        combined = profile_cdfg_many(
            cdfg, "f", [(3,), (5,), (3,)], cache=cache
        )
        assert cache.stats.misses == 2  # (3,) cached after the first run
        assert cache.stats.memory_hits == 1
        direct = profile_cdfg_many(cdfg, "f", [(3,), (5,), (3,)])
        assert combined.frequencies == direct.frequencies
        assert combined.runs == direct.runs == 3

    def test_walker_mode_with_cache_rejected(self):
        cache = ProfileCache()
        cdfg = loop_cdfg()
        with pytest.raises(ValueError):
            profile_cdfg(cdfg, "f", 5, cache=cache, mode="walker")
        with pytest.raises(ValueError):
            profile_cdfg_many(cdfg, "f", [(5,)], cache=cache, mode="walker")

    def test_block_profiles_derived(self):
        cache = ProfileCache()
        cdfg = loop_cdfg()
        profiles = cache.block_profiles(cdfg, "f", 6)
        total_instructions = sum(
            p.dynamic_instructions for p in profiles.values()
        )
        record = cache.get_or_run(cdfg, "f", 6)
        assert total_instructions == record.steps
        assert all(p.exec_freq > 0 for p in profiles.values())


class TestArgsDigest:
    def test_value_kinds_distinguished(self):
        assert args_digest((1,)) != args_digest((1.0,))
        assert args_digest((True,)) != args_digest((1,))
        assert args_digest(([1, 2],)) != args_digest(([2, 1],))
        assert args_digest(([1, 2],)) != args_digest(([1], [2]))

    def test_key_stable_across_instances(self):
        assert profile_key(loop_cdfg(), "f", (10,)) == profile_key(
            loop_cdfg(), "f", (10,)
        )


class TestDiskLayer:
    def test_round_trip_across_cache_instances(self, tmp_path):
        cdfg = loop_cdfg()
        writer = ProfileCache(directory=tmp_path)
        first = writer.profile(cdfg, "f", 10)
        assert writer.stats.misses == 1
        assert len(list(tmp_path.glob("*.json"))) == 1

        reader = ProfileCache(directory=tmp_path)
        second = reader.profile(cdfg, "f", 10)
        assert reader.stats.disk_hits == 1
        assert reader.stats.misses == 0
        assert first.frequencies == second.frequencies

    def test_disk_hit_promoted_to_memory(self, tmp_path):
        cdfg = loop_cdfg()
        ProfileCache(directory=tmp_path).profile(cdfg, "f", 7)
        reader = ProfileCache(directory=tmp_path)
        reader.profile(cdfg, "f", 7)
        reader.profile(cdfg, "f", 7)
        assert reader.stats.disk_hits == 1
        assert reader.stats.memory_hits == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cdfg = loop_cdfg()
        key = profile_key(cdfg, "f", (10,))
        (tmp_path / f"{key}.json").write_text("{not json")
        cache = ProfileCache(directory=tmp_path)
        profile = cache.profile(cdfg, "f", 10)
        assert cache.stats.misses == 1
        assert profile.frequencies  # re-profiled and rewritten
        payload = json.loads((tmp_path / f"{key}.json").read_text())
        assert payload["frequencies"]

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cdfg = loop_cdfg()
        cache = ProfileCache(directory=tmp_path)
        cache.profile(cdfg, "f", 10)
        key = profile_key(cdfg, "f", (10,))
        path = tmp_path / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        reader = ProfileCache(directory=tmp_path)
        reader.profile(cdfg, "f", 10)
        assert reader.stats.misses == 1

    def test_clear_memory_keeps_disk(self, tmp_path):
        cdfg = loop_cdfg()
        cache = ProfileCache(directory=tmp_path)
        cache.profile(cdfg, "f", 10)
        cache.clear_memory()
        assert len(cache) == 0
        cache.profile(cdfg, "f", 10)
        assert cache.stats.disk_hits == 1


class TestWorkloadIntegration:
    def test_jpeg_profile_image_cached(self):
        from repro.workloads import JPEGEncoderApp
        from repro.workloads import test_image as make_test_image

        app = JPEGEncoderApp()
        image = make_test_image(seed=8)
        first = app.profile_image(image)
        second = app.profile_image(image)
        assert first.frequencies == second.frequencies
        assert app.profile_cache.stats.misses == 1
        assert app.profile_cache.stats.memory_hits == 1

    def test_ofdm_symbol_superset_reuses_prefix(self):
        from repro.workloads import (
            BITS_PER_SYMBOL,
            OFDMTransmitterApp,
            random_bits,
        )

        app = OFDMTransmitterApp()
        symbols = [random_bits(BITS_PER_SYMBOL, seed=s) for s in (1, 2, 3)]
        one = app.profile_symbols(symbols[:1])
        all_three = app.profile_symbols(symbols)
        assert app.profile_cache.stats.misses == 3  # not 4
        assert app.profile_cache.stats.memory_hits == 1
        hot_one = dict(one.hottest(3))
        hot_three = dict(all_three.hottest(3))
        for bb_id, freq in hot_one.items():
            assert hot_three[bb_id] == 3 * freq

    def test_explore_measured_workload_uses_disk_cache(self, tmp_path):
        from repro.explore import (
            DesignSpace,
            PlatformSpec,
            WorkloadSpec,
            explore,
        )

        space = DesignSpace(
            workloads=(WorkloadSpec.ofdm_measured(symbols=1),),
            platforms=(PlatformSpec(afpga=1500, cgc_count=2),),
            constraint_fractions=(0.8,),
        )
        first = explore(
            space, max_workers=1, profile_cache_dir=str(tmp_path)
        )
        assert len(list(tmp_path.glob("*.json"))) == 1
        second = explore(
            space, max_workers=1, profile_cache_dir=str(tmp_path)
        )
        assert first.results == second.results
        result = first.results[0]
        assert result.workload == "ofdm-transmitter-measured-s1"
        assert result.reduction_percent >= 0

    def test_measured_labels_encode_params(self):
        from repro.explore import WorkloadSpec

        assert (
            WorkloadSpec.ofdm_measured(symbols=3).label
            != WorkloadSpec.ofdm_measured(symbols=6).label
        )
        assert (
            WorkloadSpec.jpeg_measured(image_seed=1).label
            != WorkloadSpec.jpeg_measured(image_seed=2).label
        )


class TestDefaultProfileCacheEnv:
    """The REPRO_PROFILE_CACHE_DIR hook (CI's actions/cache hinge)."""

    def test_env_unset_is_memory_only(self, monkeypatch):
        from repro.interp.cache import default_profile_cache

        monkeypatch.delenv("REPRO_PROFILE_CACHE_DIR", raising=False)
        assert default_profile_cache().directory is None

    def test_env_names_the_disk_layer(self, monkeypatch, tmp_path):
        from pathlib import Path

        from repro.interp.cache import default_profile_cache

        monkeypatch.setenv("REPRO_PROFILE_CACHE_DIR", str(tmp_path))
        assert default_profile_cache().directory == Path(tmp_path)

    def test_measured_build_writes_through_env_cache(
        self, monkeypatch, tmp_path
    ):
        from repro.explore import WorkloadSpec

        monkeypatch.setenv("REPRO_PROFILE_CACHE_DIR", str(tmp_path))
        WorkloadSpec.ofdm_measured(symbols=1).build()
        assert list(tmp_path.glob("*.json")), (
            "measured build ignored REPRO_PROFILE_CACHE_DIR"
        )
