"""Profiler and runtime-value tests."""

import pytest

from repro.frontend.ast_nodes import ArrayType, Type
from repro.interp import ArrayStorage, BlockProfiler, coerce, profile_run
from repro.ir import cdfg_from_source

LOOP_SRC = """
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    return s;
}
"""


class TestProfiler:
    def test_loop_body_frequency(self):
        cdfg = cdfg_from_source(LOOP_SRC)
        profiler = profile_run(cdfg, "f", 10)
        freqs = profiler.frequencies()
        body_id = next(
            b.bb_id
            for b in cdfg.all_blocks()
            if "for_body" in b.label
        )
        assert freqs[body_id] == 10

    def test_header_executes_n_plus_one(self):
        cdfg = cdfg_from_source(LOOP_SRC)
        profiler = profile_run(cdfg, "f", 10)
        header_id = next(
            b.bb_id for b in cdfg.all_blocks() if "for_header" in b.label
        )
        assert profiler.exec_freq(header_id) == 11

    def test_entry_executes_once(self):
        cdfg = cdfg_from_source(LOOP_SRC)
        profiler = profile_run(cdfg, "f", 10)
        entry_id = cdfg.cfg("f").entry.bb_id
        assert profiler.exec_freq(entry_id) == 1

    def test_unexecuted_block_zero(self):
        src = "int f(int x) { if (x) { return 1; } return 0; }"
        cdfg = cdfg_from_source(src)
        profiler = profile_run(cdfg, "f", 0)
        then_id = next(
            b.bb_id for b in cdfg.all_blocks() if "then" in b.label
        )
        assert profiler.exec_freq(then_id) == 0

    def test_memory_access_counting(self):
        src = "int f(int a[4]) { int s = 0; for (int i = 0; i < 4; i++) { s += a[i]; } return s; }"
        cdfg = cdfg_from_source(src)
        profiler = profile_run(cdfg, "f", [1, 2, 3, 4])
        total_mem = sum(
            p.dynamic_memory_accesses for p in profiler.profiles.values()
        )
        assert total_mem == 4

    def test_reset(self):
        cdfg = cdfg_from_source(LOOP_SRC)
        profiler = profile_run(cdfg, "f", 5)
        profiler.reset()
        assert profiler.frequencies() == {}

    def test_total_blocks_matches_result(self):
        cdfg = cdfg_from_source(LOOP_SRC)
        from repro.interp import Interpreter

        profiler = BlockProfiler()
        result = Interpreter(cdfg, profiler).run("f", 4)
        assert profiler.total_blocks_executed() == result.blocks_executed


class TestValues:
    def test_coerce_int(self):
        assert coerce(3.9, Type.INT) == 3
        assert coerce(-3.9, Type.INT) == -3

    def test_coerce_float(self):
        assert coerce(3, Type.FLOAT) == 3.0
        assert isinstance(coerce(3, Type.FLOAT), float)

    def test_coerce_void_rejected(self):
        with pytest.raises(TypeError):
            coerce(1, Type.VOID)

    def test_array_allocate_zeroed(self):
        storage = ArrayStorage.allocate("a", ArrayType(Type.INT, (3,)))
        assert storage.snapshot() == [0, 0, 0]

    def test_array_float_zeroed(self):
        storage = ArrayStorage.allocate("a", ArrayType(Type.FLOAT, (2,)))
        assert storage.snapshot() == [0.0, 0.0]

    def test_from_values_coerces(self):
        storage = ArrayStorage.from_values(
            "a", ArrayType(Type.INT, (3,)), [1.5, 2.9, 3]
        )
        assert storage.snapshot() == [1, 2, 3]

    def test_from_values_overflow_rejected(self):
        with pytest.raises(ValueError):
            ArrayStorage.from_values("a", ArrayType(Type.INT, (2,)), [1, 2, 3])

    def test_store_coerces(self):
        storage = ArrayStorage.allocate("a", ArrayType(Type.INT, (2,)))
        storage.store(0, 9.7)
        assert storage.load(0) == 9

    def test_negative_index_rejected(self):
        storage = ArrayStorage.allocate("a", ArrayType(Type.INT, (2,)))
        with pytest.raises(IndexError):
            storage.load(-1)

    def test_non_integer_index_rejected(self):
        storage = ArrayStorage.allocate("a", ArrayType(Type.INT, (2,)))
        with pytest.raises(TypeError):
            storage.load(0.5)

    def test_2d_size(self):
        storage = ArrayStorage.allocate("a", ArrayType(Type.INT, (4, 8)))
        assert len(storage) == 32
