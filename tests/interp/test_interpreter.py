"""Interpreter behaviour tests: language semantics end to end."""

import pytest

from repro.frontend.ast_nodes import ArrayType, Type
from repro.interp import (
    ArrayStorage,
    ExecutionLimitExceeded,
    Interpreter,
    run_function,
)
from repro.ir import cdfg_from_source


def run(source, fn, *args, **kwargs):
    return run_function(cdfg_from_source(source), fn, *args, **kwargs).return_value


class TestExpressions:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("7 / 2", 3),
            ("-7 / 2", -3),
            ("7 % 3", 1),
            ("-7 % 3", -1),
            ("1 << 5", 32),
            ("-16 >> 2", -4),
            ("12 & 10", 8),
            ("12 | 10", 14),
            ("12 ^ 10", 6),
            ("~0", -1),
            ("!5", 0),
            ("!0", 1),
            ("3 < 4", 1),
            ("4 <= 4", 1),
            ("5 == 5", 1),
            ("5 != 5", 0),
            ("1 && 0", 0),
            ("1 || 0", 1),
            ("1 ? 10 : 20", 10),
            ("0 ? 10 : 20", 20),
            ("abs(0 - 9)", 9),
            ("min(4, 2)", 2),
            ("max(4, 2)", 4),
            ("(int) 3.99", 3),
        ],
    )
    def test_constant_expressions(self, expr, expected):
        assert run(f"int f() {{ return {expr}; }}", "f") == expected

    def test_float_arithmetic(self):
        value = run("float f() { return 1.5 + 2.25; }", "f")
        assert value == pytest.approx(3.75)

    def test_float_truncation_on_int_assign(self):
        assert run("int f() { int a = 0; a = 7 / 2; return a; }", "f") == 3

    def test_sqrt_intrinsic(self):
        assert run("float f() { return sqrt(16.0); }", "f") == pytest.approx(4.0)

    def test_round_intrinsic(self):
        assert run("int f() { return round(2.5); }", "f") == 3


class TestControlFlow:
    def test_if_taken(self):
        src = "int f(int x) { if (x > 0) { return 1; } return 0; }"
        assert run(src, "f", 5) == 1
        assert run(src, "f", -5) == 0

    def test_nested_if_else(self):
        src = """
        int sign(int x) {
            if (x > 0) { return 1; }
            else { if (x < 0) { return -1; } else { return 0; } }
        }
        """
        assert [run(src, "sign", v) for v in (9, -9, 0)] == [1, -1, 0]

    def test_while_loop(self):
        src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }"
        assert run(src, "f", 5) == 15

    def test_do_while_runs_once(self):
        src = "int f() { int c = 0; do { c++; } while (0); return c; }"
        assert run(src, "f") == 1

    def test_for_loop_sum(self):
        src = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += i; } return s; }"
        assert run(src, "f", 100) == 5050

    def test_break(self):
        src = """
        int f() {
            int i = 0;
            while (1) { if (i >= 7) { break; } i++; }
            return i;
        }
        """
        assert run(src, "f") == 7

    def test_continue(self):
        src = """
        int evens(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 1) { continue; }
                s += i;
            }
            return s;
        }
        """
        assert run(src, "evens", 10) == 20

    def test_nested_loops(self):
        src = """
        int f(int n) {
            int c = 0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j <= i; j++) { c++; }
            }
            return c;
        }
        """
        assert run(src, "f", 4) == 10

    def test_step_budget_enforced(self):
        cdfg = cdfg_from_source("void f() { while (1) { } }")
        with pytest.raises(ExecutionLimitExceeded):
            run_function(cdfg, "f", max_steps=10_000)


class TestFunctionsAndArrays:
    def test_recursion(self):
        src = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        """
        assert run(src, "fib", 10) == 55

    def test_array_param_by_reference(self):
        src = """
        void fill(int a[4], int v) {
            for (int i = 0; i < 4; i++) { a[i] = v * i; }
        }
        """
        cdfg = cdfg_from_source(src)
        storage = ArrayStorage.allocate("a", ArrayType(Type.INT, (4,)))
        Interpreter(cdfg).run("fill", storage, 3)
        assert storage.snapshot() == [0, 3, 6, 9]

    def test_list_arguments_copied_in(self):
        src = "int first(int a[3]) { return a[0]; }"
        assert run(src, "first", [7, 8, 9]) == 7

    def test_2d_array_linearization(self):
        src = """
        int f() {
            int m[2][3];
            for (int i = 0; i < 2; i++) {
                for (int j = 0; j < 3; j++) { m[i][j] = 10 * i + j; }
            }
            return m[1][2];
        }
        """
        assert run(src, "f") == 12

    def test_global_const_table(self):
        src = """
        const int T[4] = {5, 10, 15, 20};
        int pick(int i) { return T[i]; }
        """
        assert run(src, "pick", 2) == 15

    def test_global_scalar_mutation(self):
        src = """
        int counter = 0;
        void bump() { counter = counter + 1; }
        int f() { bump(); bump(); bump(); return counter; }
        """
        assert run(src, "f") == 3

    def test_out_of_bounds_raises(self):
        src = "int f() { int a[2]; return a[5]; }"
        with pytest.raises(IndexError):
            run(src, "f")

    def test_wrong_arity_raises(self):
        with pytest.raises(TypeError):
            run("int f(int a) { return a; }", "f")

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            run("int f() { return 1; }", "g")

    def test_scalar_where_array_expected(self):
        src = "int first(int a[3]) { return a[0]; }"
        with pytest.raises(TypeError):
            run(src, "first", 3)


class TestAlgorithms:
    def test_gcd(self):
        src = """
        int gcd(int a, int b) {
            while (b != 0) { int t = b; b = a % b; a = t; }
            return a;
        }
        """
        assert run(src, "gcd", 48, 36) == 12

    def test_bubble_sort(self):
        src = """
        void sort(int a[6]) {
            for (int i = 0; i < 6; i++) {
                for (int j = 0; j < 5 - i; j++) {
                    if (a[j] > a[j + 1]) {
                        int t = a[j];
                        a[j] = a[j + 1];
                        a[j + 1] = t;
                    }
                }
            }
        }
        """
        cdfg = cdfg_from_source(src)
        storage = ArrayStorage.allocate("a", ArrayType(Type.INT, (6,)))
        for index, value in enumerate([5, 2, 9, 1, 7, 3]):
            storage.store(index, value)
        Interpreter(cdfg).run("sort", storage)
        assert storage.snapshot() == [1, 2, 3, 5, 7, 9]

    def test_fixed_point_mac(self):
        src = """
        int mac(int a[4], int b[4]) {
            int acc = 0;
            for (int i = 0; i < 4; i++) { acc += (a[i] * b[i]) >> 4; }
            return acc;
        }
        """
        assert run(src, "mac", [16, 32, 48, 64], [16, 16, 16, 16]) == 160
