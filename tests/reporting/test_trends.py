"""Tests for longitudinal trend analytics and step detection."""

import csv

import pytest

from repro.reporting import (
    StepThresholds,
    compute_trends,
    detect_first_step,
    render_trends,
    write_trends_csv,
    write_trends_html,
)
from repro.reporting.trends import trends_json_dict
from repro.suite import ResultStore, ScenarioResult, SuiteRun


def result(scenario, cycles, wall=1.0, cps=50_000.0, phases=()):
    return ScenarioResult(
        scenario=scenario,
        workload="w",
        platform="p",
        algorithm="greedy",
        constraint_fraction=0.5,
        timing_constraint=500,
        initial_cycles=2 * cycles,
        total_cycles=cycles,
        reduction_percent=50.0,
        kernels_moved=2,
        moved_bb_ids=(3, 7),
        rows_used=2,
        constraint_met=True,
        wall_time_seconds=wall,
        configs_per_second=cps,
        phases=tuple(phases),
    )


def record(store, fingerprint, results, label=""):
    store.record_run(
        SuiteRun(fingerprint=fingerprint, label=label, results=results)
    )


@pytest.fixture
def regression_store():
    """Five runs of one scenario with a 2x cycle regression landing at
    fingerprint ddd444 (run 4) and persisting."""
    store = ResultStore(":memory:")
    cycles = [1000, 1000, 1001, 2000, 2000]
    prints = ["aaa111", "bbb222", "ccc333", "ddd444", "eee555"]
    for fingerprint, c in zip(prints, cycles):
        record(
            store,
            fingerprint,
            [result("ofdm-greedy", c, phases=[("search", 0.5)])],
        )
    yield store
    store.close()


class TestDetectFirstStep:
    def test_flags_first_sustained_step_up(self):
        hit = detect_first_step([100, 100, 150, 150], 10.0, "up")
        assert hit is not None
        index, baseline, delta = hit
        assert index == 2
        assert baseline == 100
        assert delta == pytest.approx(50.0)

    def test_flags_step_down(self):
        hit = detect_first_step([100, 100, 40], 10.0, "down")
        assert hit == (2, 100, pytest.approx(-60.0))

    def test_flat_series_never_flags(self):
        assert detect_first_step([100, 101, 99, 100], 10.0, "up") is None

    def test_median_baseline_survives_one_off_spike(self):
        # The spike at index 1 is itself a step; but with the spike
        # first, the median keeps later values honest.
        values = [100, 100, 100, 180, 100, 100]
        hit = detect_first_step(values, 50.0, "up")
        assert hit is not None and hit[0] == 3
        # After the spike recovers, no *new* step past it.
        assert detect_first_step([100, 100, 100], 50.0, "up") is None

    def test_floor_suppresses_tiny_values(self):
        # Both sides under the floor: jitter, not a regression.
        assert (
            detect_first_step([0.001, 0.003], 10.0, "up", floor=0.05)
            is None
        )
        # Crossing the floor still flags.
        assert (
            detect_first_step([0.04, 0.2], 10.0, "up", floor=0.05)
            is not None
        )

    def test_zero_baseline_is_skipped(self):
        assert detect_first_step([0.0, 100.0], 10.0, "up") is None

    def test_short_series_never_flags(self):
        assert detect_first_step([], 10.0, "up") is None
        assert detect_first_step([100], 10.0, "up") is None

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError):
            detect_first_step([1, 2], 10.0, "sideways")


class TestComputeTrends:
    def test_injected_cycle_regression_names_first_fingerprint(
        self, regression_store
    ):
        report = compute_trends(regression_store)
        (trend,) = report.trends
        assert trend.name == "ofdm-greedy"
        cycle_steps = [
            s for s in trend.steps if s.metric == "total_cycles"
        ]
        assert len(cycle_steps) == 1
        step = cycle_steps[0]
        # The first offending run, not the latest one.
        assert step.fingerprint == "ddd444"
        assert step.run_id == 4
        assert step.delta_percent == pytest.approx(100.0, abs=0.5)
        assert "ddd444" in step.describe()
        assert "total_cycles" in step.describe()

    def test_no_steps_on_stable_store(self):
        with ResultStore(":memory:") as store:
            for fp in ("a1", "b2", "c3"):
                record(store, fp, [result("s1", 1000)])
            report = compute_trends(store)
        assert report.steps == []

    def test_scenario_selection_preserves_order_and_tolerates_unknown(
        self, regression_store
    ):
        report = compute_trends(
            regression_store, scenarios=["nope", "ofdm-greedy"]
        )
        assert [t.name for t in report.trends] == ["nope", "ofdm-greedy"]
        assert report.trends[0].points == []
        assert report.trends[0].steps == []

    def test_wall_noise_floor_suppresses_micro_scenarios(self):
        with ResultStore(":memory:") as store:
            record(store, "a1", [result("s1", 1000, wall=0.001)])
            record(store, "b2", [result("s1", 1000, wall=0.004)])
            report = compute_trends(store)
        assert [s.metric for s in report.steps] == []

    def test_throughput_drop_flags_down_direction(self):
        with ResultStore(":memory:") as store:
            record(store, "a1", [result("s1", 1000, cps=100_000.0)])
            record(store, "b2", [result("s1", 1000, cps=10_000.0)])
            report = compute_trends(store)
        (step,) = report.steps
        assert step.metric == "configs_per_second"
        assert step.fingerprint == "b2"
        assert step.delta_percent < 0

    def test_custom_thresholds(self, regression_store):
        loose = StepThresholds(cycle_percent=150.0)
        report = compute_trends(regression_store, thresholds=loose)
        assert [
            s for s in report.steps if s.metric == "total_cycles"
        ] == []


class TestRendering:
    def test_render_mentions_step_and_phases(self, regression_store):
        text = render_trends(compute_trends(regression_store))
        assert "ofdm-greedy" in text
        assert "ddd444" in text
        assert "search s" in text  # phase column from trace data
        assert "metric step(s) detected" in text

    def test_render_stable_report(self):
        with ResultStore(":memory:") as store:
            record(store, "a1", [result("s1", 1000)])
            text = render_trends(compute_trends(store))
        assert "no metric steps detected" in text

    def test_csv_rows_and_step_marker(self, regression_store, tmp_path):
        path = write_trends_csv(
            compute_trends(regression_store), tmp_path / "trends.csv"
        )
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5  # one per run
        assert rows[0]["scenario"] == "ofdm-greedy"
        assert "phase_search" in rows[0]
        by_run = {row["run_id"]: row for row in rows}
        assert "total_cycles" in by_run["4"]["stepped_metrics"]
        assert by_run["1"]["stepped_metrics"] == ""
        assert by_run["1"]["created_at"] != ""

    def test_csv_renders_dash_for_legacy_created_at(self, tmp_path):
        import sqlite3

        db = tmp_path / "legacy.sqlite"
        with ResultStore(db) as store:
            record(store, "a1", [result("s1", 1000)])
        connection = sqlite3.connect(db)
        connection.execute("UPDATE runs SET created_at = ''")
        connection.commit()
        connection.close()
        with ResultStore(db) as store:
            report = compute_trends(store)
            path = write_trends_csv(report, tmp_path / "t.csv")
        with path.open() as handle:
            (row,) = list(csv.DictReader(handle))
        assert row["created_at"] == "-"

    def test_html_is_self_contained_and_highlights_step(
        self, regression_store, tmp_path
    ):
        path = write_trends_html(
            compute_trends(regression_store), tmp_path / "trends.html"
        )
        text = path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<script" not in text
        assert "http://" not in text and "https://" not in text
        assert "ddd444" in text
        assert "class='stepped'" in text
        assert "ofdm-greedy" in text

    def test_html_escapes_labels(self, tmp_path):
        with ResultStore(":memory:") as store:
            record(
                store,
                "a1",
                [result("s1", 1000)],
                label="<img src=x>",
            )
            path = write_trends_html(
                compute_trends(store), tmp_path / "t.html"
            )
        text = path.read_text()
        assert "<img src=x>" not in text
        assert "&lt;img" in text

    def test_json_dict_shape(self, regression_store):
        payload = trends_json_dict(compute_trends(regression_store))
        (scenario,) = payload["scenarios"]
        assert scenario["name"] == "ofdm-greedy"
        assert scenario["runs"] == 5
        assert any(
            step["fingerprint"] == "ddd444"
            and step["metric"] == "total_cycles"
            for step in scenario["steps"]
        )
