"""Reporting layer tests: experiment runners and table rendering."""

import pytest

from repro.reporting import (
    format_grid,
    render_partition_table,
    render_table1,
    reproduce_table1_jpeg,
    reproduce_table1_ofdm,
    scaled_constraint,
)
from repro.workloads import (
    OFDM_TIMING_CONSTRAINT,
    PAPER_TABLE2_OFDM,
)


class TestTable1Runners:
    def test_ofdm_rows_match(self):
        comparisons = reproduce_table1_ofdm()
        assert len(comparisons) == 8
        assert all(c.matches for c in comparisons)

    def test_jpeg_rows_match(self):
        comparisons = reproduce_table1_jpeg()
        assert len(comparisons) == 8
        assert all(c.matches for c in comparisons)

    def test_render_table1(self):
        text = render_table1(reproduce_table1_ofdm(), "Table 1 (OFDM)")
        assert "BB no." in text and "38640" in text


class TestScaledConstraint:
    def test_scale_relative_slack(self, ofdm):
        constraint, scale = scaled_constraint(
            ofdm, PAPER_TABLE2_OFDM, OFDM_TIMING_CONSTRAINT
        )
        assert constraint == pytest.approx(
            OFDM_TIMING_CONSTRAINT * scale, abs=1
        )
        assert 0 < scale < 2


class TestFormatting:
    def test_grid_alignment(self):
        text = format_grid(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_partition_table_renders(self):
        from repro.reporting import reproduce_table2

        table = reproduce_table2()
        text = render_partition_table(table)
        assert "A_FPGA" in text
        assert "scale factor" in text
        assert "22,12,3" in text
