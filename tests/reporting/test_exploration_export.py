"""Round-trip coverage for the exploration CSV/JSON export and the
Pareto-front export (previously only exercised by the examples)."""

import csv
import json

import pytest

from repro.explore import ExplorationReport, ExplorationResult
from repro.reporting import (
    render_exploration,
    render_pareto,
    write_exploration_csv,
    write_exploration_json,
    write_pareto_csv,
)
from repro.reporting.exploration import CSV_FIELDS, PARETO_CSV_FIELDS
from repro.search import VisitedConfiguration, pareto_front


def result(**overrides):
    base = dict(
        workload="wl",
        platform="plat",
        afpga=1500,
        cgc_count=2,
        clock_ratio=3,
        reconfig_cycles=20,
        constraint_fraction=0.5,
        timing_constraint=500,
        initial_cycles=1000,
        final_cycles=400,
        reduction_percent=60.0,
        kernels_moved=2,
        moved_bb_ids=(3, 7),
        reverted_bb_ids=(9,),
        skipped_bb_ids=(),
        constraint_met=True,
        algorithm="annealing",
    )
    base.update(overrides)
    return ExplorationResult(**base)


@pytest.fixture()
def report():
    return ExplorationReport(
        results=[
            result(),
            result(
                algorithm="greedy",
                final_cycles=450,
                moved_bb_ids=(3,),
                kernels_moved=1,
                constraint_met=False,
            ),
        ],
        workers_used=2,
        tasks_run=2,
        elapsed_seconds=0.25,
        block_cost_evaluations=123,
        blocks_mapped=45,
    )


class TestExplorationCsv:
    def test_headers_match_declared_fields(self, report, tmp_path):
        path = write_exploration_csv(report.results, tmp_path / "out.csv")
        with path.open() as handle:
            header = next(csv.reader(handle))
        assert tuple(header) == CSV_FIELDS
        assert "algorithm" in header

    def test_row_count_and_value_fidelity(self, report, tmp_path):
        path = write_exploration_csv(report.results, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(report.results)
        first = rows[0]
        assert first["workload"] == "wl"
        assert first["algorithm"] == "annealing"
        assert int(first["initial_cycles"]) == 1000
        assert int(first["final_cycles"]) == 400
        assert float(first["reduction_percent"]) == 60.0
        assert first["moved_bb_ids"] == "3;7"
        assert first["reverted_bb_ids"] == "9"
        assert first["skipped_bb_ids"] == ""
        assert first["constraint_met"] == "True"
        assert rows[1]["algorithm"] == "greedy"
        assert rows[1]["constraint_met"] == "False"

    def test_empty_results_write_header_only(self, tmp_path):
        path = write_exploration_csv([], tmp_path / "empty.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1


class TestExplorationJson:
    def test_summary_and_results_round_trip(self, report, tmp_path):
        path = write_exploration_json(report, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        summary = payload["summary"]
        assert summary["points"] == 2
        assert summary["tasks_run"] == 2
        assert summary["workers_used"] == 2
        assert summary["block_cost_evaluations"] == 123
        assert summary["blocks_mapped"] == 45
        assert summary["constraints_met"] == 1
        assert len(payload["results"]) == 2
        record = payload["results"][0]
        assert record == report.results[0].to_dict()
        assert record["algorithm"] == "annealing"
        assert record["moved_bb_ids"] == [3, 7]


class TestRenderIncludesAlgorithm:
    def test_table_has_algorithm_column(self, report):
        text = render_exploration(report)
        assert "algorithm" in text and "annealing" in text


class TestParetoExport:
    @pytest.fixture()
    def front(self):
        return pareto_front(
            [
                VisitedConfiguration(100, 3, 2, (1, 2, 3), "annealing"),
                VisitedConfiguration(250, 1, 1, (1,), "greedy"),
                VisitedConfiguration(260, 2, 2, (1, 2), "greedy"),
            ]
        )

    def test_csv_round_trip(self, front, tmp_path):
        path = write_pareto_csv(front, tmp_path / "front.csv")
        with path.open() as handle:
            header = next(csv.reader(handle))
            handle.seek(0)
            rows = list(csv.DictReader(handle))
        assert tuple(header) == PARETO_CSV_FIELDS
        assert len(rows) == len(front) == 2  # dominated point dropped
        assert rows[0]["moved_bb_ids"] == "1;2;3"
        assert int(rows[0]["total_cycles"]) == 100
        assert rows[1]["algorithm"] == "greedy"

    def test_render(self, front):
        text = render_pareto(front)
        assert "CGC rows" in text and "annealing" in text

    def test_render_empty(self):
        assert render_pareto([])
