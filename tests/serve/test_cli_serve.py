"""``python -m repro serve`` argument and bind error paths.

Only failure paths run here — a successful ``serve`` blocks forever,
and the daemon behind it is covered in-process by test_daemon.py.
"""

import socket

from repro.__main__ import main


def run_cli(*argv):
    return main(list(argv))


def test_port_out_of_range_exits_2(capsys):
    assert run_cli("serve", "--port", "70000") == 2
    assert "--port must be in 0..65535" in capsys.readouterr().err


def test_negative_port_exits_2(capsys):
    assert run_cli("serve", "--port", "-1") == 2
    assert "--port must be in 0..65535" in capsys.readouterr().err


def test_zero_workers_exits_2(capsys):
    assert run_cli("serve", "--workers", "0", "--port", "0") == 2
    assert "workers must be >= 1" in capsys.readouterr().err


def test_zero_queue_capacity_exits_2(capsys):
    assert run_cli("serve", "--queue-capacity", "0", "--port", "0") == 2
    assert "queue_capacity must be >= 1" in capsys.readouterr().err


def test_negative_batch_window_exits_2(capsys):
    assert run_cli("serve", "--batch-window", "-0.1", "--port", "0") == 2
    assert "batch_window_seconds must be >= 0" in capsys.readouterr().err


def test_negative_default_timeout_exits_2(capsys):
    assert run_cli("serve", "--default-timeout", "-5", "--port", "0") == 2
    assert "default_timeout_seconds must be >= 0" in capsys.readouterr().err


def test_occupied_port_exits_2(capsys):
    blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        assert run_cli("serve", "--port", str(port)) == 2
        assert "cannot bind" in capsys.readouterr().err
    finally:
        blocker.close()
