"""Fault tolerance of the serving layer.

Chaos through the front door: deterministic
:class:`~repro.faults.FaultPlan` schedules run through a real
:class:`Server` (and daemon), asserting the acceptance contract — a
seeded plan killing two workers yields results bit-identical to a
fault-free run with the recovery visible in ``stats()``; an expired
search deadline returns best-so-far flagged uncertified; the breaker
and the drain deadline fail fast instead of hanging.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
import warnings

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.serve import (
    ServeDaemon,
    Server,
    ServerConfig,
    ServerStoppedError,
)
from repro.serve.jobs import JobRequest
from repro.specs import algorithm_spec_from_text, workload_spec_from_text

WORKLOAD = workload_spec_from_text("synthetic:24:seed=5")
#: 26 supported kernels: exhaustive at this cap walks 2^26 subsets,
#: which takes tens of seconds — any millisecond deadline truncates it.
BIG_WORKLOAD = workload_spec_from_text("synthetic:64:seed=3")
GREEDY = algorithm_spec_from_text("greedy")
EXHAUSTIVE = algorithm_spec_from_text("exhaustive:max_candidates=26")


def submit_n(server, count, algorithm=GREEDY, workload=WORKLOAD):
    return [
        server.submit(
            JobRequest(workload=workload, fraction=0.5, algorithm=algorithm)
        )
        for __ in range(count)
    ]


def run_batch(config, count=4, algorithm=GREEDY, workload=WORKLOAD):
    server = Server(config).start()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ids = submit_n(server, count, algorithm, workload)
            payloads = [
                server.await_result(job_id, timeout=120).to_payload()
                for job_id in ids
            ]
        return payloads, server.stats()
    finally:
        server.shutdown()


class TestFaultRecovery:
    def test_two_killed_workers_bit_identical(self):
        # The acceptance scenario: a plan killing two of four workers
        # mid-batch; the merged output must match a fault-free run and
        # the recovery must be visible in /stats.
        baseline, __ = run_batch(ServerConfig(workers=4))
        plan = FaultPlan.crash_at(0, 1)
        chaotic, stats = run_batch(
            ServerConfig(workers=4, task_retries=2, fault_plan=plan)
        )
        assert all(p["state"] == "done" for p in chaotic)
        assert [p["result"] for p in baseline] == [
            p["result"] for p in chaotic
        ]
        robustness = stats["robustness"]
        assert robustness["pool_rebuilds"] >= 1
        assert robustness["tasks_recovered"] >= 2

    def test_flaky_task_retries_then_succeeds(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=0, attempt=0, kind="error", message="flaky")
        )
        payloads, stats = run_batch(
            ServerConfig(
                workers=2,
                task_retries=1,
                retry_backoff_seconds=0.0,
                fault_plan=plan,
            ),
            count=2,
        )
        assert all(p["state"] == "done" for p in payloads)
        assert stats["robustness"]["task_retries"] == 1

    def test_exhausted_failure_is_structured(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=0, attempt=0, kind="error", message="a"),
            FaultSpec(task_index=0, attempt=1, kind="error", message="b"),
        )
        payloads, stats = run_batch(
            ServerConfig(
                workers=2,
                task_retries=1,
                retry_backoff_seconds=0.0,
                fault_plan=plan,
            ),
            count=2,
        )
        failed = [p for p in payloads if p["state"] == "failed"]
        done = [p for p in payloads if p["state"] == "done"]
        assert len(failed) == 1 and len(done) == 1
        assert failed[0]["error"]["failure_kind"] == "exception"
        assert stats["robustness"]["tasks_failed"] == 1


class TestSearchDeadline:
    def test_expired_deadline_returns_uncertified(self):
        payloads, __ = run_batch(
            ServerConfig(workers=1, search_deadline_seconds=0.02),
            count=1,
            algorithm=EXHAUSTIVE,
            workload=BIG_WORKLOAD,
        )
        payload = payloads[0]
        assert payload["state"] == "done"
        assert payload["result"]["partial"] is True
        assert payload["result"]["certified"] is False
        assert "degraded" not in payload

    def test_degrade_falls_back_to_greedy(self):
        payloads, stats = run_batch(
            ServerConfig(
                workers=1,
                search_deadline_seconds=0.02,
                degrade_under_deadline=True,
            ),
            count=1,
            algorithm=EXHAUSTIVE,
            workload=BIG_WORKLOAD,
        )
        payload = payloads[0]
        assert payload["state"] == "done"
        assert payload["degraded"] is True
        # The fallback greedy run completed: certified.
        assert payload["result"]["certified"] is True
        assert stats["robustness"]["degraded_jobs"] == 1

    def test_greedy_jobs_never_degrade(self):
        payloads, stats = run_batch(
            ServerConfig(
                workers=1,
                search_deadline_seconds=60.0,
                degrade_under_deadline=True,
            ),
            count=2,
        )
        assert all(p["state"] == "done" for p in payloads)
        assert all("degraded" not in p for p in payloads)
        assert stats["robustness"]["degraded_jobs"] == 0


class TestCircuitBreaker:
    def persistent_crashes(self):
        return FaultPlan(
            specs=tuple(
                FaultSpec(task_index=0, attempt=a, kind="crash")
                for a in range(8)
            )
        )

    def test_breaker_trips_and_rejects(self):
        config = ServerConfig(
            workers=2,
            fault_plan=self.persistent_crashes(),
            breaker_threshold=2,
            breaker_cooldown_seconds=60.0,
        )
        server = Server(config).start()
        try:
            payloads = []
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                for __ in range(3):
                    (job_id,) = submit_n(server, 1)
                    payloads.append(
                        server.await_result(job_id, timeout=120).to_payload()
                    )
            stats = server.stats()
        finally:
            server.shutdown()
        # Groups 1 and 2 fail on infrastructure; group 3 is rejected
        # fast by the now-open breaker with a retry hint.
        assert [p["state"] for p in payloads] == ["failed"] * 3
        assert payloads[2]["error"]["code"] == "circuit-open"
        assert payloads[2]["error"]["retry_after_seconds"] > 0
        robustness = stats["robustness"]
        assert robustness["breaker_trips"] == 1
        assert robustness["breaker_rejections"] == 1
        assert robustness["open_breakers"] == 1

    def test_user_errors_do_not_trip_breaker(self):
        # Task exceptions are the job's own problem, not the pool's;
        # the breaker must ignore them.
        plan = FaultPlan(
            specs=tuple(
                FaultSpec(task_index=0, attempt=a, kind="error", message="x")
                for a in range(4)
            )
        )
        config = ServerConfig(
            workers=2,
            fault_plan=plan,
            breaker_threshold=1,
            breaker_cooldown_seconds=60.0,
        )
        server = Server(config).start()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                for __ in range(2):
                    (job_id,) = submit_n(server, 1)
                    payload = server.await_result(
                        job_id, timeout=120
                    ).to_payload()
                    assert payload["state"] == "failed"
                    assert payload["error"]["code"] != "circuit-open"
            stats = server.stats()
        finally:
            server.shutdown()
        assert stats["robustness"]["breaker_trips"] == 0

    def test_clean_group_closes_half_open_breaker(self):
        # One persistently-crashing group trips the breaker; after the
        # cooldown a clean group resets it instead of re-tripping.
        config = ServerConfig(
            workers=2,
            fault_plan=self.persistent_crashes(),
            breaker_threshold=1,
            breaker_cooldown_seconds=0.05,
        )
        server = Server(config).start()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                (first,) = submit_n(server, 1)
                failed = server.await_result(first, timeout=120).to_payload()
                assert failed["state"] == "failed"
                assert server.stats()["robustness"]["open_breakers"] == 1
                # Cooldown passes and the fault clears (the plan is per
                # batch, so drop it for the probe group).
                server.config = ServerConfig(
                    workers=2,
                    breaker_threshold=1,
                    breaker_cooldown_seconds=0.05,
                )
                time.sleep(0.1)  # past the cooldown: half-open
                (second,) = submit_n(server, 1)
                ok = server.await_result(second, timeout=120).to_payload()
            stats = server.stats()
        finally:
            server.shutdown()
        assert ok["state"] == "done"
        assert stats["robustness"]["open_breakers"] == 0


class TestDispatcherLiveness:
    def test_await_result_fails_fast_when_dispatcher_dies(self):
        # A dispatcher body that exits silently (the pathological case
        # the liveness probe exists for): jobs stay queued forever, and
        # await_result must raise instead of hanging.
        server = Server(ServerConfig(workers=1))
        server._dispatch_forever = lambda: None
        server.start()
        try:
            (job_id,) = submit_n(server, 1)
            with pytest.raises(ServerStoppedError):
                server.await_result(job_id, timeout=30)
        finally:
            server._stopping = True

    def test_dispatcher_crash_fails_pending_jobs(self):
        # A crash inside the loop must resolve every pending job with a
        # structured server-stopped error, not leave pollers hanging.
        # The crash boundary re-raises after failing the jobs; hook the
        # thread excepthook so that *expected* re-raise stays quiet.
        release = threading.Event()

        def dying_loop():
            release.wait(30)
            raise RuntimeError("injected dispatcher crash")

        server = Server(ServerConfig(workers=1))
        server._dispatch_forever = dying_loop
        previous_hook = threading.excepthook
        threading.excepthook = lambda args: None
        try:
            server.start()
            (job_id,) = submit_n(server, 1)
            release.set()
            record = server.await_result(job_id, timeout=30)
            thread = server._thread
            if thread is not None:
                thread.join(timeout=10)
        finally:
            threading.excepthook = previous_hook
        assert record.state == "failed"
        assert record.error["code"] == "server-stopped"
        assert "injected dispatcher crash" in str(record.error["message"])


# ----------------------------------------------------------------------
# Daemon surface
# ----------------------------------------------------------------------
def _url(daemon, path):
    host, port = daemon.address
    return f"http://{host}:{port}{path}"


def _post_job(daemon):
    body = json.dumps(
        {"workload": "synthetic:24:seed=5", "fraction": 0.5}
    ).encode()
    request = urllib.request.Request(
        _url(daemon, "/jobs"),
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read()), reply.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


class TestDaemonRobustness:
    def test_submit_during_shutdown_is_503_with_retry_after(self):
        daemon = ServeDaemon(
            ServerConfig(batch_window_seconds=0), port=0
        ).start()
        try:
            # Stop intake without tearing down the HTTP loop, exactly
            # the drain window a SIGTERM opens.
            daemon.server.shutdown(drain=True)
            status, payload, headers = _post_job(daemon)
            assert status == 503
            assert payload["error"]["code"] == "server-stopped"
            assert headers["Retry-After"] is not None
        finally:
            daemon.close()

    def test_drain_deadline_unwedges_stuck_job(self):
        # A job hung by an injected 30 s stall cannot wedge shutdown:
        # the drain deadline force-fails it and close() returns.
        plan = FaultPlan.of(
            FaultSpec(task_index=0, attempt=0, kind="slow", seconds=30.0)
        )
        daemon = ServeDaemon(
            ServerConfig(batch_window_seconds=0, fault_plan=plan),
            port=0,
            drain_deadline_seconds=0.5,
        ).start()
        status, payload, __ = _post_job(daemon)
        assert status == 202
        job_id = payload["job_id"]
        time.sleep(0.1)  # let the dispatcher pick the job up
        started = time.monotonic()
        daemon.close()
        assert time.monotonic() - started < 10.0
        record = daemon.server.record(job_id)
        assert record.finished
        assert record.error is not None
        assert record.error["code"] == "server-stopped"

    def test_drain_deadline_validation(self):
        with pytest.raises(ValueError):
            ServeDaemon(ServerConfig(), port=0, drain_deadline_seconds=0.0)
