"""The HTTP shell: JSON endpoints, status codes, signal-driven drain.

Every test binds an ephemeral port (``port=0``) so suites can run in
parallel; the SIGTERM test raises the real signal against installed
handlers and restores the previous handlers afterwards.
"""

import json
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ServeDaemon, ServerConfig, ServerStoppedError


@pytest.fixture
def daemon():
    with ServeDaemon(
        ServerConfig(batch_window_seconds=0), port=0
    ) as instance:
        yield instance


def url(daemon, path):
    host, port = daemon.address
    return f"http://{host}:{port}{path}"


def get(daemon, path):
    try:
        with urllib.request.urlopen(
            url(daemon, path), timeout=30
        ) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(daemon, path, payload):
    body = (
        payload if isinstance(payload, bytes)
        else json.dumps(payload).encode()
    )
    request = urllib.request.Request(
        url(daemon, path),
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, json.loads(reply.read()), reply.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


JOB = {"workload": "synthetic:24:seed=5", "fraction": 0.5}


class TestEndpoints:
    def test_submit_poll_stats_round_trip(self, daemon):
        status, payload, _ = post(daemon, "/jobs", JOB)
        assert status == 202
        job_id = payload["job_id"]

        deadline = time.monotonic() + 60
        while True:
            status, snapshot = get(daemon, f"/jobs/{job_id}")
            assert status == 200
            if snapshot["state"] == "done":
                break
            assert time.monotonic() < deadline, snapshot
            time.sleep(0.01)
        assert snapshot["result"]["final_cycles"] > 0

        status, stats = get(daemon, "/stats")
        assert status == 200
        assert stats["jobs"]["submitted"] == 1
        assert stats["jobs"]["completed"] == 1

        status, health = get(daemon, "/healthz")
        assert status == 200 and health == {"ok": True}

    def test_malformed_json_is_400(self, daemon):
        status, payload, _ = post(daemon, "/jobs", b"{not json")
        assert status == 400
        assert payload["error"]["code"] == "invalid-request"
        assert "malformed JSON" in payload["error"]["message"]

    def test_invalid_job_is_400(self, daemon):
        status, payload, _ = post(
            daemon, "/jobs", {"workload": "nonsense", "fraction": 0.5}
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid-request"

    def test_empty_body_is_400(self, daemon):
        status, payload, _ = post(daemon, "/jobs", b"")
        assert status == 400
        assert "empty request body" in payload["error"]["message"]

    def test_unknown_job_is_404(self, daemon):
        status, payload = get(daemon, "/jobs/999")
        assert status == 404
        assert payload["error"]["code"] == "unknown-job"

    def test_non_integer_job_id_is_400(self, daemon):
        status, payload = get(daemon, "/jobs/abc")
        assert status == 400
        assert payload["error"]["code"] == "invalid-request"

    def test_unknown_route_is_404(self, daemon):
        status, payload = get(daemon, "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not-found"


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self):
        # A wide batch window keeps the dispatcher asleep while we
        # overfill the 1-slot queue, making the 429 deterministic.
        with ServeDaemon(
            ServerConfig(queue_capacity=1, batch_window_seconds=0.5),
            port=0,
        ) as daemon:
            first, *_ = post(daemon, "/jobs", JOB)
            assert first == 202
            status, payload, headers = post(daemon, "/jobs", JOB)
            assert status == 429
            assert payload["error"]["code"] == "queue-full"
            assert float(headers["Retry-After"]) > 0
            assert payload["error"]["retry_after_seconds"] > 0


class TestShutdown:
    def test_shutdown_endpoint_drains(self):
        daemon = ServeDaemon(
            ServerConfig(batch_window_seconds=0), port=0
        ).start()
        _, submitted, _ = post(daemon, "/jobs", JOB)
        status, payload, _ = post(daemon, "/shutdown", {})
        assert status == 202 and payload == {"draining": True}
        assert daemon.wait(timeout=60)
        record = daemon.server.record(submitted["job_id"])
        assert record.state == "done"
        with pytest.raises(ServerStoppedError):
            daemon.server.submit_payload(JOB)

    def test_sigterm_drains_queued_jobs(self):
        previous_term = signal.getsignal(signal.SIGTERM)
        previous_int = signal.getsignal(signal.SIGINT)
        daemon = ServeDaemon(
            ServerConfig(batch_window_seconds=0), port=0
        )
        try:
            daemon.install_signal_handlers()
            daemon.start()
            job_ids = [
                post(daemon, "/jobs", JOB)[1]["job_id"] for _ in range(3)
            ]
            waiter = threading.Thread(
                target=daemon.wait, kwargs={"timeout": 60}
            )
            waiter.start()
            signal.raise_signal(signal.SIGTERM)
            waiter.join(timeout=60)
            assert not waiter.is_alive()
            # Drained, not cancelled: every accepted job finished.
            for job_id in job_ids:
                assert daemon.server.record(job_id).state == "done"
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)
            daemon.close()
