"""The in-process batching server: queueing, batching, errors, drain.

Determinism trick used throughout: jobs submitted *before*
``start()`` sit in the queue untouched, so queue-full, timeout-expiry
and cancellation tests never race the dispatcher.
"""

import threading
import time

import pytest

from repro import telemetry
from repro.explore import PlatformSpec, WorkloadSpec
from repro.search import make_partitioner
from repro.serve import (
    JobRequest,
    JobValidationError,
    QueueFullError,
    Server,
    ServerConfig,
    ServerStoppedError,
    UnknownJobError,
)
from repro.specs import algorithm_spec_from_text

SMALL = WorkloadSpec.synthetic(24, seed=5)
OTHER = WorkloadSpec.synthetic(24, seed=9)
GREEDY = algorithm_spec_from_text("greedy")


def request(workload=SMALL, **kwargs):
    kwargs.setdefault("fraction", 0.5)
    return JobRequest(workload=workload, algorithm=GREEDY, **kwargs)


@pytest.fixture(autouse=True)
def fresh_trace():
    telemetry.reset_trace()
    yield
    telemetry.reset_trace()


class TestBatching:
    def test_jobs_sharing_a_pair_build_one_table(self):
        server = Server(ServerConfig(batch_window_seconds=0))
        job_ids = [server.submit(request()) for _ in range(8)]
        server.start()
        records = [server.await_result(j, timeout=60) for j in job_ids]
        server.shutdown()

        assert all(r.state == "done" for r in records)
        trace = telemetry.get_trace()
        assert trace.total_counter("cost_table_builds") == 1
        # One gulp took the whole pre-queued batch.
        assert server.stats()["jobs"]["batches"] == 1
        cycles = {r.result.final_cycles for r in records}
        assert len(cycles) == 1

    def test_result_matches_serial_partitioner(self):
        with Server(ServerConfig(batch_window_seconds=0)) as server:
            record = server.await_result(
                server.submit(request()), timeout=60
            )
        workload, platform = SMALL.build(), PlatformSpec().build()
        partitioner = make_partitioner(GREEDY, workload, platform)
        constraint = max(1, round(partitioner.initial_cycles() * 0.5))
        reference = partitioner.run(constraint)
        assert record.result.final_cycles == reference.final_cycles
        assert record.result.moved_bb_ids == reference.moved_bb_ids
        assert record.result.timing_constraint == reference.timing_constraint

    def test_distinct_pairs_build_distinct_tables(self):
        with Server(ServerConfig(batch_window_seconds=0)) as server:
            ids = [
                server.submit(request(workload))
                for workload in (SMALL, OTHER, SMALL)
            ]
            for job_id in ids:
                server.await_result(job_id, timeout=60)
        assert telemetry.get_trace().total_counter("cost_table_builds") == 2

    def test_lru_eviction_reprices_cold_pairs(self):
        # Capacity 1: alternating pairs evict each other, so each
        # alternation rebuilds; the same pair twice in a row does not.
        with Server(
            ServerConfig(batch_window_seconds=0, cache_capacity=1)
        ) as server:
            for workload in (SMALL, SMALL, OTHER, SMALL):
                server.await_result(
                    server.submit(request(workload)), timeout=60
                )
        trace = telemetry.get_trace()
        # SMALL built, SMALL hit, OTHER evicts SMALL, SMALL rebuilt.
        assert trace.total_counter("cost_table_builds") == 3
        assert trace.total_counter("serve_table_cache_hits") == 1

    def test_worker_pool_results_match_dispatcher_thread(self):
        def run(workers):
            telemetry.reset_trace()
            with Server(
                ServerConfig(workers=workers, batch_window_seconds=0)
            ) as server:
                ids = [server.submit(request()) for _ in range(4)]
                return [
                    server.await_result(j, timeout=120).result
                    for j in ids
                ]

        serial = run(workers=1)
        pooled = run(workers=2)
        assert [r.final_cycles for r in serial] == [
            r.final_cycles for r in pooled
        ]
        assert [r.moved_bb_ids for r in serial] == [
            r.moved_bb_ids for r in pooled
        ]


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self):
        server = Server(ServerConfig(queue_capacity=2))
        server.submit(request())
        server.submit(request())
        with pytest.raises(QueueFullError) as excinfo:
            server.submit(request())
        error = excinfo.value
        assert error.retry_after_seconds > 0
        payload = error.to_payload()
        assert payload["code"] == "queue-full"
        assert payload["retry_after_seconds"] > 0
        stats = server.stats()
        assert stats["jobs"]["rejected"] == 1
        assert stats["jobs"]["submitted"] == 2
        server.shutdown()

    def test_rejected_jobs_have_no_record(self):
        server = Server(ServerConfig(queue_capacity=1))
        job_id = server.submit(request())
        with pytest.raises(QueueFullError):
            server.submit(request())
        with pytest.raises(UnknownJobError):
            server.record(job_id + 1)
        server.shutdown()


class TestTimeouts:
    def test_expired_job_gets_structured_timeout_error(self):
        server = Server(ServerConfig(batch_window_seconds=0))
        job_id = server.submit(request(timeout_seconds=0.01))
        time.sleep(0.05)  # expire while still queued, pre-dispatch
        server.start()
        record = server.await_result(job_id, timeout=30)
        server.shutdown()
        assert record.state == "timeout"
        assert record.error["code"] == "timeout"
        assert record.error["timeout_seconds"] == pytest.approx(0.01)
        assert record.result is None
        assert server.stats()["jobs"]["timeouts"] == 1

    def test_config_default_timeout_applies(self):
        server = Server(
            ServerConfig(
                batch_window_seconds=0, default_timeout_seconds=0.01
            )
        )
        job_id = server.submit(request())  # no per-job timeout
        time.sleep(0.05)
        server.start()
        record = server.await_result(job_id, timeout=30)
        server.shutdown()
        assert record.state == "timeout"

    def test_await_timeout_is_a_wait_timeout_not_a_job_state(self):
        server = Server(ServerConfig(batch_window_seconds=0))
        job_id = server.submit(request())
        with pytest.raises(TimeoutError):
            server.await_result(job_id, timeout=0.01)  # never started
        server.start()
        record = server.await_result(job_id, timeout=60)
        server.shutdown()
        assert record.state == "done"


class TestLifecycle:
    def test_cancel_queued_job(self):
        server = Server()
        job_id = server.submit(request())
        assert server.cancel(job_id) is True
        record = server.record(job_id)
        assert record.state == "cancelled"
        assert record.done_event.is_set()
        # Already out of the queue: a second cancel is a no-op.
        assert server.cancel(job_id) is False
        server.shutdown()

    def test_submit_after_shutdown_raises(self):
        server = Server()
        server.shutdown()
        with pytest.raises(ServerStoppedError):
            server.submit(request())

    def test_shutdown_drains_queued_jobs(self):
        server = Server(ServerConfig(batch_window_seconds=0))
        ids = [server.submit(request()) for _ in range(3)]
        server.start()
        server.shutdown(drain=True)
        records = [server.record(j) for j in ids]
        assert all(r.state == "done" for r in records)

    def test_shutdown_without_drain_cancels_queue(self):
        server = Server()
        ids = [server.submit(request()) for _ in range(3)]
        server.shutdown(drain=False)  # dispatcher never started
        assert all(
            server.record(j).state == "cancelled" for j in ids
        )

    def test_concurrent_submitters_all_complete(self):
        with Server(ServerConfig(batch_window_seconds=0.01)) as server:
            ids: list[int] = []
            lock = threading.Lock()

            def push():
                for _ in range(5):
                    job_id = server.submit(request())
                    with lock:
                        ids.append(job_id)

            threads = [threading.Thread(target=push) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            records = [
                server.await_result(j, timeout=120) for j in ids
            ]
        assert len(records) == 20
        assert all(r.state == "done" for r in records)
        assert telemetry.get_trace().total_counter("cost_table_builds") == 1


class TestPayloads:
    def test_submit_payload_round_trip(self):
        with Server(ServerConfig(batch_window_seconds=0)) as server:
            job_id = server.submit_payload(
                {"workload": "synthetic:24:seed=5", "fraction": 0.5}
            )
            record = server.await_result(job_id, timeout=60)
            payload = server.poll(job_id)
        assert record.state == "done"
        assert payload["state"] == "done"
        assert payload["result"]["final_cycles"] == (
            record.result.final_cycles
        )
        assert payload["latency_seconds"] >= 0

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([], "JSON object"),
            ({}, "'workload'"),
            ({"workload": 7}, "'workload'"),
            ({"workload": "nonsense"}, "unknown workload"),
            ({"workload": "synthetic:24"}, "constraint"),
            (
                {"workload": "synthetic:24", "fraction": 0.5,
                 "constraint": 10},
                "exactly one",
            ),
            ({"workload": "synthetic:24", "fraction": -0.5}, "fraction"),
            (
                {"workload": "synthetic:24", "fraction": 0.5,
                 "algorithm": "quantum"},
                "unknown algorithm",
            ),
            (
                {"workload": "synthetic:24", "fraction": 0.5,
                 "flavor": "spicy"},
                "unknown job field",
            ),
            (
                {"workload": "synthetic:24", "fraction": 0.5,
                 "timeout_seconds": -1},
                "timeout_seconds",
            ),
        ],
    )
    def test_invalid_payloads_are_structured_errors(
        self, payload, fragment
    ):
        server = Server()
        with pytest.raises(JobValidationError) as excinfo:
            server.submit_payload(payload)
        assert fragment in str(excinfo.value)
        assert excinfo.value.to_payload()["code"] == "invalid-request"
        server.shutdown()

    def test_unknown_job_is_structured(self):
        server = Server()
        with pytest.raises(UnknownJobError) as excinfo:
            server.poll(41)
        assert excinfo.value.to_payload()["code"] == "unknown-job"
        server.shutdown()
