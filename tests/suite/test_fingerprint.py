"""Tests for the code-version fingerprint."""

from pathlib import Path

from repro.suite import content_fingerprint, repo_fingerprint
from repro.suite.fingerprint import CONTENT_HASH_LENGTH, package_root


class TestContentFingerprint:
    def test_stable_for_unchanged_tree(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        assert content_fingerprint(tmp_path) == content_fingerprint(tmp_path)

    def test_changes_when_source_changes(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = content_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        assert content_fingerprint(tmp_path) != before

    def test_changes_when_file_moves(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = content_fingerprint(tmp_path)
        (tmp_path / "a.py").rename(tmp_path / "b.py")
        assert content_fingerprint(tmp_path) != before

    def test_length_and_charset(self):
        digest = content_fingerprint()
        assert len(digest) == CONTENT_HASH_LENGTH
        assert all(c in "0123456789abcdef" for c in digest)


class TestRepoFingerprint:
    def test_contains_content_hash(self):
        fingerprint = repo_fingerprint()
        assert content_fingerprint() in fingerprint

    def test_package_root_is_the_repro_package(self):
        root = package_root()
        assert isinstance(root, Path)
        assert (root / "__init__.py").is_file()
        assert root.name == "repro"

    def test_no_git_falls_back_to_content_hash(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        fingerprint = repo_fingerprint(tmp_path)
        assert fingerprint == content_fingerprint(tmp_path)
