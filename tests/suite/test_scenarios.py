"""Tests for the scenario registry."""

import pytest

from repro.suite import (
    SCENARIOS,
    Scenario,
    default_suite,
    get_scenario,
    register_scenario,
    scenario_names,
    select_scenarios,
)
from repro.explore import WorkloadSpec


class TestRegistry:
    def test_default_suite_covers_the_required_families(self):
        names = scenario_names()
        workloads = {s.workload.kind for s in default_suite()}
        assert {"ofdm", "jpeg", "synthetic", "filterbank", "viterbi"} <= (
            workloads
        )
        assert len(names) >= 10
        assert len(set(names)) == len(names)

    def test_axes_are_represented(self):
        tags = {tag for s in default_suite() for tag in s.tags}
        assert {"skew", "comm", "size", "new-workload"} <= tags

    def test_get_scenario_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError, match="ofdm-greedy"):
            get_scenario("nope")

    def test_select_by_names_preserves_order(self):
        chosen = select_scenarios(["viterbi-greedy", "ofdm-greedy"])
        assert [s.name for s in chosen] == ["viterbi-greedy", "ofdm-greedy"]

    def test_select_by_tag(self):
        chosen = select_scenarios(tag="new-workload")
        assert chosen
        assert all("new-workload" in s.tags for s in chosen)

    def test_register_rejects_duplicates(self):
        existing = next(iter(SCENARIOS.values()))
        with pytest.raises(ValueError, match="duplicate"):
            register_scenario(existing)

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            Scenario(name="", workload=WorkloadSpec.ofdm())
        with pytest.raises(ValueError):
            Scenario(
                name="x",
                workload=WorkloadSpec.ofdm(),
                constraint_fraction=0.0,
            )

    def test_scenarios_are_hashable_and_describable(self):
        for scenario in default_suite():
            hash(scenario)
            assert scenario.workload.label in scenario.describe()
