"""Concurrent store opens: the migration must not race itself.

Two ``python -m repro suite run`` processes pointed at one SQLite
store used to race the v1->v4 migration: both saw ``user_version < 4``,
both issued the same ALTERs, and the loser died on ``duplicate column
name``.  The fix takes the migration under ``BEGIN IMMEDIATE`` so the
processes serialize; these tests drive real subprocesses against a
shared v1 fixture to prove it.
"""

import sqlite3
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.suite import ResultStore
from repro.suite.store import SCHEMA_VERSION

from test_store_migrations import build_v1_fixture

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Subprocess body: wait for a go-file so both processes hit the store
#: in the same instant, then open it (running the migration) and record
#: a sentinel row.  Prints OK on success so the parent can assert.
_WORKER = """
import json, sys, time
sys.path.insert(0, {src!r})
from repro.suite import ResultStore, ScenarioResult, SuiteRun

store_path, go_path, label = sys.argv[1], sys.argv[2], sys.argv[3]
deadline = time.monotonic() + 30.0
import os
while not os.path.exists(go_path):
    if time.monotonic() > deadline:
        raise SystemExit("go-file never appeared")
    time.sleep(0.001)

with ResultStore(store_path) as store:
    run = SuiteRun(label=label, fingerprint="beef",
                   created_at="2026-08-08T00:00:00+00:00")
    run.results.append(ScenarioResult(
        scenario=label, workload="w", platform="p", algorithm="greedy",
        constraint_fraction=0.5, timing_constraint=500,
        initial_cycles=2000, total_cycles=1000, reduction_percent=50.0,
        kernels_moved=1, moved_bb_ids=(3,), rows_used=1,
        constraint_met=True, wall_time_seconds=0.1,
    ))
    store.record_run(run)
print("OK", label)
"""


def _spawn(store_path, go_path, label):
    return subprocess.Popen(
        [sys.executable, "-c", _WORKER.format(src=SRC),
         str(store_path), str(go_path), label],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def test_two_processes_migrate_one_v1_store(tmp_path):
    """Both processes survive the simultaneous v1->v4 migration."""
    store_path = tmp_path / "shared.sqlite"
    go_path = tmp_path / "go"
    build_v1_fixture(store_path)

    workers = [_spawn(store_path, go_path, f"racer-{i}") for i in range(2)]
    # Give both processes time to reach the go-file spin, then release
    # them together so the ResultStore opens overlap.
    time.sleep(0.3)
    go_path.write_text("go")
    outcomes = [w.communicate(timeout=60) for w in workers]
    for worker, (out, err) in zip(workers, outcomes):
        assert worker.returncode == 0, f"stdout={out!r} stderr={err!r}"
        assert out.startswith("OK"), out

    # The store migrated exactly once and holds the legacy row plus
    # both sentinel runs.
    connection = sqlite3.connect(store_path)
    try:
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        assert version == SCHEMA_VERSION
        labels = {
            row[0]
            for row in connection.execute("SELECT label FROM runs")
        }
        assert labels == {"old", "racer-0", "racer-1"}
        columns = {
            row[1]
            for row in connection.execute("PRAGMA table_info(results)")
        }
        assert {"configs_per_second", "pruned_subtrees", "phases"} <= columns
    finally:
        connection.close()


def test_many_processes_open_fresh_store(tmp_path):
    """Fresh-store creation is equally race-free (no fixture)."""
    store_path = tmp_path / "fresh.sqlite"
    go_path = tmp_path / "go"

    workers = [_spawn(store_path, go_path, f"fresh-{i}") for i in range(4)]
    time.sleep(0.3)
    go_path.write_text("go")
    outcomes = [w.communicate(timeout=60) for w in workers]
    for worker, (out, err) in zip(workers, outcomes):
        assert worker.returncode == 0, f"stdout={out!r} stderr={err!r}"

    with ResultStore(store_path) as store:
        labels = {row["label"] for row in store.runs_summary()}
    assert labels == {f"fresh-{i}" for i in range(4)}


def test_open_waits_behind_foreign_write_lock(tmp_path):
    """The open serializes behind another writer instead of erroring.

    A foreign connection holds ``BEGIN IMMEDIATE`` for a moment; the
    store open must block on the busy timeout (not raise ``database is
    locked``) and complete once the lock drops.
    """
    store_path = tmp_path / "locked.sqlite"
    build_v1_fixture(store_path)

    blocker = sqlite3.connect(store_path, check_same_thread=False)
    blocker.execute("BEGIN IMMEDIATE")

    hold_seconds = 0.5
    release_timer = threading.Timer(hold_seconds, blocker.commit)
    release_timer.start()
    started = time.monotonic()
    try:
        store = ResultStore(store_path)
    finally:
        release_timer.join()
        blocker.close()
    waited = time.monotonic() - started
    store.close()

    assert waited >= hold_seconds * 0.5, (
        f"open returned after {waited:.3f}s; expected it to wait for "
        "the foreign write lock"
    )
    connection = sqlite3.connect(store_path)
    try:
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        assert version == SCHEMA_VERSION
    finally:
        connection.close()
