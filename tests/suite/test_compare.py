"""Tests for the comparison / regression-gating layer."""

import dataclasses

import pytest

from repro.suite import (
    RegressionThresholds,
    SuiteRun,
    assert_no_regressions,
    compare_runs,
)
from test_store import make_result, make_run


def with_cycles(run: SuiteRun, scenario: str, cycles: int) -> SuiteRun:
    """A copy of ``run`` with one scenario's total_cycles replaced."""
    results = [
        dataclasses.replace(r, total_cycles=cycles)
        if r.scenario == scenario
        else r
        for r in run.results
    ]
    return dataclasses.replace(run, results=results)


class TestCycleGating:
    def test_identical_runs_have_no_regressions(self):
        run = make_run()
        comparison = compare_runs(run, run)
        assert not comparison.has_regressions
        assert all(d.status in ("ok",) for d in comparison.deltas)

    def test_doubled_cycles_is_detected(self):
        baseline = make_run()
        candidate = with_cycles(
            baseline, "s1", baseline.results[0].total_cycles * 2
        )
        comparison = compare_runs(baseline, candidate)
        (regression,) = comparison.regressions()
        assert regression.scenario == "s1"
        assert regression.status == "regressed"
        assert regression.cycle_delta_percent == pytest.approx(100.0)
        with pytest.raises(AssertionError, match="total_cycles"):
            assert_no_regressions(comparison)

    def test_growth_below_threshold_is_ok(self):
        baseline = make_run()
        candidate = with_cycles(
            baseline, "s1", round(baseline.results[0].total_cycles * 1.1)
        )
        comparison = compare_runs(
            baseline, candidate, RegressionThresholds(cycle_percent=20.0)
        )
        assert not comparison.has_regressions

    def test_threshold_is_configurable(self):
        baseline = make_run()
        candidate = with_cycles(
            baseline, "s1", round(baseline.results[0].total_cycles * 1.1)
        )
        comparison = compare_runs(
            baseline, candidate, RegressionThresholds(cycle_percent=5.0)
        )
        assert comparison.has_regressions

    def test_improvement_is_labelled(self):
        baseline = make_run()
        candidate = with_cycles(baseline, "s1", 1)
        comparison = compare_runs(baseline, candidate)
        assert comparison.deltas[0].status == "improved"
        assert not comparison.has_regressions


class TestStructuralGating:
    def test_missing_scenario_gates(self):
        baseline = make_run()
        candidate = dataclasses.replace(
            baseline, results=baseline.results[1:]
        )
        comparison = compare_runs(baseline, candidate)
        (regression,) = comparison.regressions()
        assert regression.status == "removed"

    def test_added_scenario_does_not_gate(self):
        baseline = make_run()
        candidate = dataclasses.replace(
            baseline,
            results=baseline.results + [make_result("s3")],
        )
        comparison = compare_runs(baseline, candidate)
        assert not comparison.has_regressions
        assert comparison.deltas[-1].status == "added"

    def test_newly_missed_constraint_gates(self):
        baseline = make_run()
        results = [
            dataclasses.replace(r, constraint_met=False)
            if r.scenario == "s1"
            else r
            for r in baseline.results
        ]
        candidate = dataclasses.replace(baseline, results=results)
        comparison = compare_runs(baseline, candidate)
        assert comparison.has_regressions
        assert "constraint" in comparison.regressions()[0].reasons[0]


class TestWallGating:
    def test_wall_gating_is_off_by_default(self):
        baseline = make_run()
        results = [
            dataclasses.replace(r, wall_time_seconds=100.0)
            for r in baseline.results
        ]
        candidate = dataclasses.replace(baseline, results=results)
        assert not compare_runs(baseline, candidate).has_regressions

    def test_wall_gating_when_enabled(self):
        baseline = make_run()
        results = [
            dataclasses.replace(r, wall_time_seconds=100.0)
            for r in baseline.results
        ]
        candidate = dataclasses.replace(baseline, results=results)
        comparison = compare_runs(
            baseline,
            candidate,
            RegressionThresholds(wall_percent=20.0),
        )
        assert comparison.has_regressions

    def test_noise_floor_suppresses_fast_scenarios(self):
        # 0.001s -> 0.01s is +900% but far below the floor: not gated.
        baseline = dataclasses.replace(
            make_run(),
            results=[make_result("s1", wall_time_seconds=0.001)],
        )
        candidate = dataclasses.replace(
            baseline,
            results=[make_result("s1", wall_time_seconds=0.01)],
        )
        comparison = compare_runs(
            baseline,
            candidate,
            RegressionThresholds(wall_percent=20.0, min_wall_seconds=0.25),
        )
        assert not comparison.has_regressions

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RegressionThresholds(cycle_percent=-1.0)
        with pytest.raises(ValueError):
            RegressionThresholds(wall_percent=-5.0)


class TestSummary:
    def test_summary_counts_statuses(self):
        baseline = make_run()
        candidate = with_cycles(
            baseline, "s1", baseline.results[0].total_cycles * 2
        )
        summary = compare_runs(baseline, candidate).summary()
        assert "1 regression(s)" in summary
        assert "1 ok" in summary


class TestThroughputGating:
    """configs_per_second drops gate like cycle growth (opt-in)."""

    def _pair(self, base_cps: float, cand_cps: float):
        baseline = dataclasses.replace(
            make_run(),
            results=[make_result("s1", configs_per_second=base_cps)],
        )
        candidate = dataclasses.replace(
            baseline,
            results=[make_result("s1", configs_per_second=cand_cps)],
        )
        return baseline, candidate

    def test_off_by_default(self):
        baseline, candidate = self._pair(100_000.0, 1_000.0)
        assert not compare_runs(baseline, candidate).has_regressions

    def test_throughput_drop_gates_when_enabled(self):
        baseline, candidate = self._pair(100_000.0, 10_000.0)
        comparison = compare_runs(
            baseline, candidate,
            RegressionThresholds(throughput_percent=50.0),
        )
        (regression,) = comparison.regressions()
        assert regression.throughput_delta_percent == pytest.approx(-90.0)
        with pytest.raises(AssertionError, match="configs_per_second"):
            assert_no_regressions(comparison)

    def test_drop_below_threshold_is_ok(self):
        baseline, candidate = self._pair(100_000.0, 80_000.0)
        comparison = compare_runs(
            baseline, candidate,
            RegressionThresholds(throughput_percent=50.0),
        )
        assert not comparison.has_regressions

    def test_throughput_gain_never_gates(self):
        baseline, candidate = self._pair(10_000.0, 100_000.0)
        comparison = compare_runs(
            baseline, candidate,
            RegressionThresholds(throughput_percent=50.0),
        )
        assert not comparison.has_regressions

    def test_pre_v2_baseline_is_exempt(self):
        # A baseline recorded before schema v2 carries 0.0: no gating.
        baseline, candidate = self._pair(0.0, 1_000.0)
        comparison = compare_runs(
            baseline, candidate,
            RegressionThresholds(throughput_percent=50.0),
        )
        assert not comparison.has_regressions

    def test_pre_v2_candidate_is_exempt(self):
        # A pre-v2 *candidate* (0.0) is a missing metric, not -100%.
        baseline, candidate = self._pair(100_000.0, 0.0)
        comparison = compare_runs(
            baseline, candidate,
            RegressionThresholds(throughput_percent=50.0),
        )
        assert not comparison.has_regressions

    def test_noise_floor_exempts_tiny_baselines(self):
        baseline, candidate = self._pair(500.0, 50.0)
        comparison = compare_runs(
            baseline, candidate,
            RegressionThresholds(
                throughput_percent=50.0, min_configs_per_second=1000.0
            ),
        )
        assert not comparison.has_regressions

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RegressionThresholds(throughput_percent=-1.0)
        with pytest.raises(ValueError):
            RegressionThresholds(min_configs_per_second=-1.0)
