"""Tests for the batched scenario runner."""

import pytest

from repro.explore import WorkloadSpec
from repro.suite import (
    ResultStore,
    Scenario,
    get_scenario,
    run_scenario,
    run_suite,
    select_scenarios,
)

#: A fast subset exercising paper + synthetic + both new workloads.
FAST = ["synth-small", "viterbi-greedy", "filterbank-greedy"]


class TestRunScenario:
    def test_result_matches_scenario_pins(self):
        scenario = get_scenario("viterbi-greedy")
        result = run_scenario(scenario)
        assert result.scenario == "viterbi-greedy"
        assert result.workload == scenario.workload.label
        assert result.algorithm == scenario.algorithm.label
        assert result.platform == scenario.platform.label
        assert result.total_cycles <= result.initial_cycles
        assert result.wall_time_seconds > 0
        assert result.timing_constraint == max(
            1, round(result.initial_cycles * scenario.constraint_fraction)
        )

    def test_rows_used_recorded_for_moved_kernels(self):
        result = run_scenario(get_scenario("viterbi-greedy"))
        assert result.kernels_moved >= 1
        assert result.rows_used >= 1

    def test_deterministic_cycles_across_runs(self):
        first = run_scenario(get_scenario("synth-small"))
        second = run_scenario(get_scenario("synth-small"))
        assert first.total_cycles == second.total_cycles
        assert first.moved_bb_ids == second.moved_bb_ids


class TestRunSuite:
    def test_subset_runs_in_order_and_records(self):
        with ResultStore(":memory:") as store:
            run = run_suite(
                select_scenarios(FAST),
                store=store,
                label="test",
                max_workers=1,
            )
            assert run.run_id is not None
            loaded = store.load_run(run.run_id)
        assert run.scenario_names() == FAST
        assert loaded.results == run.results
        assert run.fingerprint
        assert run.elapsed_seconds > 0

    def test_explicit_fingerprint_is_kept(self):
        run = run_suite(
            select_scenarios(["synth-small"]),
            max_workers=1,
            fingerprint="pinned",
        )
        assert run.fingerprint == "pinned"

    def test_empty_scenario_list_rejected(self):
        with pytest.raises(ValueError):
            run_suite([], max_workers=1)

    def test_duplicate_scenario_names_rejected(self):
        scenario = Scenario(
            name="dup", workload=WorkloadSpec.synthetic(4, seed=1)
        )
        with pytest.raises(ValueError, match="unique"):
            run_suite([scenario, scenario], max_workers=1)

    def test_parallel_matches_serial_cycles(self):
        scenarios = select_scenarios(FAST)
        serial = run_suite(scenarios, max_workers=1)
        parallel = run_suite(scenarios, max_workers=2)
        assert [r.total_cycles for r in serial.results] == [
            r.total_cycles for r in parallel.results
        ]
        assert [r.scenario for r in parallel.results] == FAST


class TestEvaluationThroughput:
    def test_configs_per_second_recorded(self):
        result = run_scenario(get_scenario("synth-small"))
        assert result.configs_per_second > 0.0

    def test_exact_scenarios_record_pruned_subtrees(self):
        """The branch-and-bound scenarios surface their pruning counts;
        everything else records the 0 sentinel."""
        bnb = run_scenario(get_scenario("exact-bnb-certify-34"))
        assert bnb.pruned_subtrees > 0
        sharded = run_scenario(get_scenario("exact-sharded-16k"))
        assert sharded.pruned_subtrees == 0
        greedy = run_scenario(get_scenario("synth-small"))
        assert greedy.pruned_subtrees == 0

    def test_table_cache_prices_each_pair_once(self):
        """Two scenarios sharing a (workload, platform) pair build one
        packed table; the second run reuses it."""
        scenarios = select_scenarios(["synth-skewed", "synth-flat"])
        workloads: dict = {}
        tables: dict = {}
        for scenario in scenarios:
            run_scenario(scenario, workloads, tables)
        # skew-axis scenarios differ in workload, so two tables; but
        # re-running adds nothing.
        assert len(tables) == len(
            {(s.workload, s.platform) for s in scenarios}
        )
        before = dict(tables)
        run_scenario(scenarios[0], workloads, tables)
        assert tables == before
