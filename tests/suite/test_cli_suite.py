"""Tests for the ``python -m repro suite`` subcommands."""

import csv
import json

from repro.__main__ import main
from repro.suite import read_run_json

FAST = ["synth-small", "viterbi-greedy"]


def run_cli(*argv):
    return main(list(argv))


class TestSuiteList:
    def test_lists_registry(self, capsys):
        assert run_cli("suite", "list") == 0
        out = capsys.readouterr().out
        assert "ofdm-greedy" in out
        assert "viterbi-greedy" in out
        assert "scenario(s)" in out

    def test_tag_filter(self, capsys):
        assert run_cli("suite", "list", "--tag", "new-workload") == 0
        out = capsys.readouterr().out
        assert "filterbank-greedy" in out
        assert "ofdm-greedy" not in out

    def test_lists_recorded_runs(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        run_cli(
            "suite", "run", "--scenarios", "synth-small",
            "--db", db, "--label", "first",
        )
        capsys.readouterr()
        assert run_cli("suite", "list", "--db", db) == 0
        out = capsys.readouterr().out
        assert "run 1 [first]" in out

    def test_empty_store_listing(self, capsys, tmp_path):
        db = str(tmp_path / "empty.sqlite")
        assert run_cli("suite", "list", "--db", db) == 0
        assert "no runs recorded" in capsys.readouterr().out


class TestSuiteRun:
    def test_run_persists_and_exports(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        json_path = tmp_path / "run.json"
        csv_path = tmp_path / "run.csv"
        code = run_cli(
            "suite", "run", "--scenarios", *FAST,
            "--db", db, "--label", "nightly",
            "--json", str(json_path), "--csv", str(csv_path),
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recorded as run 1" in out
        loaded = read_run_json(json_path)
        assert loaded.scenario_names() == FAST
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert [row["scenario"] for row in rows] == FAST

    def test_unknown_scenario_fails_cleanly(self, capsys):
        code = run_cli("suite", "run", "--scenarios", "nope")
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err

    def test_unmatched_tag_fails_cleanly(self, capsys):
        code = run_cli("suite", "run", "--tag", "no-such-tag")
        assert code == 2
        assert "no scenarios selected" in capsys.readouterr().err

    def test_bad_export_path_fails_cleanly(self, capsys, tmp_path):
        code = run_cli(
            "suite", "run", "--scenarios", "synth-small",
            "--json", str(tmp_path / "missing" / "x.json"),
        )
        assert code == 2
        assert "cannot write suite JSON" in capsys.readouterr().err

    def test_bad_db_path_fails_cleanly(self, capsys, tmp_path):
        bad = str(tmp_path / "missing" / "dir" / "s.sqlite")
        for argv in (
            ["suite", "run", "--scenarios", "synth-small", "--db", bad],
            ["suite", "list", "--db", bad],
            ["suite", "compare", "--baseline", "x", "--db", bad],
        ):
            assert run_cli(*argv) == 2
            assert "cannot open result store" in capsys.readouterr().err


class TestSuiteCompare:
    def baseline(self, tmp_path, capsys) -> str:
        path = tmp_path / "base.json"
        run_cli(
            "suite", "run", "--scenarios", *FAST, "--json", str(path)
        )
        capsys.readouterr()
        return str(path)

    def test_self_compare_passes(self, capsys, tmp_path):
        base = self.baseline(tmp_path, capsys)
        code = run_cli(
            "suite", "compare", "--baseline", base,
            "--scenarios", *FAST,
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions" in out

    def test_injected_regression_exits_nonzero(self, capsys, tmp_path):
        """The acceptance check: double one scenario's cycles in the
        baseline-format JSON and the gate must fail the comparison."""
        base = self.baseline(tmp_path, capsys)
        payload = json.loads(open(base).read())
        doctored = tmp_path / "cand.json"
        payload["results"][0]["total_cycles"] *= 2
        doctored.write_text(json.dumps(payload))
        code = run_cli(
            "suite", "compare", "--baseline", base,
            "--candidate", str(doctored),
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "regressed" in out
        assert "total_cycles +100.0%" in out

    def test_compare_store_runs_by_id_and_label(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        run_cli(
            "suite", "run", "--scenarios", *FAST, "--db", db,
            "--label", "good",
        )
        capsys.readouterr()
        code = run_cli(
            "suite", "compare", "--db", db,
            "--baseline", "1", "--candidate", "good",
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_missing_baseline_reference(self, capsys, tmp_path):
        code = run_cli(
            "suite", "compare", "--baseline", str(tmp_path / "no.json"),
        )
        assert code == 2
        assert "no --db was given" in capsys.readouterr().err

    def test_unknown_label_in_store(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        run_cli("suite", "run", "--scenarios", "synth-small", "--db", db)
        capsys.readouterr()
        code = run_cli(
            "suite", "compare", "--db", db, "--baseline", "nope",
        )
        assert code == 2
        assert "no run labelled" in capsys.readouterr().err

    def test_save_candidate_refreshes_baseline(self, capsys, tmp_path):
        base = self.baseline(tmp_path, capsys)
        refreshed = tmp_path / "new_base.json"
        code = run_cli(
            "suite", "compare", "--baseline", base,
            "--scenarios", *FAST,
            "--save-candidate", str(refreshed),
        )
        capsys.readouterr()
        assert code == 0
        assert read_run_json(refreshed).scenario_names() == FAST

    def test_digit_label_resolves_as_label_not_id(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        run_cli(
            "suite", "run", "--scenarios", "synth-small", "--db", db,
            "--label", "2024",
        )
        capsys.readouterr()
        code = run_cli(
            "suite", "compare", "--db", db,
            "--baseline", "2024", "--candidate", "1",
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_invalid_threshold_fails_before_running(self, capsys, tmp_path):
        base = self.baseline(tmp_path, capsys)
        code = run_cli(
            "suite", "compare", "--baseline", base,
            "--cycle-threshold", "-5",
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "cycle_percent" in captured.err
        # Failed fast: no suite table was printed.
        assert "scenario" not in captured.out

    def test_malformed_baseline_json(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = run_cli("suite", "compare", "--baseline", str(bad))
        assert code == 2
        assert "not a suite-run JSON file" in capsys.readouterr().err


def seed_history(db, scenario="synth-small", cycles=(1000, 1000, 2000)):
    """Record a run per cycle count directly into a store — much faster
    than re-running real scenarios through the CLI."""
    from repro.suite import ResultStore, ScenarioResult, SuiteRun

    fingerprints = [f"fp{i + 1:02d}" for i in range(len(cycles))]
    with ResultStore(db) as store:
        for fingerprint, c in zip(fingerprints, cycles):
            store.record_run(
                SuiteRun(
                    fingerprint=fingerprint,
                    results=[
                        ScenarioResult(
                            scenario=scenario,
                            workload="w",
                            platform="p",
                            algorithm="greedy",
                            constraint_fraction=0.5,
                            timing_constraint=500,
                            initial_cycles=2 * c,
                            total_cycles=c,
                            reduction_percent=50.0,
                            kernels_moved=2,
                            moved_bb_ids=(3, 7),
                            rows_used=2,
                            constraint_met=True,
                            wall_time_seconds=1.0,
                            configs_per_second=50_000.0,
                            phases=(("search", 0.5),),
                        )
                    ],
                )
            )
    return fingerprints


class TestSuiteHistory:
    def test_prints_longitudinal_table(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        seed_history(db)
        assert run_cli("suite", "history", "synth-small", "--db", db) == 0
        out = capsys.readouterr().out
        assert "3 run(s) of synth-small" in out
        assert "cycles" in out and "cfg/s" in out

    def test_csv_export(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        seed_history(db)
        csv_path = tmp_path / "history.csv"
        code = run_cli(
            "suite", "history", "synth-small",
            "--db", db, "--csv", str(csv_path),
        )
        capsys.readouterr()
        assert code == 0
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert [row["total_cycles"] for row in rows] == [
            "1000", "1000", "2000",
        ]
        assert all(row["created_at"] for row in rows)

    def test_unknown_scenario_fails_cleanly(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        seed_history(db)
        code = run_cli("suite", "history", "nope", "--db", db)
        assert code == 2
        assert "no recorded results" in capsys.readouterr().err

    def test_real_run_feeds_history(self, capsys, tmp_path):
        """End to end: a real suite run is queryable via history."""
        db = str(tmp_path / "real.sqlite")
        run_cli("suite", "run", "--scenarios", "synth-small", "--db", db)
        capsys.readouterr()
        assert run_cli("suite", "history", "synth-small", "--db", db) == 0
        out = capsys.readouterr().out
        assert "1 run(s) of synth-small" in out
        assert " - " not in out  # created_at was stamped, not empty


class TestSuiteTrends:
    def test_flags_injected_regression_with_first_fingerprint(
        self, capsys, tmp_path
    ):
        db = str(tmp_path / "s.sqlite")
        seed_history(db, cycles=(1000, 1000, 2000, 2000))
        code = run_cli("suite", "trends", "--db", db)
        out = capsys.readouterr().out
        # Informational: steps print but the command succeeds.
        assert code == 0
        assert "total_cycles stepped" in out
        assert "fp03" in out  # the FIRST offending run's fingerprint
        assert "+100.0%" in out

    def test_stable_store_reports_no_steps(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        seed_history(db, cycles=(1000, 1000, 1000))
        assert run_cli("suite", "trends", "--db", db) == 0
        assert "no metric steps detected" in capsys.readouterr().out

    def test_artifact_exports(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        seed_history(db, cycles=(1000, 2000))
        html_path = tmp_path / "trends.html"
        csv_path = tmp_path / "trends.csv"
        code = run_cli(
            "suite", "trends", "--db", db,
            "--html", str(html_path), "--csv", str(csv_path),
        )
        capsys.readouterr()
        assert code == 0
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert "phase_search" in rows[0]

    def test_runs_json_mode(self, capsys, tmp_path):
        """CI mode: trends over baseline + candidate JSON, no store."""
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        run_cli(
            "suite", "run", "--scenarios", "synth-small",
            "--json", str(base),
        )
        capsys.readouterr()
        payload = json.loads(base.read_text())
        payload["fingerprint"] = "doctored"
        payload["results"][0]["total_cycles"] *= 2
        cand.write_text(json.dumps(payload))
        code = run_cli(
            "suite", "trends", "--runs", str(base), str(cand),
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "total_cycles stepped" in out
        assert "doctored" in out

    def test_requires_exactly_one_source(self, capsys, tmp_path):
        assert run_cli("suite", "trends") == 2
        assert "exactly one" in capsys.readouterr().err
        db = str(tmp_path / "s.sqlite")
        seed_history(db)
        code = run_cli(
            "suite", "trends", "--db", db, "--runs", "x.json",
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_empty_store_fails_cleanly(self, capsys, tmp_path):
        db = str(tmp_path / "empty.sqlite")
        code = run_cli("suite", "trends", "--db", db)
        assert code == 2
        assert "no scenarios" in capsys.readouterr().err

    def test_scenario_filter(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        seed_history(db, scenario="a-scn")
        seed_history(db, scenario="b-scn")
        code = run_cli(
            "suite", "trends", "--db", db, "--scenarios", "b-scn",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "b-scn" in out and "a-scn" not in out

    def test_custom_threshold_suppresses_step(self, capsys, tmp_path):
        db = str(tmp_path / "s.sqlite")
        seed_history(db, cycles=(1000, 2000))
        code = run_cli(
            "suite", "trends", "--db", db, "--cycle-step", "150",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "total_cycles stepped" not in out
