"""Schema migration chains for the suite result store.

The store is at schema v4 (phases column).  These tests build real
fixture databases at older versions — v1 via the historical schema
verbatim, v3 by dropping the v4-only column — and assert the chain
upgrades them in place without losing rows.
"""

import json
import sqlite3

from repro.suite import ResultStore, ScenarioResult, SuiteRun
from repro.suite.store import SCHEMA_VERSION

from test_store import make_result, make_run

V1_SCHEMA = """
CREATE TABLE runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    label TEXT NOT NULL DEFAULT '',
    fingerprint TEXT NOT NULL,
    created_at TEXT NOT NULL,
    elapsed_seconds REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE results (
    run_id INTEGER NOT NULL REFERENCES runs(run_id)
        ON DELETE CASCADE,
    scenario TEXT NOT NULL,
    workload TEXT NOT NULL,
    platform TEXT NOT NULL,
    algorithm TEXT NOT NULL,
    constraint_fraction REAL NOT NULL,
    timing_constraint INTEGER NOT NULL,
    initial_cycles INTEGER NOT NULL,
    total_cycles INTEGER NOT NULL,
    reduction_percent REAL NOT NULL,
    kernels_moved INTEGER NOT NULL,
    moved_bb_ids TEXT NOT NULL,
    rows_used INTEGER NOT NULL,
    constraint_met INTEGER NOT NULL,
    wall_time_seconds REAL NOT NULL,
    PRIMARY KEY (run_id, scenario)
);
PRAGMA user_version = 1;
"""


def build_v1_fixture(path):
    connection = sqlite3.connect(path)
    connection.executescript(V1_SCHEMA)
    connection.execute(
        "INSERT INTO runs (label, fingerprint, created_at)"
        " VALUES ('old', 'cafe', '2026-01-01T00:00:00+00:00')"
    )
    connection.execute(
        "INSERT INTO results VALUES"
        " (1, 's1', 'w', 'p', 'greedy', 0.5, 500, 2000, 1000,"
        " 50.0, 2, '3,7', 2, 1, 0.125)"
    )
    connection.commit()
    connection.close()


def build_v3_fixture(path):
    """A real v3 store: current code minus the phases column."""
    with ResultStore(path) as store:
        store.record_run(make_run(label="legacy"))
    connection = sqlite3.connect(path)
    connection.execute("ALTER TABLE results DROP COLUMN phases")
    connection.execute("PRAGMA user_version = 3")
    connection.commit()
    connection.close()


def stored_version(path) -> int:
    connection = sqlite3.connect(path)
    try:
        return connection.execute("PRAGMA user_version").fetchone()[0]
    finally:
        connection.close()


class TestV1ToV4:
    def test_full_chain_upgrades_in_place(self, tmp_path):
        path = tmp_path / "v1.sqlite"
        build_v1_fixture(path)

        with ResultStore(path) as store:
            migrated = store.load_run(1)
            old = migrated.results[0]
            # Every column added along the chain reads its sentinel.
            assert old.configs_per_second == 0.0  # v2
            assert old.pruned_subtrees == 0  # v3
            assert old.phases == ()  # v4
            # And the upgraded store accepts fully-populated new rows.
            store.record_run(
                make_run(
                    results=[
                        make_result(
                            "s1",
                            configs_per_second=9.5,
                            pruned_subtrees=7,
                            phases=(("price_table", 0.25), ("search", 1.5)),
                        )
                    ]
                )
            )
            fresh = store.load_latest()
        assert fresh is not None
        row = fresh.results[0]
        assert row.configs_per_second == 9.5
        assert row.pruned_subtrees == 7
        assert row.phases == (("price_table", 0.25), ("search", 1.5))
        assert stored_version(path) == SCHEMA_VERSION

    def test_chain_is_idempotent_across_reopens(self, tmp_path):
        path = tmp_path / "v1.sqlite"
        build_v1_fixture(path)
        for _ in range(3):
            with ResultStore(path) as store:
                assert store.load_run(1) is not None
        assert stored_version(path) == SCHEMA_VERSION


class TestV3ToV4:
    def test_phases_column_is_added(self, tmp_path):
        path = tmp_path / "v3.sqlite"
        build_v3_fixture(path)

        with ResultStore(path) as store:
            migrated = store.load_latest()
            assert migrated is not None
            assert all(r.phases == () for r in migrated.results)
            # Older columns survived the hop untouched.
            assert migrated.results[0].total_cycles == 1000
            store.record_run(
                make_run(
                    results=[
                        make_result("s1", phases=(("search", 0.75),))
                    ]
                )
            )
            fresh = store.load_latest()
        assert fresh is not None
        assert fresh.results[0].phases == (("search", 0.75),)
        assert stored_version(path) == SCHEMA_VERSION

    def test_migrated_column_order_does_not_corrupt_writes(self, tmp_path):
        """In a migrated v3 DB the phases column sits at a different
        physical position than in a fresh v4 schema; writes must land
        by name, not position."""
        path = tmp_path / "v3.sqlite"
        build_v3_fixture(path)
        with ResultStore(path) as store:
            store.record_run(
                make_run(
                    results=[
                        make_result(
                            "s1",
                            pruned_subtrees=11,
                            phases=(("profile", 0.5),),
                        )
                    ]
                )
            )
            fresh = store.load_latest()
        assert fresh is not None
        assert fresh.results[0].pruned_subtrees == 11
        assert fresh.results[0].phases == (("profile", 0.5),)

    def test_junk_phases_text_reads_as_empty(self, tmp_path):
        path = tmp_path / "junk.sqlite"
        with ResultStore(path) as store:
            store.record_run(make_run())
        connection = sqlite3.connect(path)
        connection.execute("UPDATE results SET phases = 'not json'")
        connection.commit()
        connection.close()
        with ResultStore(path) as store:
            loaded = store.load_latest()
        assert loaded is not None
        assert all(r.phases == () for r in loaded.results)


class TestPhasesRoundTrip:
    def test_store_round_trip_sorts_and_preserves_values(self):
        with ResultStore(":memory:") as store:
            run = make_run(
                results=[
                    make_result(
                        "s1",
                        phases=(("search", 1.5), ("price_table", 0.25)),
                    )
                ]
            )
            run_id = store.record_run(run)
            loaded = store.load_run(run_id)
        # JSON object keys come back sorted; values survive exactly.
        assert loaded.results[0].phases_dict() == {
            "price_table": 0.25,
            "search": 1.5,
        }

    def test_json_round_trip(self, tmp_path):
        run = make_run(
            results=[make_result("s1", phases=(("search", 0.5),))]
        )
        path = run.write_json(tmp_path / "run.json")
        from repro.suite import read_run_json

        assert read_run_json(path).results[0].phases == (("search", 0.5),)

    def test_pre_v4_json_defaults_to_empty(self, tmp_path):
        run = make_run(results=[make_result("s1")])
        payload = run.to_json_dict()
        for entry in payload["results"]:  # type: ignore[union-attr]
            del entry["phases"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload))
        from repro.suite import read_run_json

        assert read_run_json(path).results[0].phases == ()


class TestCreatedAt:
    def test_suite_run_is_stamped_on_construction(self):
        run = SuiteRun(fingerprint="abc", results=[make_result()])
        assert run.created_at != ""
        assert "T" in run.created_at  # ISO-8601 timestamp

    def test_scenario_result_phases_default(self):
        assert make_result().phases == ()
        assert isinstance(make_result(), ScenarioResult)


class TestLongitudinalQueries:
    def test_scenario_history_orders_by_run_id(self):
        with ResultStore(":memory:") as store:
            for cycles in (1000, 900, 950):
                store.record_run(
                    make_run(results=[make_result("s1", cycles)])
                )
            history = store.scenario_history("s1")
        assert [cycles for (_, _, cycles, _, _) in history] == [
            1000,
            900,
            950,
        ]
        run_ids = [rid for (rid, _, _, _, _) in history]
        assert run_ids == sorted(run_ids)

    def test_history_orders_by_run_id_even_with_empty_created_at(
        self, tmp_path
    ):
        """Legacy rows wrote created_at as '' — order must not depend
        on the timestamp string."""
        path = tmp_path / "legacy.sqlite"
        with ResultStore(path) as store:
            for cycles in (500, 400):
                store.record_run(
                    make_run(results=[make_result("s1", cycles)])
                )
        connection = sqlite3.connect(path)
        connection.execute("UPDATE runs SET created_at = ''")
        connection.commit()
        connection.close()
        with ResultStore(path) as store:
            history = store.scenario_history("s1")
            points = store.scenario_trend_points("s1")
        assert [cycles for (_, _, cycles, _, _) in history] == [500, 400]
        assert [p.total_cycles for p in points] == [500, 400]
        assert all(p.created_at == "" for p in points)

    def test_scenario_trend_points_carry_phases(self):
        with ResultStore(":memory:") as store:
            store.record_run(
                make_run(
                    results=[
                        make_result("s1", phases=(("search", 2.0),))
                    ]
                )
            )
            (point,) = store.scenario_trend_points("s1")
        assert point.fingerprint == "deadbeef"
        assert point.phases_dict() == {"search": 2.0}
        assert point.created_at != ""

    def test_scenario_names_recorded(self):
        with ResultStore(":memory:") as store:
            store.record_run(make_run())
            assert store.scenario_names_recorded() == ["s1", "s2"]
            assert store.scenario_trend_points("nope") == []
