"""Tests for the SQLite result store and the JSON run format."""

import dataclasses

import pytest

from repro.suite import (
    ResultStore,
    ScenarioResult,
    SuiteRun,
    read_run_json,
)
from repro.suite.store import SCHEMA_VERSION


def make_result(scenario="s1", cycles=1000, **overrides) -> ScenarioResult:
    base = dict(
        scenario=scenario,
        workload="w",
        platform="p",
        algorithm="greedy",
        constraint_fraction=0.5,
        timing_constraint=500,
        initial_cycles=2000,
        total_cycles=cycles,
        reduction_percent=50.0,
        kernels_moved=2,
        moved_bb_ids=(3, 7),
        rows_used=2,
        constraint_met=True,
        wall_time_seconds=0.125,
    )
    base.update(overrides)
    return ScenarioResult(**base)


def make_run(label="", results=None) -> SuiteRun:
    return SuiteRun(
        fingerprint="deadbeef",
        label=label,
        results=results or [make_result("s1"), make_result("s2", 4321)],
    )


class TestResultStore:
    def test_record_and_load_round_trip(self):
        with ResultStore(":memory:") as store:
            run = make_run(label="nightly")
            run_id = store.record_run(run)
            assert run.run_id == run_id
            assert run.created_at  # stamped by the store
            loaded = store.load_run(run_id)
        assert loaded.label == "nightly"
        assert loaded.fingerprint == "deadbeef"
        assert loaded.results == run.results

    def test_persists_across_connections(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path) as store:
            store.record_run(make_run(label="a"))
        with ResultStore(path) as store:
            store.record_run(make_run(label="b"))
            assert store.run_ids() == [1, 2]
            assert store.latest_run_id(label="a") == 1
            latest = store.load_latest()
        assert latest is not None and latest.label == "b"

    def test_load_missing_run_raises(self):
        with ResultStore(":memory:") as store:
            with pytest.raises(KeyError):
                store.load_run(99)
            assert store.load_latest() is None

    def test_scenario_history_is_longitudinal(self):
        with ResultStore(":memory:") as store:
            store.record_run(make_run(results=[make_result("s1", 1000)]))
            store.record_run(make_run(results=[make_result("s1", 900)]))
            history = store.scenario_history("s1")
        assert [cycles for (_, _, cycles, _, _) in history] == [1000, 900]

    def test_runs_summary_counts_scenarios(self):
        with ResultStore(":memory:") as store:
            store.record_run(make_run(label="x"))
            (summary,) = store.runs_summary()
        assert summary["label"] == "x"
        assert summary["scenarios"] == 2

    def test_failed_record_leaves_no_orphan_run(self):
        # Duplicate scenario names violate the (run_id, scenario) primary
        # key mid-insert; the whole run must roll back atomically.
        import sqlite3

        with ResultStore(":memory:") as store:
            bad = make_run(results=[make_result("s1"), make_result("s1")])
            with pytest.raises(sqlite3.IntegrityError):
                store.record_run(bad)
            assert bad.run_id is None  # nothing was assigned
            store.record_run(make_run(label="good"))
            assert len(store.run_ids()) == 1
            (summary,) = store.runs_summary()
        assert summary["label"] == "good"
        assert summary["scenarios"] == 2

    def test_empty_moved_bb_ids_round_trip(self):
        with ResultStore(":memory:") as store:
            run = make_run(
                results=[make_result(moved_bb_ids=(), kernels_moved=0)]
            )
            run_id = store.record_run(run)
            loaded = store.load_run(run_id)
        assert loaded.results[0].moved_bb_ids == ()


class TestJsonFormat:
    def test_write_and_read_round_trip(self, tmp_path):
        run = make_run(label="baseline")
        path = run.write_json(tmp_path / "run.json")
        loaded = read_run_json(path)
        assert loaded.fingerprint == run.fingerprint
        assert loaded.label == "baseline"
        assert loaded.results == run.results

    def test_result_dict_round_trip(self):
        result = make_result()
        assert ScenarioResult.from_dict(result.to_dict()) == result

    def test_result_for(self):
        run = make_run()
        assert run.result_for("s2") is run.results[1]
        assert run.result_for("nope") is None

    def test_json_rejects_malformed_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"fingerprint": "x"}')
        with pytest.raises(KeyError):
            read_run_json(path)


class TestDataclassHygiene:
    def test_results_are_frozen(self):
        result = make_result()
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.total_cycles = 1  # type: ignore[misc]


class TestSchemaV2:
    def test_configs_per_second_round_trips(self, tmp_path):
        path = tmp_path / "results.sqlite"
        run = make_run(
            results=[make_result("s1", configs_per_second=123456.7)]
        )
        with ResultStore(path) as store:
            store.record_run(run)
            loaded = store.load_latest()
        assert loaded is not None
        assert loaded.results[0].configs_per_second == pytest.approx(
            123456.7
        )

    def test_json_round_trips_throughput(self, tmp_path):
        run = make_run(
            results=[make_result("s1", configs_per_second=5000.5)]
        )
        path = run.write_json(tmp_path / "run.json")
        assert read_run_json(path).results[0].configs_per_second == 5000.5

    def test_pre_v2_json_defaults_to_zero(self, tmp_path):
        run = make_run(results=[make_result("s1")])
        payload = run.to_json_dict()
        for entry in payload["results"]:  # type: ignore[union-attr]
            del entry["configs_per_second"]
        import json

        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload))
        assert read_run_json(path).results[0].configs_per_second == 0.0

    def test_v1_database_is_migrated(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.sqlite"
        connection = sqlite3.connect(path)
        # The v1 schema verbatim (no configs_per_second column).
        connection.executescript(
            """
            CREATE TABLE runs (
                run_id INTEGER PRIMARY KEY AUTOINCREMENT,
                label TEXT NOT NULL DEFAULT '',
                fingerprint TEXT NOT NULL,
                created_at TEXT NOT NULL,
                elapsed_seconds REAL NOT NULL DEFAULT 0.0
            );
            CREATE TABLE results (
                run_id INTEGER NOT NULL REFERENCES runs(run_id)
                    ON DELETE CASCADE,
                scenario TEXT NOT NULL,
                workload TEXT NOT NULL,
                platform TEXT NOT NULL,
                algorithm TEXT NOT NULL,
                constraint_fraction REAL NOT NULL,
                timing_constraint INTEGER NOT NULL,
                initial_cycles INTEGER NOT NULL,
                total_cycles INTEGER NOT NULL,
                reduction_percent REAL NOT NULL,
                kernels_moved INTEGER NOT NULL,
                moved_bb_ids TEXT NOT NULL,
                rows_used INTEGER NOT NULL,
                constraint_met INTEGER NOT NULL,
                wall_time_seconds REAL NOT NULL,
                PRIMARY KEY (run_id, scenario)
            );
            PRAGMA user_version = 1;
            """
        )
        connection.execute(
            "INSERT INTO runs (label, fingerprint, created_at)"
            " VALUES ('old', 'cafe', '2026-01-01T00:00:00+00:00')"
        )
        connection.execute(
            "INSERT INTO results VALUES"
            " (1, 's1', 'w', 'p', 'greedy', 0.5, 500, 2000, 1000,"
            " 50.0, 2, '3,7', 2, 1, 0.125)"
        )
        connection.commit()
        connection.close()

        with ResultStore(path) as store:
            migrated = store.load_run(1)
            # Old rows read back with the 0.0 sentinel...
            assert migrated.results[0].configs_per_second == 0.0
            # ...and new runs persist real throughput numbers.
            store.record_run(
                make_run(results=[make_result("s1", configs_per_second=9.5)])
            )
            fresh = store.load_latest()
        assert fresh is not None
        assert fresh.results[0].configs_per_second == 9.5
        import sqlite3 as sql

        connection = sql.connect(path)
        assert connection.execute(
            "PRAGMA user_version"
        ).fetchone()[0] == SCHEMA_VERSION
        connection.close()

    def test_interrupted_migration_converges(self, tmp_path):
        """A crash between the auto-committed ALTER and the version
        bump (column present, user_version still 1) must not brick the
        store on the next open."""
        import sqlite3

        path = tmp_path / "half.sqlite"
        with ResultStore(path) as store:
            store.record_run(make_run())
        connection = sqlite3.connect(path)
        connection.execute("PRAGMA user_version = 1")  # simulate the crash
        connection.commit()
        connection.close()

        with ResultStore(path) as store:  # must not raise
            assert store.load_latest() is not None
        connection = sqlite3.connect(path)
        assert connection.execute(
            "PRAGMA user_version"
        ).fetchone()[0] == SCHEMA_VERSION
        connection.close()

    def test_v2_database_is_migrated(self, tmp_path):
        """A v2 store (configs_per_second present, pruned_subtrees not)
        gains the pruned-subtree column with a 0 sentinel."""
        import sqlite3

        path = tmp_path / "v2.sqlite"
        with ResultStore(path) as store:
            store.record_run(make_run())
        connection = sqlite3.connect(path)
        connection.execute(
            "ALTER TABLE results DROP COLUMN pruned_subtrees"
        )
        connection.execute("PRAGMA user_version = 2")
        connection.commit()
        connection.close()

        with ResultStore(path) as store:
            migrated = store.load_latest()
            assert migrated is not None
            assert migrated.results[0].pruned_subtrees == 0
            store.record_run(
                make_run(results=[make_result("s1", pruned_subtrees=7)])
            )
            fresh = store.load_latest()
        assert fresh is not None
        assert fresh.results[0].pruned_subtrees == 7
        connection = sqlite3.connect(path)
        assert connection.execute(
            "PRAGMA user_version"
        ).fetchone()[0] == SCHEMA_VERSION
        connection.close()
