"""Calibrated workload model tests: Table 1 fidelity and structure."""

import pytest

from repro.analysis import WeightModel
from repro.workloads import (
    JPEG_TABLE1,
    JPEG_TOTAL_BLOCKS,
    OFDM_TABLE1,
    OFDM_TOTAL_BLOCKS,
    PAPER_TABLE2_OFDM,
    PAPER_TABLE3_JPEG,
    PaperKernelRow,
    jpeg_profiles,
    ofdm_profiles,
    verify_profile_realization,
)


class TestTable1Data:
    def test_row_consistency_enforced(self):
        with pytest.raises(ValueError):
            PaperKernelRow(1, 10, 10, 99)

    def test_ofdm_rows_descending(self):
        totals = [r.total_weight for r in OFDM_TABLE1]
        assert totals == sorted(totals, reverse=True)

    def test_jpeg_rows_descending(self):
        totals = [r.total_weight for r in JPEG_TABLE1]
        assert totals == sorted(totals, reverse=True)

    def test_ofdm_headline_row(self):
        top = OFDM_TABLE1[0]
        assert (top.bb_id, top.exec_freq, top.ops_weight) == (22, 336, 115)

    def test_jpeg_headline_row(self):
        top = JPEG_TABLE1[0]
        assert (top.bb_id, top.exec_freq, top.ops_weight) == (6, 355024, 3)


class TestProfiles:
    def test_ofdm_block_count(self):
        assert len(ofdm_profiles()) == OFDM_TOTAL_BLOCKS == 18

    def test_jpeg_block_count(self):
        assert len(jpeg_profiles()) == JPEG_TOTAL_BLOCKS == 22

    def test_all_profiles_realize(self):
        for profile in ofdm_profiles() + jpeg_profiles():
            verify_profile_realization(profile)

    def test_ofdm_table_rows_exact(self):
        by_id = {p.bb_id: p for p in ofdm_profiles()}
        for row in OFDM_TABLE1:
            assert by_id[row.bb_id].weight == row.ops_weight
            assert by_id[row.bb_id].exec_freq == row.exec_freq

    def test_jpeg_table_rows_exact(self):
        by_id = {p.bb_id: p for p in jpeg_profiles()}
        for row in JPEG_TABLE1:
            assert by_id[row.bb_id].weight == row.ops_weight
            assert by_id[row.bb_id].exec_freq == row.exec_freq

    def test_fillers_below_cutoff(self):
        ofdm_cut = OFDM_TABLE1[-1].total_weight
        jpeg_cut = JPEG_TABLE1[-1].total_weight
        ofdm_ids = {r.bb_id for r in OFDM_TABLE1}
        jpeg_ids = {r.bb_id for r in JPEG_TABLE1}
        for profile in ofdm_profiles():
            if profile.bb_id not in ofdm_ids:
                assert profile.total_weight < ofdm_cut
        for profile in jpeg_profiles():
            if profile.bb_id not in jpeg_ids:
                assert profile.total_weight < jpeg_cut

    def test_unique_ids(self):
        for profiles in (ofdm_profiles(), jpeg_profiles()):
            ids = [p.bb_id for p in profiles]
            assert len(ids) == len(set(ids))


class TestWorkloadAnalysis:
    def test_ofdm_top8_matches_table1(self, ofdm):
        rows = ofdm.analysis_rows(WeightModel(), 8)
        expected = [
            (r.bb_id, r.exec_freq, r.ops_weight, r.total_weight)
            for r in OFDM_TABLE1
        ]
        assert rows == expected

    def test_jpeg_top8_matches_table1(self, jpeg):
        rows = jpeg.analysis_rows(WeightModel(), 8)
        expected = [
            (r.bb_id, r.exec_freq, r.ops_weight, r.total_weight)
            for r in JPEG_TABLE1
        ]
        assert rows == expected

    def test_paper_table_rows_present(self):
        assert len(PAPER_TABLE2_OFDM) == 4
        assert len(PAPER_TABLE3_JPEG) == 4

    def test_paper_table_reductions_recorded(self):
        assert PAPER_TABLE2_OFDM[1].reduction_percent == 81.8
        assert PAPER_TABLE3_JPEG[0].reduction_percent == 42.7
