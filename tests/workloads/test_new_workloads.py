"""Tests for the filter-bank and Viterbi workloads and their specs."""

import pytest

from repro.explore import PlatformSpec, WorkloadSpec
from repro.search import AlgorithmSpec, make_partitioner
from repro.workloads import (
    filterbank_profiles,
    filterbank_workload,
    filterbank_workload_name,
    viterbi_profiles,
    viterbi_workload,
    viterbi_workload_name,
)


class TestFilterbank:
    def test_block_statistics_derived_from_taps(self):
        profiles = {p.name: p for p in filterbank_profiles(taps=16)}
        fir = profiles["fb_fir_ch0"]
        # A 16-tap direct-form FIR: exactly taps multiplies and
        # taps-1 accumulator adds (+4 index updates).
        assert fir.mul_ops == 16
        assert fir.alu_ops == 16 - 1 + 4
        biquad = profiles["fb_biquad0"]
        # Direct Form II: 5 muls / 4 adds per section, serial recurrence.
        assert biquad.mul_ops == 5 * 3
        assert biquad.alu_ops == 4 * 3
        assert biquad.width == 1.0

    def test_workload_is_deterministic_and_kernel_rich(self):
        first = filterbank_workload()
        second = filterbank_workload()
        assert first.name == "filterbank-pipeline"
        assert first.block_count == second.block_count >= 12
        assert [b.bb_id for b in first.blocks] == [
            b.bb_id for b in second.blocks
        ]

    def test_partitions_with_positive_reduction(self):
        workload = filterbank_workload()
        platform = PlatformSpec().build()
        partitioner = make_partitioner(
            AlgorithmSpec.greedy(), workload, platform
        )
        result = partitioner.run(
            max(1, round(partitioner.initial_cycles() * 0.55))
        )
        assert result.reduction_percent > 0
        assert result.kernels_moved >= 2

    def test_name_encodes_non_default_params(self):
        assert filterbank_workload_name() == "filterbank-pipeline"
        assert "c12" in filterbank_workload_name(channels=12)
        assert filterbank_workload(channels=12).name != (
            filterbank_workload().name
        )

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            filterbank_profiles(channels=0)
        with pytest.raises(ValueError):
            filterbank_profiles(taps=1)


class TestViterbi:
    def test_acs_statistics_derived_from_states(self):
        profiles = {p.name: p for p in viterbi_profiles(states=16)}
        acs = profiles["vit_acs"]
        # Per state: two adds, one compare, one select (+ decision pack).
        assert acs.alu_ops == 4 * 16 + 8
        assert acs.mul_ops == 0
        traceback = profiles["vit_traceback"]
        assert traceback.serial_memory
        assert traceback.width == 1.0

    def test_partitions_and_moves_the_acs_kernel(self):
        workload = viterbi_workload()
        platform = PlatformSpec().build()
        partitioner = make_partitioner(
            AlgorithmSpec.greedy(), workload, platform
        )
        result = partitioner.run(
            max(1, round(partitioner.initial_cycles() * 0.5))
        )
        assert 3 in result.moved_bb_ids  # vit_acs is BB 3
        assert result.reduction_percent > 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            viterbi_profiles(states=12)  # not a power of two
        with pytest.raises(ValueError):
            viterbi_profiles(stages=0)

    def test_name_encodes_non_default_params(self):
        assert viterbi_workload_name() == "viterbi-decoder"
        assert "s32" in viterbi_workload_name(states=32)


class TestWorkloadSpecs:
    def test_spec_labels_match_built_names(self):
        for spec in (
            WorkloadSpec.filterbank(),
            WorkloadSpec.filterbank(channels=12, taps=24),
            WorkloadSpec.viterbi(),
            WorkloadSpec.viterbi(states=32, stages=96),
        ):
            assert spec.build().name == spec.label

    def test_specs_are_hashable_and_cacheable(self):
        assert WorkloadSpec.viterbi() == WorkloadSpec.viterbi()
        assert hash(WorkloadSpec.filterbank()) == hash(
            WorkloadSpec.filterbank()
        )
