"""Tests of the NumPy DSP reference implementations."""

import numpy as np
import pytest

from repro.workloads.dsp import (
    bit_reverse_indices,
    code_length,
    dct2d_fixed,
    dct2d_reference,
    dct_matrix_fixed,
    encode_block,
    ifft_fixed,
    ifft_reference,
    inverse_zigzag,
    qam16_map_bits,
    qam16_map_bits_fixed,
    quantize_fixed,
    quantize_reference,
    reciprocal_table,
    size_category,
    twiddle_tables,
    zigzag_indices,
    zigzag_scan,
)


class TestQAM:
    def test_all_levels_produced(self):
        bits = np.array(
            [0, 0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 1, 1, 0, 1, 0], dtype=np.int64
        )
        symbols = qam16_map_bits(bits)
        assert list(symbols) == [-3 - 3j, -1 - 1j, 1 + 1j, 3 + 3j]

    def test_bit_count_validation(self):
        with pytest.raises(ValueError):
            qam16_map_bits(np.array([0, 1, 0]))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            qam16_map_bits(np.array([0, 1, 2, 1]))

    def test_fixed_point_scale(self):
        bits = np.zeros(8, dtype=np.int64)
        i_vals, q_vals = qam16_map_bits_fixed(bits)
        assert list(i_vals) == [-768, -768]


class TestIFFT:
    def test_bit_reverse_involution(self):
        order = bit_reverse_indices(64)
        assert np.array_equal(order[order], np.arange(64))

    def test_bit_reverse_power_of_two_only(self):
        with pytest.raises(ValueError):
            bit_reverse_indices(48)

    def test_twiddle_magnitudes(self):
        cos_t, sin_t = twiddle_tables(64)
        assert cos_t[0] == 4096 and sin_t[0] == 0
        assert np.all(np.abs(cos_t) <= 4096)

    def test_impulse_gives_flat_output(self):
        real = np.zeros(64, dtype=np.int64)
        imag = np.zeros(64, dtype=np.int64)
        real[0] = 64 << 6  # large impulse at DC
        out_re, out_im = ifft_fixed(real, imag)
        # IFFT of DC impulse = constant (impulse/64)
        assert np.all(out_re == out_re[0])
        assert np.all(out_im == 0)

    def test_close_to_float_reference(self):
        rng = np.random.default_rng(3)
        real = rng.integers(-3 * 256, 3 * 256, 64)
        imag = rng.integers(-3 * 256, 3 * 256, 64)
        fixed_re, fixed_im = ifft_fixed(real, imag)
        reference = ifft_reference(real, imag)
        # Q12 twiddles + truncating shifts: small absolute error.
        assert np.max(np.abs(fixed_re - reference.real)) < 8
        assert np.max(np.abs(fixed_im - reference.imag)) < 8


class TestDCT:
    def test_matrix_orthogonality(self):
        matrix = dct_matrix_fixed().astype(np.float64) / 1024
        identity = matrix @ matrix.T
        assert np.allclose(identity, np.eye(8), atol=0.01)

    def test_constant_block_energy_in_dc(self):
        block = np.full((8, 8), 100, dtype=np.int64)
        coeffs = dct2d_fixed(block)
        assert abs(coeffs[0, 0]) > 100
        assert np.all(np.abs(coeffs.ravel()[1:]) <= 2)

    def test_close_to_float_reference(self):
        rng = np.random.default_rng(5)
        block = rng.integers(-128, 128, (8, 8))
        fixed = dct2d_fixed(block)
        reference = dct2d_reference(block)
        assert np.max(np.abs(fixed - reference)) < 4

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            dct2d_fixed(np.zeros((4, 4)))


class TestZigzag:
    def test_permutation(self):
        order = zigzag_indices()
        assert sorted(order) == list(range(64))

    def test_known_prefix(self):
        # Standard JPEG zig-zag starts 0, 1, 8, 16, 9, 2, 3, 10, ...
        assert list(zigzag_indices()[:8]) == [0, 1, 8, 16, 9, 2, 3, 10]

    def test_roundtrip(self):
        rng = np.random.default_rng(7)
        block = rng.integers(-50, 50, (8, 8))
        assert np.array_equal(inverse_zigzag(zigzag_scan(block)), block)

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            zigzag_scan(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_zigzag(np.zeros(32))


class TestQuantize:
    def test_reciprocal_table_values(self):
        recip = reciprocal_table()
        assert recip.ravel()[0] == round((1 << 16) / 16)

    def test_matches_division_closely(self):
        rng = np.random.default_rng(11)
        coeffs = rng.integers(-1000, 1000, (8, 8))
        fixed = quantize_fixed(coeffs)
        reference = quantize_reference(coeffs)
        assert np.max(np.abs(fixed - reference)) <= 1

    def test_sign_symmetry(self):
        coeffs = np.full((8, 8), 333, dtype=np.int64)
        positive = quantize_fixed(coeffs)
        negative = quantize_fixed(-coeffs)
        assert np.array_equal(negative, -positive)

    def test_zero_maps_to_zero(self):
        assert np.all(quantize_fixed(np.zeros((8, 8), dtype=np.int64)) == 0)


class TestEntropy:
    def test_size_category(self):
        assert size_category(0) == 0
        assert size_category(1) == 1
        assert size_category(-1) == 1
        assert size_category(255) == 8
        assert size_category(-256) == 9

    def test_code_length_caps(self):
        assert code_length(15, 10) == 16
        assert code_length(0, 0) == 4

    def test_all_zero_block(self):
        symbols, bits = encode_block(np.zeros(64, dtype=np.int64))
        # DC symbol + 3 ZRLs (48 zeros) + EOB for the remaining 15.
        assert len(symbols) == 5
        assert bits == code_length(0, 0) * 5

    def test_zrl_emitted_for_long_runs(self):
        coeffs = np.zeros(64, dtype=np.int64)
        coeffs[0] = 5
        coeffs[20] = 1  # 19 zeros before -> one ZRL + run 3
        symbols, _ = encode_block(coeffs)
        assert any(s.run == 15 and s.size == 0 for s in symbols)

    def test_bits_positive_for_nonzero(self):
        coeffs = np.zeros(64, dtype=np.int64)
        coeffs[0] = -100
        coeffs[1] = 30
        __, bits = encode_block(coeffs)
        assert bits > 10

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            encode_block(np.zeros(63, dtype=np.int64))
