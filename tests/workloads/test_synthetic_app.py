"""Tests for the scaled-up synthetic application generator."""

import pytest

from repro.analysis import WeightModel
from repro.workloads import synthetic_application


class TestSyntheticApplication:
    def test_block_count_and_ids(self):
        workload = synthetic_application(40, seed=1)
        assert workload.block_count == 40
        assert sorted(b.bb_id for b in workload.blocks) == list(range(1, 41))

    def test_deterministic(self):
        model = WeightModel()

        def signature(workload):
            return [
                (b.bb_id, b.exec_freq, b.bb_weight(model), b.is_kernel_candidate)
                for b in workload.blocks
            ]

        a = synthetic_application(30, seed=5, comm_intensity=0.7)
        b = synthetic_application(30, seed=5, comm_intensity=0.7)
        assert signature(a) == signature(b)

    def test_seeds_differ(self):
        model = WeightModel()
        a = synthetic_application(30, seed=1)
        b = synthetic_application(30, seed=2)
        assert [x.bb_weight(model) for x in a.blocks] != [
            x.bb_weight(model) for x in b.blocks
        ]

    def test_kernel_fraction_respected(self):
        workload = synthetic_application(100, seed=3, kernel_fraction=0.25)
        kernels = sum(1 for b in workload.blocks if b.is_kernel_candidate)
        assert kernels == 25

    def test_small_positive_fraction_keeps_one_kernel(self):
        workload = synthetic_application(10, seed=0, kernel_fraction=0.001)
        assert sum(b.is_kernel_candidate for b in workload.blocks) == 1

    def test_zero_fraction_yields_no_kernels(self):
        workload = synthetic_application(10, seed=0, kernel_fraction=0.0)
        assert not any(b.is_kernel_candidate for b in workload.blocks)

    def test_skew_concentrates_weight(self):
        """High skew: the top decile carries most of the total weight."""
        model = WeightModel()
        workload = synthetic_application(100, seed=9, weight_skew=3.0)
        weights = sorted(
            (b.total_weight(model) for b in workload.blocks), reverse=True
        )
        assert sum(weights[:10]) > sum(weights[10:])

    def test_comm_words_positive(self):
        workload = synthetic_application(20, seed=4, comm_intensity=0.0)
        for block in workload.blocks:
            assert block.comm_words_in >= 1
            assert block.comm_words_out >= 1

    def test_custom_name(self):
        assert synthetic_application(5, name="demo").name == "demo"
        assert synthetic_application(5, seed=2).name == "synthetic-5b-s2"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(block_count=0),
            dict(block_count=5, kernel_fraction=1.5),
            dict(block_count=5, weight_skew=0.0),
            dict(block_count=5, comm_intensity=-0.1),
            dict(block_count=5, max_weight=0),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            synthetic_application(**kwargs)
