"""Synthetic block generator tests (+ hypothesis realization property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import WeightModel
from repro.workloads import (
    SyntheticBlockProfile,
    generate_block,
    generate_dfg,
    verify_profile_realization,
)


class TestProfileValidation:
    def test_weight_formula(self):
        profile = SyntheticBlockProfile(
            bb_id=1, exec_freq=10, alu_ops=5, mul_ops=3
        )
        assert profile.weight == 11
        assert profile.total_weight == 110

    def test_no_compute_rejected(self):
        with pytest.raises(ValueError):
            SyntheticBlockProfile(bb_id=1, exec_freq=1, alu_ops=0, mul_ops=0)

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            SyntheticBlockProfile(bb_id=1, exec_freq=1, alu_ops=-1, mul_ops=2)

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            SyntheticBlockProfile(
                bb_id=1, exec_freq=1, alu_ops=1, mul_ops=0, width=0.5
            )

    def test_serial_needs_store(self):
        profile = SyntheticBlockProfile(
            bb_id=1, exec_freq=1, alu_ops=2, mul_ops=0,
            store_ops=0, serial_memory=True,
        )
        with pytest.raises(ValueError):
            generate_block(profile)


class TestGeneration:
    def test_determinism(self):
        profile = SyntheticBlockProfile(
            bb_id=7, exec_freq=1, alu_ops=9, mul_ops=4,
            load_ops=5, store_ops=2, width=2.0,
        )
        a = [str(i) for i in generate_block(profile).instructions]
        b = [str(i) for i in generate_block(profile).instructions]
        assert a == b

    def test_different_ids_differ(self):
        base = dict(exec_freq=1, alu_ops=9, mul_ops=4, load_ops=5, store_ops=2)
        a = generate_block(SyntheticBlockProfile(bb_id=1, **base))
        b = generate_block(SyntheticBlockProfile(bb_id=2, **base))
        assert [str(i) for i in a.instructions] != [
            str(i) for i in b.instructions
        ]

    def test_width_controls_depth(self):
        base = dict(exec_freq=1, alu_ops=24, mul_ops=0)
        narrow = generate_dfg(SyntheticBlockProfile(bb_id=3, width=1.0, **base))
        wide = generate_dfg(SyntheticBlockProfile(bb_id=3, width=6.0, **base))
        assert narrow.max_level > wide.max_level

    def test_bb_id_propagated(self):
        block = generate_block(
            SyntheticBlockProfile(bb_id=42, exec_freq=1, alu_ops=2, mul_ops=0)
        )
        assert block.bb_id == 42

    def test_serial_block_single_buffer(self):
        profile = SyntheticBlockProfile(
            bb_id=5, exec_freq=1, alu_ops=4, mul_ops=0,
            load_ops=6, store_ops=3, serial_memory=True,
        )
        dfg = generate_dfg(profile)
        assert dfg.arrays_read == {"buf"} and dfg.arrays_written == {"buf"}

    def test_serial_block_deeper_than_layered(self):
        base = dict(exec_freq=1, alu_ops=6, mul_ops=0, load_ops=8, store_ops=4)
        layered = generate_dfg(SyntheticBlockProfile(bb_id=6, **base))
        serial = generate_dfg(
            SyntheticBlockProfile(bb_id=6, serial_memory=True, width=1.0, **base)
        )
        assert serial.max_level > layered.max_level

    def test_serial_buffer_is_local(self):
        profile = SyntheticBlockProfile(
            bb_id=5, exec_freq=1, alu_ops=4, mul_ops=0,
            load_ops=4, store_ops=2, serial_memory=True,
        )
        block = generate_block(profile)
        from repro.ir import Opcode

        for ins in block.body:
            if ins.opcode in (Opcode.LOAD, Opcode.STORE):
                assert ins.operands[0].local


op_counts = st.tuples(
    st.integers(1, 30), st.integers(0, 12), st.integers(0, 15), st.integers(0, 5)
)


@settings(max_examples=60, deadline=None)
@given(
    bb_id=st.integers(1, 1000),
    counts=op_counts,
    width=st.floats(1.0, 8.0),
    serial=st.booleans(),
)
def test_realization_matches_profile(bb_id, counts, width, serial):
    """The generated block always carries exactly the requested op mix, so
    the analysis weight equals the Table 1 weight by construction."""
    alu, mul, loads, stores = counts
    if serial:
        stores = max(stores, 1)
        width = 1.0
    profile = SyntheticBlockProfile(
        bb_id=bb_id,
        exec_freq=1,
        alu_ops=alu,
        mul_ops=mul,
        load_ops=loads,
        store_ops=stores,
        width=width,
        serial_memory=serial,
    )
    verify_profile_realization(profile)
    dfg = generate_dfg(profile)
    assert dfg.is_acyclic()
    assert WeightModel().dfg_weight(dfg) == profile.weight
