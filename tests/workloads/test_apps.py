"""End-to-end tests of the mini-C OFDM and JPEG applications."""

import numpy as np
import pytest

from repro.analysis import WeightModel, extract_kernels
from repro.workloads import (
    BITS_PER_SYMBOL,
    JPEGEncoderApp,
    OFDMTransmitterApp,
    random_bits,
)
from repro.workloads import test_image as make_test_image  # avoid pytest collection
from repro.workloads.dsp import (
    dct2d_fixed,
    encode_block,
    ifft_fixed,
    qam16_map_bits_fixed,
    quantize_fixed,
    zigzag_scan,
)
from repro.workloads.jpeg import IMAGE_SIZE, LEVEL_SHIFT
from repro.workloads.ofdm import CP_LEN, FFT_SIZE


@pytest.fixture(scope="module")
def ofdm_app():
    return OFDMTransmitterApp()


@pytest.fixture(scope="module")
def jpeg_app():
    return JPEGEncoderApp()


class TestOFDMApp:
    def test_bit_exact_vs_reference(self, ofdm_app):
        bits = random_bits(BITS_PER_SYMBOL, seed=5)
        result = ofdm_app.transmit_symbol(bits)
        i_sym, q_sym = qam16_map_bits_fixed(bits)
        re, im = ifft_fixed(i_sym, q_sym)
        assert np.array_equal(result.out_re, np.concatenate([re[-CP_LEN:], re]))
        assert np.array_equal(result.out_im, np.concatenate([im[-CP_LEN:], im]))

    def test_cyclic_prefix_property(self, ofdm_app):
        result = ofdm_app.transmit_symbol(random_bits(BITS_PER_SYMBOL, seed=9))
        assert np.array_equal(result.out_re[:CP_LEN], result.out_re[FFT_SIZE:])
        assert np.array_equal(result.out_im[:CP_LEN], result.out_im[FFT_SIZE:])

    def test_output_length(self, ofdm_app):
        result = ofdm_app.transmit_symbol(random_bits(BITS_PER_SYMBOL))
        assert len(result.out_re) == FFT_SIZE + CP_LEN

    def test_wrong_bit_count_rejected(self, ofdm_app):
        with pytest.raises(ValueError):
            ofdm_app.transmit_symbol(np.zeros(10, dtype=np.int64))

    def test_profile_scales_with_symbols(self, ofdm_app):
        one = ofdm_app.profile_symbols([random_bits(BITS_PER_SYMBOL, seed=1)])
        two = ofdm_app.profile_symbols(
            [random_bits(BITS_PER_SYMBOL, seed=s) for s in (1, 2)]
        )
        hot_one = dict(one.hottest(3))
        hot_two = dict(two.hottest(3))
        for bb_id, freq in hot_one.items():
            assert hot_two[bb_id] == 2 * freq

    def test_kernels_are_ifft_blocks(self, ofdm_app):
        profile = ofdm_app.profile_symbols(
            [random_bits(BITS_PER_SYMBOL, seed=3)]
        )
        analysis = extract_kernels(ofdm_app.cdfg, profile, WeightModel())
        assert analysis.kernels
        top = analysis.kernels[0]
        assert top.function == "ifft64"  # butterfly loop dominates


class TestJPEGApp:
    def test_bit_exact_vs_reference(self, jpeg_app):
        image = make_test_image(seed=21)
        expected = 0
        for by in range(IMAGE_SIZE // 8):
            for bx in range(IMAGE_SIZE // 8):
                block = (
                    image[8 * by : 8 * by + 8, 8 * bx : 8 * bx + 8].astype(
                        np.int64
                    )
                    - LEVEL_SHIFT
                )
                zz = zigzag_scan(quantize_fixed(dct2d_fixed(block)))
                expected += encode_block(zz)[1]
        assert jpeg_app.encode_image(image).total_bits == expected

    def test_single_block_encode(self, jpeg_app):
        block = np.zeros((8, 8), dtype=np.int64)
        bits = jpeg_app.encode_block(block)
        zz = zigzag_scan(quantize_fixed(dct2d_fixed(block)))
        assert bits == encode_block(zz)[1]

    def test_smooth_image_fewer_bits_than_noise(self, jpeg_app):
        smooth = np.full((IMAGE_SIZE, IMAGE_SIZE), 128, dtype=np.int64)
        rng = np.random.default_rng(4)
        noisy = rng.integers(0, 256, (IMAGE_SIZE, IMAGE_SIZE))
        assert (
            jpeg_app.encode_image(smooth).total_bits
            < jpeg_app.encode_image(noisy).total_bits
        )

    def test_pixel_range_validated(self, jpeg_app):
        bad = np.full((IMAGE_SIZE, IMAGE_SIZE), 300, dtype=np.int64)
        with pytest.raises(ValueError):
            jpeg_app.encode_image(bad)

    def test_shape_validated(self, jpeg_app):
        with pytest.raises(ValueError):
            jpeg_app.encode_image(np.zeros((8, 8), dtype=np.int64))

    def test_kernels_in_hot_functions(self, jpeg_app):
        profile = jpeg_app.profile_image(make_test_image(seed=2))
        analysis = extract_kernels(jpeg_app.cdfg, profile, WeightModel())
        top_functions = {k.function for k in analysis.kernels[:4]}
        assert "dct8x8" in top_functions
