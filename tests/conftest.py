"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import cdfg_from_source
from repro.platform import paper_platform
from repro.workloads import jpeg_workload, ofdm_workload

#: A small program exercising most language constructs; used across layers.
SAMPLE_SOURCE = """
const int COEF[4] = {1, 2, 3, 4};

int dot(int a[4], int b[4]) {
    int acc = 0;
    for (int i = 0; i < 4; i++) {
        acc += a[i] * b[i];
    }
    return acc;
}

int main(int x) {
    int v[4];
    for (int i = 0; i < 4; i++) {
        v[i] = COEF[i] * x;
    }
    int s = dot(v, COEF);
    if (s > 10) { s = s - 10; } else { s = s + 1; }
    while (s % 7 != 0) { s = s + 1; }
    return s;
}
"""


@pytest.fixture(scope="session")
def sample_cdfg():
    return cdfg_from_source(SAMPLE_SOURCE, "sample.c")


@pytest.fixture(scope="session")
def ofdm():
    return ofdm_workload()


@pytest.fixture(scope="session")
def jpeg():
    return jpeg_workload()


@pytest.fixture(scope="session")
def small_platform():
    return paper_platform(1500, 2)


@pytest.fixture(scope="session")
def large_platform():
    return paper_platform(5000, 3)
