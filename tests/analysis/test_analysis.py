"""Analysis stage tests: weights, static/dynamic analysis, kernels."""

import pytest

from repro.analysis import (
    DynamicProfile,
    PAPER_WEIGHT_MODEL,
    TraceProfile,
    WeightModel,
    analyze_cdfg,
    extract_kernels,
    kernels_from_records,
    profile_cdfg,
    profile_cdfg_many,
    total_weight,
)
from repro.ir import OpClass, cdfg_from_source

HOT_LOOP = """
int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc += i * i + 3;
    }
    int extra = acc * 2;
    return extra;
}
"""


class TestWeightModel:
    def test_paper_weights(self):
        model = PAPER_WEIGHT_MODEL
        assert model.weight_of_class(OpClass.ALU) == 1
        assert model.weight_of_class(OpClass.MUL) == 2
        assert model.weight_of_class(OpClass.MOVE) == 0

    def test_eq1(self):
        assert total_weight(336, 115) == 38640

    def test_eq1_rejects_negative_freq(self):
        with pytest.raises(ValueError):
            total_weight(-1, 5)

    def test_block_weight_counts_ops(self):
        cdfg = cdfg_from_source("int f(int a, int b) { return a * b + a; }")
        model = WeightModel()
        block = cdfg.cfg("f").entry
        # one MUL (2) + one ADD (1) = 3
        assert model.block_weight(block) == 3

    def test_dfg_weight_matches_block_weight(self, sample_cdfg):
        model = WeightModel()
        for key in sample_cdfg.all_block_keys():
            assert model.block_weight(sample_cdfg.block(key)) == model.dfg_weight(
                sample_cdfg.dfg(key)
            )

    def test_custom_weights(self):
        model = WeightModel(
            class_weights={c: 1 for c in OpClass}
        )
        cdfg = cdfg_from_source("int f(int a) { return a * a; }")
        assert model.block_weight(cdfg.cfg("f").entry) >= 1

    def test_negative_weight_rejected(self):
        weights = {c: 1 for c in OpClass}
        weights[OpClass.ALU] = -1
        with pytest.raises(ValueError):
            WeightModel(class_weights=weights)

    def test_missing_class_rejected(self):
        with pytest.raises(ValueError):
            WeightModel(class_weights={OpClass.ALU: 1})


class TestStaticAnalysis:
    def test_every_block_analyzed(self, sample_cdfg):
        result = analyze_cdfg(sample_cdfg)
        assert set(result.blocks) == {
            b.bb_id for b in sample_cdfg.all_blocks()
        }

    def test_operator_distribution_sums(self, sample_cdfg):
        result = analyze_cdfg(sample_cdfg)
        dist = result.operator_distribution()
        assert dist["mul"] >= 1 and dist["mem"] >= 1

    def test_heaviest_sorted(self, sample_cdfg):
        result = analyze_cdfg(sample_cdfg)
        heaviest = result.heaviest_blocks(5)
        weights = [b.bb_weight for b in heaviest]
        assert weights == sorted(weights, reverse=True)

    @pytest.mark.parametrize("which", ["sample", "minic"])
    def test_agrees_with_compiled_block_slots(self, sample_cdfg, which):
        # The compiled interpreter derives dynamic stats from its static
        # per-block counts (profiles_from_frequencies inputs); the
        # static analysis must see the exact same post-optimization
        # blocks and counts.
        from repro.interp.compiler import compile_cdfg
        from repro.workloads import minic_cdfg

        cdfg = sample_cdfg if which == "sample" else minic_cdfg(0)
        result = analyze_cdfg(cdfg)
        program = compile_cdfg(cdfg)
        assert {info.bb_id for info in program.slots} == set(result.blocks)
        for info in program.slots:
            static = result.blocks[info.bb_id]
            assert static.instruction_count == info.instruction_count
            assert static.memory_accesses == info.memory_access_count
            assert static.function == info.function
            assert static.label == info.label
        assert result.total_instructions() == sum(
            info.instruction_count for info in program.slots
        )


class TestDynamicAnalysis:
    def test_profile_cdfg(self):
        cdfg = cdfg_from_source(HOT_LOOP)
        profile = profile_cdfg(cdfg, "f", 25)
        assert profile.runs == 1
        assert max(profile.frequencies.values()) >= 25

    def test_profile_many_accumulates(self):
        cdfg = cdfg_from_source(HOT_LOOP)
        combined = profile_cdfg_many(cdfg, "f", [(10,), (20,)])
        a = profile_cdfg(cdfg, "f", 10)
        b = profile_cdfg(cdfg, "f", 20)
        for bb_id in combined.frequencies:
            assert combined.frequencies[bb_id] == a.exec_freq(bb_id) + b.exec_freq(bb_id)
        assert combined.runs == 2

    def test_hottest_ordering(self):
        profile = DynamicProfile(frequencies={1: 5, 2: 50, 3: 20})
        assert [b for b, _ in profile.hottest(2)] == [2, 3]

    def test_trace_profile(self):
        trace = TraceProfile({7: 100})
        assert trace.as_profile().exec_freq(7) == 100
        assert trace.as_profile().exec_freq(8) == 0


class TestKernelExtraction:
    def test_kernels_inside_loops_only(self):
        cdfg = cdfg_from_source(HOT_LOOP)
        profile = profile_cdfg(cdfg, "f", 50)
        result = extract_kernels(cdfg, profile)
        from repro.ir import LoopForest

        forest = LoopForest(cdfg.cfg("f"))
        for kernel in result.kernels:
            label = cdfg.key_for_id(kernel.bb_id).label
            assert forest.loop_depth(label) > 0

    def test_ordering_descending(self):
        cdfg = cdfg_from_source(HOT_LOOP)
        result = extract_kernels(cdfg, profile_cdfg(cdfg, "f", 50))
        totals = [k.total_weight for k in result.kernels]
        assert totals == sorted(totals, reverse=True)

    def test_require_loop_false_includes_all(self):
        cdfg = cdfg_from_source(HOT_LOOP)
        profile = profile_cdfg(cdfg, "f", 50)
        loose = extract_kernels(cdfg, profile, require_loop=False)
        strict = extract_kernels(cdfg, profile)
        assert len(loose.kernels) > len(strict.kernels)

    def test_kernel_lookup(self):
        result = kernels_from_records([(1, 10, 5), (2, 3, 100)])
        assert result.kernel(2).total_weight == 300
        with pytest.raises(KeyError):
            result.kernel(99)

    def test_records_ordering(self):
        result = kernels_from_records([(1, 10, 5), (2, 3, 100), (3, 1, 1)])
        assert result.kernel_order() == [2, 1, 3]

    def test_table_row_shape(self):
        result = kernels_from_records([(22, 336, 115)])
        assert result.kernels[0].table_row() == (22, 336, 115, 38640)

    def test_tie_broken_by_bb_id(self):
        result = kernels_from_records([(5, 10, 10), (3, 10, 10)])
        assert result.kernel_order() == [3, 5]
