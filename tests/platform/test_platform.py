"""Platform model tests: characterization, memory, interconnect, SoC."""

import pytest

from repro.ir import OpClass, Opcode
from repro.platform import (
    HardwareCharacterization,
    HybridPlatform,
    Interconnect,
    OperationHardware,
    SharedMemory,
    default_characterization,
    paper_platform,
)
from repro.coarsegrain import standard_datapath
from repro.finegrain import FPGADevice


class TestCharacterization:
    def test_default_has_all_classes(self):
        char = default_characterization()
        for op_class in OpClass:
            assert op_class in char.class_hardware

    def test_mul_bigger_and_slower_than_alu(self):
        char = default_characterization()
        assert char.fpga_area(Opcode.MUL) > char.fpga_area(Opcode.ADD)
        assert char.fpga_delay(Opcode.MUL) > char.fpga_delay(Opcode.ADD)

    def test_moves_free(self):
        char = default_characterization()
        assert char.fpga_area(Opcode.COPY) == 0
        assert char.fpga_delay(Opcode.COPY) == 0

    def test_div_not_cgc_executable(self):
        assert not default_characterization().cgc_executable(Opcode.DIV)

    def test_opcode_override(self):
        char = default_characterization()
        char.opcode_overrides[Opcode.SHL] = OperationHardware(5, 1, True)
        assert char.fpga_area(Opcode.SHL) == 5
        assert char.fpga_area(Opcode.ADD) != 5

    def test_tick_conversion_roundtrip(self):
        char = default_characterization(clock_ratio=3)
        assert char.fpga_cycles_to_cgc_ticks(10) == 30
        assert char.cgc_ticks_to_fpga_cycles(30) == 10.0

    def test_invalid_clock_ratio(self):
        with pytest.raises(ValueError):
            default_characterization(clock_ratio=0)

    def test_missing_class_rejected(self):
        with pytest.raises(ValueError):
            HardwareCharacterization(class_hardware={})


class TestSharedMemory:
    def test_read_cycles_ceil_by_ports(self):
        memory = SharedMemory(ports=2, read_latency=1)
        assert memory.read_cycles(1) == 1
        assert memory.read_cycles(2) == 1
        assert memory.read_cycles(3) == 2

    def test_write_latency_scales(self):
        memory = SharedMemory(ports=1, write_latency=2)
        assert memory.write_cycles(3) == 6

    def test_zero_words_free(self):
        memory = SharedMemory()
        assert memory.transfer_cycles(0, 0) == 0

    def test_transfer_is_read_plus_write(self):
        memory = SharedMemory(ports=2)
        assert memory.transfer_cycles(3, 2) == memory.read_cycles(
            3
        ) + memory.write_cycles(2)

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            SharedMemory(ports=0)


class TestInterconnect:
    def test_overhead(self):
        net = Interconnect(setup_cycles=2, cycles_per_word=1)
        assert net.transfer_overhead(3) == 5

    def test_zero_words_free(self):
        assert Interconnect(setup_cycles=9).transfer_overhead(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Interconnect(setup_cycles=-1)


class TestHybridPlatform:
    def test_paper_platform_area(self):
        assert paper_platform(1500, 2).area_budget == 1500
        assert paper_platform(5000, 3).area_budget == 5000

    def test_paper_platform_ports_scale_with_cgcs(self):
        assert paper_platform(1500, 2).datapath.memory_ports == 2
        assert paper_platform(1500, 3).datapath.memory_ports == 3

    def test_memory_ports_override(self):
        platform = paper_platform(1500, 3, memory_ports=1)
        assert platform.datapath.memory_ports == 1

    def test_clock_ratio_default(self):
        assert paper_platform(1500, 2).clock_ratio == 3

    def test_reconfig_coherence(self):
        platform = HybridPlatform(
            fpga=FPGADevice.from_usable_area(1000, reconfig_cycles=33),
            datapath=standard_datapath(2),
        )
        assert platform.characterization.reconfig_cycles == 33

    def test_describe_mentions_config(self):
        text = paper_platform(1500, 2).describe()
        assert "A_FPGA=1500" in text and "two 2x2" in text
