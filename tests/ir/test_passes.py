"""Optimization pass and opcode-semantics tests."""


import pytest

from repro.frontend.ast_nodes import Type
from repro.ir import (
    BasicBlock,
    Const,
    Instruction,
    Opcode,
    Temp,
    VarRef,
    cdfg_from_source,
    evaluate_opcode,
    optimize_cdfg,
    run_block_passes,
)
from repro.ir.passes import (
    eliminate_dead_code_in_block,
    fold_constants_in_block,
    propagate_copies_in_block,
)


def t(i):
    return Temp(i, Type.INT)


def make_block(instructions):
    block = BasicBlock("b")
    for ins in instructions:
        block.append(ins)
    block.append(Instruction(Opcode.RET))
    return block


class TestOpcodeSemantics:
    @pytest.mark.parametrize(
        "opcode,args,expected",
        [
            (Opcode.ADD, (2, 3), 5),
            (Opcode.SUB, (2, 3), -1),
            (Opcode.MUL, (4, 5), 20),
            (Opcode.DIV, (7, 2), 3),
            (Opcode.DIV, (-7, 2), -3),  # C truncation, not Python floor
            (Opcode.MOD, (7, 3), 1),
            (Opcode.MOD, (-7, 3), -1),  # C sign convention
            (Opcode.SHL, (1, 4), 16),
            (Opcode.SHR, (-8, 1), -4),  # arithmetic shift
            (Opcode.AND, (0b1100, 0b1010), 0b1000),
            (Opcode.OR, (0b1100, 0b1010), 0b1110),
            (Opcode.XOR, (0b1100, 0b1010), 0b0110),
            (Opcode.NEG, (5,), -5),
            (Opcode.BNOT, (0,), -1),
            (Opcode.LNOT, (0,), 1),
            (Opcode.LNOT, (3,), 0),
            (Opcode.LT, (1, 2), 1),
            (Opcode.GE, (1, 2), 0),
            (Opcode.EQ, (2, 2), 1),
            (Opcode.SELECT, (1, 10, 20), 10),
            (Opcode.SELECT, (0, 10, 20), 20),
            (Opcode.ABS, (-4,), 4),
            (Opcode.MIN, (3, 7), 3),
            (Opcode.MAX, (3, 7), 7),
            (Opcode.ROUND, (2.5,), 3),   # half away from zero
            (Opcode.ROUND, (-2.5,), -3),
            (Opcode.I2F, (3,), 3.0),
            (Opcode.F2I, (3.9,), 3),
            (Opcode.F2I, (-3.9,), -3),
        ],
    )
    def test_evaluate(self, opcode, args, expected):
        assert evaluate_opcode(opcode, args) == expected

    def test_sqrt(self):
        assert evaluate_opcode(Opcode.SQRT, (9.0,)) == pytest.approx(3.0)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            evaluate_opcode(Opcode.DIV, (1, 0))

    def test_float_division(self):
        assert evaluate_opcode(Opcode.DIV, (7.0, 2)) == 3.5

    def test_non_value_op_rejected(self):
        with pytest.raises(ValueError):
            evaluate_opcode(Opcode.LOAD, (0,))


class TestConstantFolding:
    def test_fold_simple(self):
        block = make_block(
            [Instruction(Opcode.ADD, dest=t(0), operands=(Const(2), Const(3)))]
        )
        assert fold_constants_in_block(block) == 1
        assert block.instructions[0].opcode is Opcode.COPY
        assert block.instructions[0].operands[0] == Const(5)

    def test_fold_cascades(self):
        block = make_block(
            [
                Instruction(Opcode.ADD, dest=t(0), operands=(Const(2), Const(3))),
                Instruction(Opcode.MUL, dest=t(1), operands=(t(0), Const(4))),
            ]
        )
        assert fold_constants_in_block(block) == 2
        assert block.instructions[1].operands[0] == Const(20)

    def test_division_by_zero_not_folded(self):
        block = make_block(
            [Instruction(Opcode.DIV, dest=t(0), operands=(Const(1), Const(0)))]
        )
        assert fold_constants_in_block(block) == 0
        assert block.instructions[0].opcode is Opcode.DIV

    def test_non_const_untouched(self):
        block = make_block(
            [
                Instruction(
                    Opcode.ADD,
                    dest=t(0),
                    operands=(VarRef("x", Type.INT), Const(1)),
                )
            ]
        )
        assert fold_constants_in_block(block) == 0


class TestCopyPropagation:
    def test_propagates_temp_copy(self):
        block = make_block(
            [
                Instruction(Opcode.COPY, dest=t(0), operands=(Const(7),)),
                Instruction(Opcode.ADD, dest=t(1), operands=(t(0), Const(1))),
            ]
        )
        propagate_copies_in_block(block)
        assert block.instructions[1].operands[0] == Const(7)

    def test_chained_copies(self):
        block = make_block(
            [
                Instruction(Opcode.COPY, dest=t(0), operands=(Const(7),)),
                Instruction(Opcode.COPY, dest=t(1), operands=(t(0),)),
                Instruction(Opcode.ADD, dest=t(2), operands=(t(1), Const(1))),
            ]
        )
        propagate_copies_in_block(block)
        assert block.instructions[2].operands[0] == Const(7)


class TestDeadCodeElimination:
    def test_removes_unused_temp(self):
        block = make_block(
            [
                Instruction(Opcode.ADD, dest=t(0), operands=(Const(1), Const(2))),
                Instruction(
                    Opcode.COPY,
                    dest=VarRef("out", Type.INT),
                    operands=(Const(9),),
                ),
            ]
        )
        assert eliminate_dead_code_in_block(block) == 1
        assert len(block.body) == 1

    def test_keeps_calls(self):
        block = make_block(
            [Instruction(Opcode.CALL, dest=t(0), operands=(), callee="g")]
        )
        assert eliminate_dead_code_in_block(block) == 0

    def test_keeps_varref_writes(self):
        block = make_block(
            [
                Instruction(
                    Opcode.COPY,
                    dest=VarRef("x", Type.INT),
                    operands=(Const(1),),
                )
            ]
        )
        assert eliminate_dead_code_in_block(block) == 0

    def test_removes_transitively_dead_chain(self):
        block = make_block(
            [
                Instruction(Opcode.ADD, dest=t(0), operands=(Const(1), Const(2))),
                Instruction(Opcode.ADD, dest=t(1), operands=(t(0), Const(3))),
            ]
        )
        run_block_passes(block)
        assert len(block.body) == 0


class TestPipeline:
    def test_semantics_preserved_after_optimization(self):
        source = """
        int f(int x) {
            int a = 2 * 3 + 1;
            int b = a + x;
            int dead = 99 * 2;
            return b;
        }
        """
        from repro.interp import run_function

        plain = cdfg_from_source(source)
        optimized = cdfg_from_source(source)
        totals = optimize_cdfg(optimized)
        assert totals["folded"] >= 1
        for x in (-3, 0, 11):
            assert (
                run_function(plain, "f", x).return_value
                == run_function(optimized, "f", x).return_value
            )

    def test_optimized_cfg_still_verifies(self, sample_cdfg):
        source_cdfg = cdfg_from_source(
            "int f(int x) { int y = 1 + 2; while (x > y) { x = x - (3 + 4); }"
            " return x; }"
        )
        optimize_cdfg(source_cdfg)
        source_cdfg.verify()

    def test_pass_totals_reported(self):
        from repro.ir import PASS_TOTAL_KEYS

        cdfg = cdfg_from_source("int f() { int a = 1 + 1; return a; }")
        totals = optimize_cdfg(cdfg)
        assert set(totals) == set(PASS_TOTAL_KEYS)
