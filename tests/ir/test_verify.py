"""CDFG verifier tests: clean programs pass, seeded defects are pinpointed."""

from __future__ import annotations

import pytest

from repro.ir import (
    Const,
    Instruction,
    Opcode,
    Temp,
    VarRef,
    VerificationError,
    assert_verified,
    cdfg_from_source,
    sanitizer_enabled,
    set_sanitizer,
    verify_cdfg,
)
from repro.frontend.ast_nodes import Type
from repro.workloads import minic_cdfg
from repro.workloads.jpeg import JPEGEncoderApp
from repro.workloads.ofdm import OFDMTransmitterApp
from repro.workloads.synthetic import synthetic_program_source


def codes(report):
    return {d.code for d in report.diagnostics}


def find(report, code):
    found = [d for d in report.diagnostics if d.code == code]
    assert found, f"no {code!r} diagnostic in: {report.render()}"
    return found


# ----------------------------------------------------------------------
# Clean programs verify clean
# ----------------------------------------------------------------------
class TestCleanPrograms:
    def test_sample_program_verifies(self, sample_cdfg):
        report = verify_cdfg(sample_cdfg)
        assert report.ok, report.render()

    def test_ofdm_application_verifies(self):
        report = verify_cdfg(OFDMTransmitterApp().cdfg)
        assert report.ok, report.render()
        assert not report.warnings

    def test_jpeg_application_verifies(self):
        report = verify_cdfg(JPEGEncoderApp().cdfg)
        assert report.ok, report.render()
        assert not report.warnings

    @pytest.mark.parametrize("seed", range(10))
    def test_generated_programs_verify(self, seed):
        # Both the raw lowered IR and the optimized form must be clean.
        raw = cdfg_from_source(
            synthetic_program_source(seed), f"minic_s{seed}.c"
        )
        report = verify_cdfg(raw)
        assert report.ok, report.render()
        optimized = minic_cdfg(seed)
        report = verify_cdfg(optimized)
        assert report.ok, report.render()
        assert not report.warnings

    def test_assert_verified_passes_clean(self, sample_cdfg):
        assert_verified(sample_cdfg, "test")


# ----------------------------------------------------------------------
# Corruption harness: each defect class is reported with the right bb_id
# ----------------------------------------------------------------------
SOURCE = """
int g_total;

int scale(int x) {
    int y = x * 3;
    if (y > 10) { y = y - 10; }
    return y;
}

int main(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc += scale(i);
    }
    g_total = acc;
    return acc;
}
"""


@pytest.fixture
def cdfg():
    return cdfg_from_source(SOURCE, "corrupt.c")


def block_with_branch(cdfg):
    """First block terminated by BR/CBR (so successors can dangle)."""
    for key in cdfg.all_block_keys():
        block = cdfg.block(key)
        term = block.terminator
        if term is not None and term.opcode in (Opcode.BR, Opcode.CBR):
            return block
    raise AssertionError("no branching block")


def block_with_value_op(cdfg):
    """First block containing a binary value op to corrupt."""
    for key in cdfg.all_block_keys():
        block = cdfg.block(key)
        for index, ins in enumerate(block.instructions):
            if ins.opcode in (Opcode.ADD, Opcode.MUL, Opcode.SUB):
                return block, index
    raise AssertionError("no value op")


class TestCorruptionHarness:
    def test_dangling_successor(self, cdfg):
        block = block_with_branch(cdfg)
        term = block.terminator
        term.targets = ("nowhere",) + term.targets[1:]
        report = verify_cdfg(cdfg)
        assert not report.ok
        diag = find(report, "dangling-successor")[0]
        assert diag.bb_id == block.bb_id
        assert diag.label == block.label
        assert "nowhere" in diag.message

    def test_double_terminator(self, cdfg):
        block = block_with_branch(cdfg)
        # A second control op mid-block: duplicate the terminator.
        term = block.terminator
        block.instructions.insert(
            len(block.instructions) - 1,
            Instruction(term.opcode, operands=term.operands,
                        targets=term.targets),
        )
        report = verify_cdfg(cdfg)
        assert not report.ok
        diag = find(report, "double-terminator")[0]
        assert diag.bb_id == block.bb_id

    def test_use_before_def(self, cdfg):
        # Read a local of main before any path assigned it.
        cfg = cdfg.cfg("main")
        local = next(
            name
            for name, info in cfg.variables.items()
            if not (info.is_param or info.is_global or info.is_array
                    or info.is_const)
        )
        entry = cfg.entry
        # Drop every write to it, then read it: no path defines it.
        for block in cfg.blocks.values():
            block.instructions = [
                ins
                for ins in block.instructions
                if not (
                    isinstance(ins.dest, VarRef) and ins.dest.name == local
                )
            ]
        entry.instructions.insert(
            0,
            Instruction(
                Opcode.COPY,
                dest=Temp(990, Type.INT),
                operands=(VarRef(local, Type.INT),),
            ),
        )
        report = verify_cdfg(cdfg)
        assert not report.ok
        diags = find(report, "use-before-def")
        assert any(
            d.bb_id == entry.bb_id and local in d.message for d in diags
        ), report.render()

    def test_bad_arity(self, cdfg):
        block, index = block_with_value_op(cdfg)
        ins = block.instructions[index]
        ins.operands = ins.operands[:1]
        report = verify_cdfg(cdfg)
        assert not report.ok
        diag = find(report, "bad-arity")[0]
        assert diag.bb_id == block.bb_id
        assert diag.op_index == index

    def test_temp_use_before_def(self, cdfg):
        block, index = block_with_value_op(cdfg)
        ins = block.instructions[index]
        ins.operands = (Temp(999, Type.INT),) + ins.operands[1:]
        report = verify_cdfg(cdfg)
        assert not report.ok
        diag = find(report, "temp-use-before-def")[0]
        assert diag.bb_id == block.bb_id

    def test_assert_verified_raises_with_context(self, cdfg):
        block = block_with_branch(cdfg)
        term = block.terminator
        term.targets = ("nowhere",) + term.targets[1:]
        with pytest.raises(VerificationError, match="nowhere"):
            assert_verified(cdfg, "corruption test")
        try:
            assert_verified(cdfg, "corruption test")
        except VerificationError as error:
            assert error.diagnostics
            assert "corruption test" in str(error)


# ----------------------------------------------------------------------
# Sanitizer switch
# ----------------------------------------------------------------------
class TestSanitizerSwitch:
    def test_default_on(self):
        assert sanitizer_enabled()

    def test_override_and_reset(self):
        set_sanitizer(False)
        try:
            assert not sanitizer_enabled()
        finally:
            set_sanitizer(None)
        assert sanitizer_enabled()

    def test_lowering_rejects_nothing_on_clean_source(self):
        # build path runs assert_verified when the sanitizer is on
        cdfg = cdfg_from_source("int f(int x) { return x + 1; }")
        assert verify_cdfg(cdfg).ok
