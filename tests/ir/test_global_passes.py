"""Global pass differential tests: semantics, bb_ids and partitions hold."""

from __future__ import annotations

import pytest

import repro.ir.passes as passes
from repro.frontend.ast_nodes import ArrayType, Type
from repro.interp import run_function
from repro.interp.interpreter import Interpreter
from repro.interp.profiler import BlockProfiler
from repro.interp.values import ArrayStorage
from repro.analysis.dynamic_analysis import DynamicProfile
from repro.ir import optimize_cdfg, verify_cdfg
from repro.partition import PartitioningEngine
from repro.partition.workload import workload_from_cdfg
from repro.platform import paper_platform
from repro.workloads import minic_cdfg, minic_input
from repro.workloads.jpeg import JPEGEncoderApp
from repro.workloads.ofdm import OFDMTransmitterApp

#: Seeds whose generated programs shed ops under the global passes AND
#: whose greedy partition stays bit-identical (measured; see
#: EXPERIMENTS.md).
PINNED_SEEDS = (0, 8, 16, 18)


def op_count(cdfg):
    return sum(
        len(block.instructions)
        for cfg in cdfg.cfgs.values()
        for block in cfg.blocks.values()
    )


def storage_for(seed):
    storage = ArrayStorage.allocate("data", ArrayType(Type.INT, (32,)))
    for index, value in enumerate(minic_input(seed)):
        storage.store(index, value)
    return storage


def local_only(seed):
    cdfg = minic_cdfg(seed, optimize=False)
    passes.optimize_cdfg(cdfg, global_passes=False)
    return cdfg


def run_entry(cdfg, seed, mode):
    return run_function(cdfg, "entry", storage_for(seed), mode=mode)


class TestSemanticsPreserved:
    @pytest.mark.parametrize("seed", range(10))
    def test_global_passes_preserve_minic_semantics(self, seed):
        raw = minic_cdfg(seed, optimize=False)
        optimized = minic_cdfg(seed)
        expected = run_entry(raw, seed, "walker").return_value
        for mode in ("walker", "compiled"):
            assert run_entry(optimized, seed, mode).return_value == expected

    def test_sample_program_semantics(self, sample_cdfg):
        from tests.conftest import SAMPLE_SOURCE
        from repro.ir import cdfg_from_source

        optimized = cdfg_from_source(SAMPLE_SOURCE, "sample.c")
        optimize_cdfg(optimized)
        for x in (-5, 0, 3, 17):
            expected = run_function(sample_cdfg, "main", x).return_value
            for mode in ("walker", "compiled"):
                got = run_function(optimized, "main", x, mode=mode)
                assert got.return_value == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_optimized_output_verifies(self, seed):
        report = verify_cdfg(minic_cdfg(seed))
        assert report.ok, report.render()
        assert not report.warnings  # no unreachable blocks survive


class TestShrinkage:
    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_global_passes_remove_ops(self, seed):
        loc = local_only(seed)
        glob = minic_cdfg(seed)
        assert op_count(glob) < op_count(loc)
        assert glob.block_count < loc.block_count

    def test_paper_apps_are_already_clean(self):
        for app in (OFDMTransmitterApp(), JPEGEncoderApp()):
            before_ops = op_count(app.cdfg)
            before_blocks = app.cdfg.block_count
            totals = optimize_cdfg(app.cdfg)
            assert op_count(app.cdfg) == before_ops
            assert app.cdfg.block_count == before_blocks
            assert totals["global_removed"] == 0
            assert totals["unreachable_removed"] == 0

    def test_unreachable_elimination_keeps_surviving_ids(self):
        cdfg = minic_cdfg(0, optimize=False)
        before = {
            key: bb_id
            for bb_id, key in ((i, cdfg.key_for_id(i))
                               for i in sorted(cdfg._by_id))
        }
        optimize_cdfg(cdfg)
        for key in cdfg.all_block_keys():
            assert cdfg.block(key).bb_id == before[key]

    def test_totals_schema(self):
        totals = optimize_cdfg(minic_cdfg(3, optimize=False))
        assert set(totals) == set(passes.PASS_TOTAL_KEYS)
        assert all(v >= 0 for v in totals.values())


def greedy_partition(cdfg, seed):
    profiler = BlockProfiler()
    Interpreter(cdfg, profiler, mode="compiled").run(
        "entry", storage_for(seed)
    )
    profile = DynamicProfile(frequencies=profiler.frequencies(), runs=1)
    workload = workload_from_cdfg(cdfg, profile, name=f"minic-s{seed}")
    engine = PartitioningEngine(workload, paper_platform(1500, 2))
    result = engine.run(int(engine.initial_cycles() * 0.75))
    return (
        result.initial_cycles,
        result.final_cycles,
        tuple(result.moved_bb_ids),
        tuple(result.skipped_bb_ids),
        tuple(
            (s.moved_bb_id, s.total_cycles, s.constraint_met)
            for s in result.steps
        ),
        result.constraint_met,
        result.fpga_cycles,
        result.cycles_in_cgc,
        result.comm_cycles,
    )


class TestPartitionNeutrality:
    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_partition_bit_identical_after_global_passes(self, seed):
        # The pinned programs shrink (TestShrinkage) yet produce the
        # exact same greedy PartitionResult: removed ops were never in
        # any priced DFG the partitioner chose to move.
        loc = greedy_partition(local_only(seed), seed)
        glob = greedy_partition(minic_cdfg(seed), seed)
        assert loc == glob
