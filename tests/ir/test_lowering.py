"""AST -> CFG lowering tests."""

from repro.frontend import parse_program, analyze_program
from repro.ir import (
    ArrayBase,
    Const,
    Opcode,
    VarRef,
    lower_program,
)


def lower(source):
    program = parse_program(source)
    analyze_program(program)
    return lower_program(program)


def opcodes_in(cfg):
    return [ins.opcode for block in cfg for ins in block.instructions]


class TestStructure:
    def test_straightline_single_block(self):
        cfg = lower("int f(int x) { int y = x + 1; return y; }")["f"]
        assert len(cfg) == 1
        assert cfg.entry.terminator.opcode is Opcode.RET

    def test_if_produces_diamond(self):
        cfg = lower(
            "int f(int x) { int y = 0; if (x) { y = 1; } else { y = 2; } "
            "return y; }"
        )["f"]
        assert len(cfg) == 4  # entry, then, else, join

    def test_if_without_else_three_blocks(self):
        cfg = lower(
            "int f(int x) { int y = 0; if (x) { y = 1; } return y; }"
        )["f"]
        assert len(cfg) == 3

    def test_while_structure(self):
        cfg = lower("void f(int n) { while (n) { n = n - 1; } }")["f"]
        labels = set(cfg.blocks)
        assert any("while_header" in lab for lab in labels)
        assert any("while_body" in lab for lab in labels)
        assert any("while_exit" in lab for lab in labels)

    def test_for_structure(self):
        cfg = lower("void f() { for (int i = 0; i < 3; i++) { } }")["f"]
        labels = set(cfg.blocks)
        assert any("for_step" in lab for lab in labels)

    def test_do_while_executes_body_first(self):
        cfg = lower("void f(int n) { do { n = n - 1; } while (n); }")["f"]
        entry_succ = cfg.successors(cfg.entry_label)
        assert len(entry_succ) == 1
        assert "do_body" in entry_succ[0]

    def test_break_branches_to_exit(self):
        cfg = lower("void f() { while (1) { break; } }")["f"]
        body = next(lab for lab in cfg.blocks if "while_body" in lab)
        (target,) = cfg.successors(body)
        assert "while_exit" in target

    def test_continue_branches_to_header(self):
        cfg = lower(
            "void f(int n) { while (n) { continue; } }"
        )["f"]
        body = next(lab for lab in cfg.blocks if "while_body" in lab)
        (target,) = cfg.successors(body)
        assert "while_header" in target

    def test_unreachable_code_removed(self):
        cfg = lower("int f() { return 1; int x = 2; return x; }")["f"]
        assert len(cfg) == 1

    def test_implicit_void_return(self):
        cfg = lower("void f() { int x = 1; }")["f"]
        assert cfg.entry.terminator.opcode is Opcode.RET

    def test_cfg_verifies(self):
        for cfg in lower(
            "void f(int n) { for (int i = 0; i < n; i++) { if (i % 2) "
            "{ continue; } } }"
        ).values():
            cfg.verify()


class TestOperations:
    def test_arithmetic_opcode_selection(self):
        cfg = lower("int f(int a, int b) { return a * b + (a % b); }")["f"]
        ops = opcodes_in(cfg)
        assert Opcode.MUL in ops and Opcode.MOD in ops and Opcode.ADD in ops

    def test_array_load_store(self):
        cfg = lower("void f(int a[4]) { a[1] = a[0] + 1; }")["f"]
        ops = opcodes_in(cfg)
        assert ops.count(Opcode.LOAD) == 1 and ops.count(Opcode.STORE) == 1

    def test_2d_index_linearized(self):
        cfg = lower("void f(int a[3][4], int i, int j) { a[i][j] = 0; }")["f"]
        muls = [
            ins
            for block in cfg
            for ins in block.instructions
            if ins.opcode is Opcode.MUL
        ]
        assert any(Const(4) in ins.operands for ins in muls)

    def test_local_array_marked_local(self):
        cfg = lower("void f() { int a[4]; a[0] = 1; }")["f"]
        stores = [
            ins
            for block in cfg
            for ins in block.instructions
            if ins.opcode is Opcode.STORE
        ]
        base = stores[0].operands[0]
        assert isinstance(base, ArrayBase) and base.local

    def test_param_array_marked_shared(self):
        cfg = lower("void f(int a[4]) { a[0] = 1; }")["f"]
        stores = [
            ins
            for block in cfg
            for ins in block.instructions
            if ins.opcode is Opcode.STORE
        ]
        assert not stores[0].operands[0].local

    def test_global_array_marked_shared(self):
        cfg = lower("int G[4]; void f() { G[0] = 1; }")["f"]
        stores = [
            ins
            for block in cfg
            for ins in block.instructions
            if ins.opcode is Opcode.STORE
        ]
        assert not stores[0].operands[0].local

    def test_ternary_becomes_select(self):
        cfg = lower("int f(int a) { return a ? 1 : 2; }")["f"]
        assert Opcode.SELECT in opcodes_in(cfg)

    def test_logical_and_non_short_circuit(self):
        cfg = lower("int f(int a, int b) { return a && b; }")["f"]
        ops = opcodes_in(cfg)
        assert Opcode.AND in ops and ops.count(Opcode.NE) == 2

    def test_intrinsic_lowered_to_opcode(self):
        cfg = lower("int f(int a) { return abs(a) + max(a, 2); }")["f"]
        ops = opcodes_in(cfg)
        assert Opcode.ABS in ops and Opcode.MAX in ops

    def test_cast_lowered(self):
        cfg = lower("int f(float a) { return (int) a; }")["f"]
        assert Opcode.F2I in opcodes_in(cfg)

    def test_call_lowered_with_array_base(self):
        cfg = lower(
            "int g(int a[2]) { return a[0]; } "
            "int f() { int v[2]; return g(v); }"
        )["f"]
        calls = [
            ins
            for block in cfg
            for ins in block.instructions
            if ins.opcode is Opcode.CALL
        ]
        assert calls[0].callee == "g"
        assert isinstance(calls[0].operands[0], ArrayBase)

    def test_scalar_copy_on_assignment(self):
        cfg = lower("void f() { int a = 1; int b = a; }")["f"]
        copies = [
            ins
            for block in cfg
            for ins in block.instructions
            if ins.opcode is Opcode.COPY and isinstance(ins.dest, VarRef)
        ]
        assert {c.dest.name for c in copies} == {"a", "b"}

    def test_unary_ops(self):
        cfg = lower("int f(int a) { return -a + ~a + !a; }")["f"]
        ops = opcodes_in(cfg)
        assert Opcode.NEG in ops and Opcode.BNOT in ops and Opcode.LNOT in ops
