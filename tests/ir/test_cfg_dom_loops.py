"""CFG structure, dominators, natural loops and CDFG numbering tests."""

import pytest

from repro.ir import (
    DominatorTree,
    LoopForest,
    cdfg_from_source,
)

LOOPY = """
void f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            s = s + i * j;
        }
        if (s > 100) {
            s = s - 100;
        }
    }
    while (s > 0) {
        s = s - 3;
    }
}
"""


@pytest.fixture(scope="module")
def loopy_cfg():
    return cdfg_from_source(LOOPY).cfg("f")


class TestCFG:
    def test_entry_is_first(self, loopy_cfg):
        assert loopy_cfg.entry_label == loopy_cfg.reverse_post_order()[0]

    def test_rpo_covers_reachable(self, loopy_cfg):
        assert set(loopy_cfg.reverse_post_order()) == loopy_cfg.reachable_labels()

    def test_predecessors_inverse_of_successors(self, loopy_cfg):
        for label in loopy_cfg.blocks:
            for succ in loopy_cfg.successors(label):
                assert label in loopy_cfg.predecessors(succ)

    def test_exit_labels_are_ret(self, loopy_cfg):
        exits = loopy_cfg.exit_labels()
        assert exits
        from repro.ir import Opcode

        for label in exits:
            assert loopy_cfg.block(label).terminator.opcode is Opcode.RET

    def test_networkx_roundtrip(self, loopy_cfg):
        graph = loopy_cfg.to_networkx()
        assert graph.number_of_nodes() == len(loopy_cfg)

    def test_verify_passes(self, loopy_cfg):
        loopy_cfg.verify()


class TestDominators:
    def test_entry_dominates_everything(self, loopy_cfg):
        dom = DominatorTree(loopy_cfg)
        for label in loopy_cfg.reachable_labels():
            assert dom.dominates(loopy_cfg.entry_label, label)

    def test_self_domination(self, loopy_cfg):
        dom = DominatorTree(loopy_cfg)
        for label in loopy_cfg.reachable_labels():
            assert dom.dominates(label, label)

    def test_entry_has_no_idom(self, loopy_cfg):
        dom = DominatorTree(loopy_cfg)
        assert dom.immediate_dominator(loopy_cfg.entry_label) is None

    def test_idom_dominates(self, loopy_cfg):
        dom = DominatorTree(loopy_cfg)
        for label in loopy_cfg.reachable_labels():
            idom = dom.immediate_dominator(label)
            if idom is not None:
                assert dom.dominates(idom, label)

    def test_dominator_chain_ends_at_entry(self, loopy_cfg):
        dom = DominatorTree(loopy_cfg)
        for label in loopy_cfg.reachable_labels():
            chain = dom.dominators_of(label)
            assert chain[-1] == loopy_cfg.entry_label

    def test_loop_header_dominates_body(self, loopy_cfg):
        dom = DominatorTree(loopy_cfg)
        forest = LoopForest(loopy_cfg, dom)
        for loop in forest.loops:
            for label in loop.body:
                assert dom.dominates(loop.header, label)


class TestLoops:
    def test_loop_count(self, loopy_cfg):
        forest = LoopForest(loopy_cfg)
        assert forest.loop_count == 3  # two nested fors + one while

    def test_nesting_depth(self, loopy_cfg):
        forest = LoopForest(loopy_cfg)
        depths = {
            label: forest.loop_depth(label) for label in loopy_cfg.blocks
        }
        assert max(depths.values()) == 2  # inner for body

    def test_innermost_loop_smallest(self, loopy_cfg):
        forest = LoopForest(loopy_cfg)
        inner_body = next(
            lab for lab, d in (
                (label, forest.loop_depth(label)) for label in loopy_cfg.blocks
            ) if d == 2
        )
        loop = forest.innermost_loop(inner_body)
        assert loop is not None
        sizes = [x.size for x in forest.loops if x.contains(inner_body)]
        assert loop.size == min(sizes)

    def test_entry_not_in_loop(self, loopy_cfg):
        forest = LoopForest(loopy_cfg)
        assert forest.loop_depth(loopy_cfg.entry_label) == 0

    def test_back_edges_recorded(self, loopy_cfg):
        forest = LoopForest(loopy_cfg)
        for loop in forest.loops:
            assert loop.back_edges
            for tail, head in loop.back_edges:
                assert head == loop.header
                assert loop.contains(tail)

    def test_no_loops_in_straightline(self):
        cfg = cdfg_from_source("int f(int x) { return x + 1; }").cfg("f")
        assert LoopForest(cfg).loop_count == 0


class TestCDFGNumbering:
    def test_ids_dense_from_one(self, sample_cdfg):
        ids = [b.bb_id for b in sample_cdfg.all_blocks()]
        assert ids == list(range(1, sample_cdfg.block_count + 1))

    def test_id_lookup_roundtrip(self, sample_cdfg):
        for bb_id in range(1, sample_cdfg.block_count + 1):
            assert sample_cdfg.block_by_id(bb_id).bb_id == bb_id

    def test_numbering_deterministic(self):
        from tests.conftest import SAMPLE_SOURCE

        a = cdfg_from_source(SAMPLE_SOURCE)
        b = cdfg_from_source(SAMPLE_SOURCE)
        assert [str(k) for k in a.all_block_keys()] == [
            str(k) for k in b.all_block_keys()
        ]

    def test_statistics_cover_all_blocks(self, sample_cdfg):
        stats = sample_cdfg.statistics()
        assert set(stats) == set(range(1, sample_cdfg.block_count + 1))

    def test_verify(self, sample_cdfg):
        sample_cdfg.verify()
