"""Data-flow graph construction and level tests."""

from repro.frontend.ast_nodes import Type
from repro.ir import (
    ArrayBase,
    BasicBlock,
    Const,
    DataFlowGraph,
    DFGStatistics,
    Instruction,
    Opcode,
    Temp,
    VarRef,
)


def block_of(instructions):
    block = BasicBlock("t")
    for ins in instructions:
        block.append(ins)
    block.append(Instruction(Opcode.RET))
    return block


def t(i):
    return Temp(i, Type.INT)


class TestEdges:
    def test_temp_def_use_edge(self):
        block = block_of(
            [
                Instruction(Opcode.ADD, dest=t(0), operands=(Const(1), Const(2))),
                Instruction(Opcode.MUL, dest=t(1), operands=(t(0), Const(3))),
            ]
        )
        dfg = DataFlowGraph(block)
        assert dfg.graph.has_edge(0, 1)

    def test_var_def_use_edge(self):
        block = block_of(
            [
                Instruction(Opcode.COPY, dest=VarRef("x", Type.INT), operands=(Const(1),)),
                Instruction(Opcode.ADD, dest=t(0), operands=(VarRef("x", Type.INT), Const(2))),
            ]
        )
        dfg = DataFlowGraph(block)
        assert dfg.graph.has_edge(0, 1)

    def test_live_in_scalar_detected(self):
        block = block_of(
            [Instruction(Opcode.ADD, dest=t(0), operands=(VarRef("inp", Type.INT), Const(1)))]
        )
        dfg = DataFlowGraph(block)
        assert "inp" in dfg.live_in_scalars

    def test_live_out_scalar_detected(self):
        block = block_of(
            [Instruction(Opcode.COPY, dest=VarRef("out", Type.INT), operands=(Const(1),))]
        )
        dfg = DataFlowGraph(block)
        assert "out" in dfg.live_out_scalars

    def test_store_load_raw_edge(self):
        a = ArrayBase("a", Type.INT)
        block = block_of(
            [
                Instruction(Opcode.STORE, operands=(a, Const(0), Const(7))),
                Instruction(Opcode.LOAD, dest=t(0), operands=(a, Const(0))),
            ]
        )
        dfg = DataFlowGraph(block)
        assert dfg.graph.has_edge(0, 1)

    def test_load_store_war_edge(self):
        a = ArrayBase("a", Type.INT)
        block = block_of(
            [
                Instruction(Opcode.LOAD, dest=t(0), operands=(a, Const(0))),
                Instruction(Opcode.STORE, operands=(a, Const(0), Const(7))),
            ]
        )
        dfg = DataFlowGraph(block)
        assert dfg.graph.has_edge(0, 1)

    def test_store_store_waw_edge(self):
        a = ArrayBase("a", Type.INT)
        block = block_of(
            [
                Instruction(Opcode.STORE, operands=(a, Const(0), Const(1))),
                Instruction(Opcode.STORE, operands=(a, Const(1), Const(2))),
            ]
        )
        dfg = DataFlowGraph(block)
        assert dfg.graph.has_edge(0, 1)

    def test_different_arrays_independent(self):
        a, b = ArrayBase("a", Type.INT), ArrayBase("b", Type.INT)
        block = block_of(
            [
                Instruction(Opcode.STORE, operands=(a, Const(0), Const(1))),
                Instruction(Opcode.STORE, operands=(b, Const(0), Const(2))),
            ]
        )
        dfg = DataFlowGraph(block)
        assert not dfg.graph.has_edge(0, 1)

    def test_acyclic(self, sample_cdfg):
        for key in sample_cdfg.all_block_keys():
            assert sample_cdfg.dfg(key).is_acyclic()


class TestLevels:
    def _chain(self, n):
        ins = [Instruction(Opcode.ADD, dest=t(0), operands=(Const(1), Const(1)))]
        for i in range(1, n):
            ins.append(
                Instruction(Opcode.ADD, dest=t(i), operands=(t(i - 1), Const(1)))
            )
        return DataFlowGraph(block_of(ins))

    def test_chain_levels(self):
        dfg = self._chain(5)
        levels = dfg.asap_levels()
        assert [levels[i] for i in range(5)] == [1, 2, 3, 4, 5]

    def test_max_level(self):
        assert self._chain(7).max_level == 7

    def test_parallel_nodes_share_level(self):
        block = block_of(
            [
                Instruction(Opcode.ADD, dest=t(0), operands=(Const(1), Const(2))),
                Instruction(Opcode.SUB, dest=t(1), operands=(Const(3), Const(4))),
            ]
        )
        dfg = DataFlowGraph(block)
        assert dfg.parallelism_profile() == [2]

    def test_alap_levels_sink_at_depth(self):
        dfg = self._chain(3)
        alap = dfg.alap_levels()
        assert alap[2] == 3

    def test_slack_zero_on_critical_path(self):
        dfg = self._chain(4)
        assert all(s == 0 for s in dfg.slack().values())

    def test_slack_positive_off_critical_path(self):
        block = block_of(
            [
                Instruction(Opcode.ADD, dest=t(0), operands=(Const(1), Const(1))),
                Instruction(Opcode.ADD, dest=t(1), operands=(t(0), Const(1))),
                Instruction(Opcode.ADD, dest=t(2), operands=(t(1), Const(1))),
                # independent single op: slack 2
                Instruction(Opcode.SUB, dest=t(3), operands=(Const(5), Const(1))),
            ]
        )
        dfg = DataFlowGraph(block)
        assert dfg.slack()[3] == 2

    def test_levels_group_count(self):
        dfg = self._chain(4)
        assert len(dfg.levels()) == 4

    def test_empty_block(self):
        dfg = DataFlowGraph(block_of([]))
        assert len(dfg) == 0 and dfg.max_level == 0
        assert dfg.parallelism_profile() == []


class TestStatistics:
    def test_histogram(self):
        block = block_of(
            [
                Instruction(Opcode.MUL, dest=t(0), operands=(Const(2), Const(3))),
                Instruction(Opcode.ADD, dest=t(1), operands=(t(0), Const(1))),
                Instruction(
                    Opcode.STORE,
                    operands=(ArrayBase("a", Type.INT), Const(0), t(1)),
                ),
            ]
        )
        stats = DFGStatistics.from_dfg(DataFlowGraph(block))
        assert stats.mul_ops == 1 and stats.alu_ops == 1
        assert stats.memory_count == 1
        assert stats.compute_count == 2

    def test_communication_words(self):
        block = block_of(
            [
                Instruction(
                    Opcode.ADD,
                    dest=VarRef("y", Type.INT),
                    operands=(VarRef("x", Type.INT), Const(1)),
                )
            ]
        )
        dfg = DataFlowGraph(block)
        assert dfg.communication_words() == 2  # x in, y out

    def test_networkx_export(self, sample_cdfg):
        key = sample_cdfg.all_block_keys()[0]
        graph = sample_cdfg.dfg(key).to_networkx()
        assert graph.number_of_nodes() == len(sample_cdfg.dfg(key))
