"""Global dataflow solver tests: liveness, reaching defs, definite assignment."""

from __future__ import annotations

import pytest

from repro.ir import (
    DefiniteAssignment,
    LivenessAnalysis,
    ReachingDefinitions,
    cdfg_from_source,
    live_variable_sets,
    reaching_definition_sets,
)

SOURCE = """
int g_sum;

int f(int n) {
    int a = 1;
    int b = 2;
    int dead = 7;
    if (n > 0) {
        a = a + b;
    } else {
        a = a - b;
    }
    g_sum = a;
    return a;
}
"""

LOOP_SOURCE = """
int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + i;
    }
    return acc;
}
"""


@pytest.fixture
def cfg():
    return cdfg_from_source(SOURCE, "df.c").cfg("f")


@pytest.fixture
def loop_cfg():
    return cdfg_from_source(LOOP_SOURCE, "dfloop.c").cfg("f")


class TestLiveness:
    def test_converges(self, cfg):
        result = live_variable_sets(cfg)
        assert 0 < result.iterations < 64
        assert set(result.in_sets) == set(cfg.reverse_post_order())

    def test_param_live_at_entry(self, cfg):
        result = live_variable_sets(cfg)
        assert "n" in result.live_in(cfg.entry_label)

    def test_dead_local_not_live_after_entry(self, cfg):
        result = live_variable_sets(cfg)
        assert all(
            "dead" not in result.live_out(label) for label in result.out_sets
        )

    def test_global_live_at_every_exit(self, cfg):
        result = live_variable_sets(cfg)
        for block in cfg:
            term = block.terminator
            if term is not None and term.opcode.mnemonic == "ret":
                assert "g_sum" in result.live_out(block.label)

    def test_loop_variable_live_around_backedge(self, loop_cfg):
        result = live_variable_sets(loop_cfg)
        # acc is live at the loop header: read by a later iteration.
        live_anywhere = set()
        for label in result.in_sets:
            live_anywhere |= result.live_in(label)
        assert "acc" in live_anywhere
        assert "i" in live_anywhere


class TestReachingDefinitions:
    def test_boundary_defs_for_params_and_globals(self, cfg):
        result = reaching_definition_sets(cfg)
        entry_in = result.in_sets[cfg.entry_label]
        assert ("n", "<entry>", -1) in entry_in
        assert ("g_sum", "<entry>", -1) in entry_in

    def test_both_branch_defs_reach_the_join(self, cfg):
        result = reaching_definition_sets(cfg)
        # After the if/else, two defs of `a` must reach the join block.
        ret_labels = [
            block.label
            for block in cfg
            if block.terminator is not None
            and block.terminator.opcode.mnemonic == "ret"
        ]
        assert ret_labels
        reaching_a = {
            site
            for site in result.in_sets[ret_labels[0]]
            if site[0] == "a" and site[1] != "<entry>"
        }
        assert len(reaching_a) == 2

    def test_redefinition_kills_upstream_def(self, cfg):
        result = ReachingDefinitions().solve(cfg)
        # In each RET block g_sum was just written: only that def remains.
        for block in cfg:
            writes = [
                (index, ins)
                for index, ins in enumerate(block.instructions)
                if getattr(ins.dest, "name", None) == "g_sum"
            ]
            if not writes:
                continue
            out = result.out_sets[block.label]
            sites = {site for site in out if site[0] == "g_sum"}
            assert sites == {("g_sum", block.label, writes[-1][0])}


class TestDefiniteAssignment:
    def test_locals_assigned_after_entry_block(self, cfg):
        result = DefiniteAssignment().solve(cfg)
        out = result.out_sets[cfg.entry_label]
        assert {"a", "b", "dead"} <= out

    def test_must_meet_is_intersection(self):
        cdfg = cdfg_from_source(
            """
            int f(int n) {
                int x = 0;
                int y = 0;
                if (n > 0) { x = 1; } else { y = 2; }
                return x + y;
            }
            """
        )
        cfg = cdfg.cfg("f")
        result = DefiniteAssignment().solve(cfg)
        # x and y are written before the branch too, so both survive the
        # join; n (param) is always assigned.
        for label in result.in_sets:
            if label == cfg.entry_label:
                continue
            assert "n" in result.in_sets[label]

    def test_liveness_agrees_with_dfg_live_in(self, cfg):
        # The per-block DFG computes its own live_in (upward-exposed
        # scalar reads); the global analysis' gen must contain it.
        analysis = LivenessAnalysis()
        result = analysis.solve(cfg)
        for block in cfg:
            gen = analysis.gen(block)
            assert gen <= result.live_in(block.label) | gen
