"""Fault-injection coverage for the supervised ``map_tasks``.

Every test drives the *real* process-pool path (where the schedule
kills real workers) or the serial path (where the same schedule is
simulated in-process) with a deterministic
:class:`~repro.faults.FaultPlan`, and asserts the recovered output is
bit-identical to a fault-free serial run — the supervision layer's
central contract.
"""

from __future__ import annotations

import warnings

import pytest

from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    RetryPolicy,
    TaskFailure,
    TaskFailureError,
)
from repro.parallel import map_tasks


def square(task: int) -> int:
    return task * task


TASKS = list(range(1, 11))
EXPECTED = [square(task) for task in TASKS]


def run(
    plan=None,
    *,
    workers: int = 4,
    policy: RetryPolicy | None = None,
    failure_mode: str = "raise",
):
    counters: dict[str, int] = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        results, __ = map_tasks(
            square,
            TASKS,
            workers,
            what="squares",
            policy=policy,
            fault_plan=plan,
            failure_mode=failure_mode,
            counters=counters,
        )
    return results, counters


class TestCrashRecovery:
    def test_single_crash_mid_batch_salvages_and_rebuilds(self):
        results, counters = run(FaultPlan.crash_at(3))
        assert results == EXPECTED
        assert counters["pool_rebuilds"] >= 1
        assert counters["tasks_recovered"] >= 1

    def test_two_workers_killed_still_bit_identical(self):
        # The acceptance scenario: a seeded plan killing >= 2 workers.
        results, counters = run(FaultPlan.crash_at(2, 7))
        assert results == EXPECTED
        assert counters["pool_rebuilds"] >= 1
        assert counters["tasks_recovered"] >= 2

    def test_crash_budget_exhausted_finishes_serially(self):
        # More distinct crashes than the rebuild budget: the run must
        # still complete (serially) with identical results.
        plan = FaultPlan.crash_at(0, 2, 4, 6)
        policy = RetryPolicy(max_pool_rebuilds=1)
        results, counters = run(plan, policy=policy)
        assert results == EXPECTED
        assert counters["pool_rebuilds"] >= 1

    def test_serial_run_simulates_crashes(self):
        # workers=1 has no process to kill; the same schedule must be
        # honoured in-process and bounded by the rebuild budget.
        results, counters = run(FaultPlan.crash_at(1, 5), workers=1)
        assert results == EXPECTED
        assert counters["pool_rebuilds"] == 2
        assert counters["tasks_recovered"] == 2


class TestRetries:
    def test_retry_then_succeed(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=4, attempt=0, kind="error", message="flaky")
        )
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)
        results, counters = run(plan, policy=policy)
        assert results == EXPECTED
        assert counters["task_retries"] == 1
        assert counters["tasks_recovered"] == 1

    def test_retry_exhausted_raises_original_exception(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=4, attempt=0, kind="error", message="still"),
            FaultSpec(task_index=4, attempt=1, kind="error", message="dead"),
        )
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)
        with pytest.raises(InjectedFaultError):
            run(plan, policy=policy)

    def test_retry_exhausted_report_mode_yields_task_failure(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=4, attempt=0, kind="error", message="a"),
            FaultSpec(task_index=4, attempt=1, kind="error", message="b"),
        )
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)
        results, counters = run(plan, policy=policy, failure_mode="report")
        failure = results[4]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "exception"
        assert failure.index == 4
        assert failure.attempts == 2
        assert counters["tasks_failed"] == 1
        # Every other slot is untouched by the one failure.
        assert results[:4] == EXPECTED[:4]
        assert results[5:] == EXPECTED[5:]

    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(backoff_seconds=0.05, backoff_factor=2.0)
        assert policy.backoff_for(0) == 0.0
        assert policy.backoff_for(1) == pytest.approx(0.05)
        assert policy.backoff_for(2) == pytest.approx(0.10)
        assert policy.backoff_for(3) == pytest.approx(0.20)


class TestPoison:
    def test_poisoned_result_is_detected_not_returned(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=6, attempt=0, kind="poison"),
            FaultSpec(task_index=6, attempt=1, kind="poison"),
        )
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)
        results, counters = run(plan, policy=policy, failure_mode="report")
        failure = results[6]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "poisoned"
        assert counters["tasks_failed"] == 1
        assert results[:6] == EXPECTED[:6]
        assert results[7:] == EXPECTED[7:]

    def test_poison_retry_then_clean(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=6, attempt=0, kind="poison"),
        )
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)
        results, counters = run(plan, policy=policy)
        assert results == EXPECTED
        assert counters["task_retries"] == 1

    def test_poison_raise_mode_raises_task_failure_error(self):
        plan = FaultPlan.of(FaultSpec(task_index=6, attempt=0, kind="poison"))
        with pytest.raises(TaskFailureError) as excinfo:
            run(plan)
        assert excinfo.value.failure.kind == "poisoned"


class TestTimeouts:
    def test_hang_is_killed_and_retried(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=3, attempt=0, kind="hang", seconds=30.0)
        )
        policy = RetryPolicy(
            max_attempts=2, backoff_seconds=0.0, task_timeout_seconds=0.5
        )
        results, counters = run(plan, policy=policy)
        assert results == EXPECTED
        assert counters["task_timeouts"] == 1
        assert counters["task_retries"] == 1

    def test_hang_exhausted_reports_timeout(self):
        plan = FaultPlan.of(
            FaultSpec(task_index=3, attempt=0, kind="hang", seconds=30.0),
            FaultSpec(task_index=3, attempt=1, kind="hang", seconds=30.0),
        )
        policy = RetryPolicy(
            max_attempts=2, backoff_seconds=0.0, task_timeout_seconds=0.5
        )
        results, counters = run(plan, policy=policy, failure_mode="report")
        failure = results[3]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "timeout"
        assert counters["task_timeouts"] == 2


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_results_independent_of_worker_count(self, workers):
        plan = FaultPlan.of(
            FaultSpec(task_index=1, attempt=0, kind="crash"),
            FaultSpec(task_index=5, attempt=0, kind="error", message="x"),
            FaultSpec(task_index=8, attempt=0, kind="slow", seconds=0.01),
        )
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)
        results, __ = run(plan, workers=workers, policy=policy)
        assert results == EXPECTED

    def test_task_order_preserved_under_chaos(self):
        # A crash plus retries must never permute the output slots.
        plan = FaultPlan.of(
            FaultSpec(task_index=9, attempt=0, kind="crash"),
            FaultSpec(task_index=0, attempt=0, kind="error", message="x"),
        )
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)
        results, __ = run(plan, policy=policy)
        assert results == EXPECTED

    def test_seeded_plan_is_reproducible(self):
        one = FaultPlan.seeded(7, 32, crash_rate=0.1, error_rate=0.1)
        two = FaultPlan.seeded(7, 32, crash_rate=0.1, error_rate=0.1)
        assert one == two
        assert any(s.kind == "crash" for s in one.specs)

    def test_plain_path_unchanged(self):
        # No policy/plan/counters: the legacy contract — results and
        # worker count, no supervision machinery involved.
        results, used = map_tasks(square, TASKS, 2, what="squares")
        assert results == EXPECTED
        assert used == 2
