"""Partitioning engine tests: workload, communication, engine loop."""

import pytest

from repro.analysis import WeightModel
from repro.partition import (
    ApplicationWorkload,
    BlockWorkload,
    EngineConfig,
    PartitioningEngine,
    kernel_communication,
    partition_application,
    total_communication_cycles,
    workload_from_cdfg,
)
from repro.analysis import profile_cdfg
from repro.ir import cdfg_from_source
from repro.platform import Interconnect, SharedMemory, paper_platform
from repro.workloads import SyntheticBlockProfile, generate_dfg, make_profile


def block(bb_id, freq, weight, **kwargs):
    profile = make_profile(bb_id, freq, weight, **kwargs)
    return BlockWorkload(
        bb_id=bb_id,
        exec_freq=freq,
        dfg=generate_dfg(profile),
        comm_words_in=profile.live_in_words,
        comm_words_out=profile.live_out_words,
    )


@pytest.fixture
def tiny_workload():
    return ApplicationWorkload(
        name="tiny",
        blocks=[
            block(1, 500, 40, mul_fraction=0.4, width=2.0),
            block(2, 300, 12),
            block(3, 50, 6),
        ],
    )


class TestWorkload:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ApplicationWorkload(
                name="dup", blocks=[block(1, 1, 3), block(1, 2, 4)]
            )

    def test_block_lookup(self, tiny_workload):
        assert tiny_workload.block(2).exec_freq == 300
        with pytest.raises(KeyError):
            tiny_workload.block(9)

    def test_kernel_ordering(self, tiny_workload):
        model = WeightModel()
        order = [b.bb_id for b in tiny_workload.kernel_candidates(model)]
        assert order == [1, 2, 3]  # 20000 > 3600 > 300

    def test_analysis_rows_shape(self, tiny_workload):
        rows = tiny_workload.analysis_rows(WeightModel(), 2)
        assert rows[0] == (1, 500, 40, 20000)

    def test_iterations_map(self, tiny_workload):
        assert tiny_workload.iterations() == {1: 500, 2: 300, 3: 50}

    def test_from_cdfg_excludes_unexecuted(self):
        src = """
        int f(int x) {
            int s = 0;
            for (int i = 0; i < x; i++) { s += i * i; }
            if (x < 0) { s = -s; }
            return s;
        }
        """
        cdfg = cdfg_from_source(src)
        profile = profile_cdfg(cdfg, "f", 10)
        workload = workload_from_cdfg(cdfg, profile, "app")
        ids = {b.bb_id for b in workload.blocks}
        then_id = next(
            b.bb_id for b in cdfg.all_blocks() if "then" in b.label
        )
        assert then_id not in ids  # x<0 branch never ran

    def test_from_cdfg_kernels_in_loops(self):
        src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }"
        cdfg = cdfg_from_source(src)
        workload = workload_from_cdfg(cdfg, profile_cdfg(cdfg, "f", 5), "app")
        kernels = workload.kernel_candidates(WeightModel())
        labels = {cdfg.key_for_id(k.bb_id).label for k in kernels}
        assert all("while" in lab for lab in labels)

    def test_negative_freq_rejected(self):
        profile = make_profile(1, 1, 3)
        with pytest.raises(ValueError):
            BlockWorkload(bb_id=1, exec_freq=-1, dfg=generate_dfg(profile))


class TestCommunication:
    def test_per_invocation_cost(self):
        b = block(1, 10, 5, live=(3, 2))
        memory = SharedMemory(ports=2)
        net = Interconnect(setup_cycles=1)
        cost = kernel_communication(b, memory, net)
        # read ceil(3/2)=2 + write ceil(2/2)=1 + 2 bursts x setup 1 = 5
        assert cost.cycles_per_invocation == 5
        assert cost.total_cycles == 50

    def test_zero_words_only_pay_nothing(self):
        profile = SyntheticBlockProfile(
            bb_id=5, exec_freq=10, alu_ops=3, mul_ops=0,
            live_in_words=0, live_out_words=0,
        )
        b = BlockWorkload(
            bb_id=5, exec_freq=10, dfg=generate_dfg(profile),
            comm_words_in=0, comm_words_out=0,
        )
        cost = kernel_communication(b, SharedMemory(), Interconnect())
        assert cost.total_cycles == 0

    def test_total_aggregation(self):
        b1 = block(1, 10, 5)
        b2 = block(2, 5, 5)
        memory, net = SharedMemory(), Interconnect(setup_cycles=0)
        costs = [
            kernel_communication(b1, memory, net),
            kernel_communication(b2, memory, net),
        ]
        assert total_communication_cycles(costs) == sum(
            c.total_cycles for c in costs
        )


class TestEngine:
    def test_initial_cycles_stable(self, tiny_workload):
        engine = PartitioningEngine(tiny_workload, paper_platform(1500, 2))
        assert engine.initial_cycles() == engine.initial_cycles()

    def test_constraint_already_met_moves_nothing(self, tiny_workload):
        engine = PartitioningEngine(tiny_workload, paper_platform(1500, 2))
        initial = engine.initial_cycles()
        result = engine.run(initial + 1)
        assert result.constraint_met
        assert result.moved_bb_ids == []
        assert result.final_cycles == initial

    def test_moves_heaviest_first(self, tiny_workload):
        engine = PartitioningEngine(tiny_workload, paper_platform(1500, 2))
        result = engine.run(1)  # unreachable constraint -> move all
        assert result.moved_bb_ids == [1, 2, 3]
        assert not result.constraint_met

    def test_stops_at_constraint(self, tiny_workload):
        engine = PartitioningEngine(tiny_workload, paper_platform(1500, 2))
        all_moved = engine.run(1)
        # pick a constraint met after the first move
        first_total = all_moved.steps[0].total_cycles
        result = PartitioningEngine(
            tiny_workload, paper_platform(1500, 2)
        ).run(first_total)
        assert result.moved_bb_ids == [1]
        assert result.constraint_met

    def test_steps_recorded_monotone_totals(self, tiny_workload):
        engine = PartitioningEngine(tiny_workload, paper_platform(1500, 2))
        result = engine.run(1)
        assert len(result.steps) == 3
        totals = [s.total_cycles for s in result.steps]
        assert totals == sorted(totals, reverse=True)

    def test_eq2_consistency(self, tiny_workload):
        """final = t_FPGA + t_coarse + t_comm (within rounding)."""
        engine = PartitioningEngine(tiny_workload, paper_platform(1500, 2))
        result = engine.run(1)
        recomposed = (
            result.fpga_cycles + result.cycles_in_cgc + result.comm_cycles
        )
        assert abs(recomposed - result.final_cycles) <= 3  # ceil rounding

    def test_max_kernels_config(self, tiny_workload):
        config = EngineConfig(max_kernels_moved=1)
        engine = PartitioningEngine(
            tiny_workload, paper_platform(1500, 2), config=config
        )
        result = engine.run(1)
        assert len(result.moved_bb_ids) == 1

    def test_reduction_percent(self, tiny_workload):
        result = partition_application(
            tiny_workload, paper_platform(1500, 2), 1
        )
        expected = 100.0 * (result.initial_cycles - result.final_cycles) / (
            result.initial_cycles
        )
        assert result.reduction_percent == pytest.approx(expected)

    def test_invalid_constraint(self, tiny_workload):
        engine = PartitioningEngine(tiny_workload, paper_platform(1500, 2))
        with pytest.raises(ValueError):
            engine.run(0)

    def test_unsupported_kernel_skipped(self):
        # A DFG with a DIV cannot run on the CGC; engine should skip it.
        src = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += 100 / i; } return s; }"
        cdfg = cdfg_from_source(src)
        workload = workload_from_cdfg(cdfg, profile_cdfg(cdfg, "f", 10), "div")
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        result = engine.run(1)
        assert result.skipped_bb_ids

    def test_unsupported_kernel_raises_when_strict(self):
        src = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) { s += 100 / i; } return s; }"
        cdfg = cdfg_from_source(src)
        workload = workload_from_cdfg(cdfg, profile_cdfg(cdfg, "f", 10), "div")
        config = EngineConfig(skip_unsupported_kernels=False)
        engine = PartitioningEngine(
            workload, paper_platform(1500, 2), config=config
        )
        with pytest.raises(ValueError):
            engine.run(1)

    def test_sweep_shares_cache(self, tiny_workload):
        engine = PartitioningEngine(tiny_workload, paper_platform(1500, 2))
        results = engine.sweep([1, 10**9])
        assert not results[0].constraint_met or results[0].moved_bb_ids
        assert results[1].constraint_met and results[1].moved_bb_ids == []

    def test_result_table_row(self, tiny_workload):
        result = partition_application(
            tiny_workload, paper_platform(1500, 2), 1
        )
        row = result.table_row()
        assert set(row) == {
            "initial_cycles",
            "cycles_in_cgc",
            "bb_no",
            "final_cycles",
            "reduction_percent",
        }

    def test_summary_readable(self, tiny_workload):
        result = partition_application(
            tiny_workload, paper_platform(1500, 2), 1
        )
        text = result.summary()
        assert "tiny" in text and "BBs moved" in text
