"""Tests for the greedy-move revert fix, the single-rounding invariant,
and the incremental-vs-full-rescan differential."""

import pytest

from repro.partition import (
    ApplicationWorkload,
    BlockWorkload,
    EngineConfig,
    PartitioningEngine,
    PartitionStep,
)
from repro.platform import paper_platform
from repro.workloads import generate_dfg, make_profile, synthetic_application


def block(bb_id, freq, weight, **kwargs):
    profile = make_profile(bb_id, freq, weight, **kwargs)
    return BlockWorkload(
        bb_id=bb_id,
        exec_freq=freq,
        dfg=generate_dfg(profile),
        comm_words_in=profile.live_in_words,
        comm_words_out=profile.live_out_words,
    )


@pytest.fixture
def regressing_workload():
    """The top-weight kernel transfers so much data that moving it to the
    CGC costs more in communication than it saves in FPGA time."""
    return ApplicationWorkload(
        name="regressing",
        blocks=[
            block(1, 2000, 10, live=(200, 200)),  # top weight 20000, bad move
            block(2, 400, 40, mul_fraction=0.4),  # weight 16000, good move
            block(3, 100, 8),
        ],
    )


class TestRegressingMoveRevert:
    def test_bad_move_is_reverted(self, regressing_workload):
        engine = PartitioningEngine(regressing_workload, paper_platform(1500, 2))
        result = engine.run(1)  # unreachable constraint -> tries every kernel
        assert 1 in result.reverted_bb_ids
        assert 1 not in result.moved_bb_ids
        assert result.final_cycles <= result.initial_cycles
        assert result.reduction_percent >= 0.0

    def test_totals_never_regress(self, regressing_workload):
        engine = PartitioningEngine(regressing_workload, paper_platform(1500, 2))
        result = engine.run(1)
        totals = [result.initial_cycles] + [s.total_cycles for s in result.steps]
        assert totals == sorted(totals, reverse=True)

    def test_commit_always_ablation_restores_seed_behaviour(
        self, regressing_workload
    ):
        config = EngineConfig(allow_regressing_moves=True)
        engine = PartitioningEngine(
            regressing_workload, paper_platform(1500, 2), config=config
        )
        result = engine.run(1)
        # The literal Figure 2 loop commits the bad move and pays for it.
        assert result.moved_bb_ids[0] == 1
        assert result.reverted_bb_ids == []
        assert result.final_cycles > result.initial_cycles
        assert result.reduction_percent < 0.0

    def test_full_rescan_mode_also_reverts(self, regressing_workload):
        config = EngineConfig(incremental=False)
        engine = PartitioningEngine(
            regressing_workload, paper_platform(1500, 2), config=config
        )
        result = engine.run(1)
        assert 1 in result.reverted_bb_ids
        assert result.final_cycles <= result.initial_cycles

    def test_paper_workloads_never_regress(self, ofdm, jpeg):
        for workload in (ofdm, jpeg):
            result = PartitioningEngine(
                workload, paper_platform(1500, 2)
            ).run(1)
            assert result.final_cycles <= result.initial_cycles
            assert result.reduction_percent >= 0.0

    def test_stats_count_reverts(self, regressing_workload):
        engine = PartitioningEngine(regressing_workload, paper_platform(1500, 2))
        result = engine.run(1)
        assert engine.stats.moves_reverted == len(result.reverted_bb_ids) > 0
        assert engine.stats.moves_committed == len(result.moved_bb_ids)


class TestComponentRounding:
    def test_inconsistent_step_rejected(self):
        with pytest.raises(ValueError):
            PartitionStep(1, 2, 3, 4, 10, True)  # 2+3+4 != 10

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_components_sum_exactly_across_random_workloads(self, seed):
        workload = synthetic_application(
            20, seed=seed, comm_intensity=0.9, kernel_fraction=0.6
        )
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        initial = engine.initial_cycles()
        for constraint in (1, initial // 2, (initial * 9) // 10):
            result = engine.run(max(1, constraint))
            for step in result.steps:
                assert (
                    step.fpga_cycles + step.cgc_fpga_cycles + step.comm_cycles
                    == step.total_cycles
                )
            assert (
                result.fpga_cycles + result.cycles_in_cgc + result.comm_cycles
                == result.final_cycles
            )
            result.validate()

    def test_eq2_recomposition_exact_on_paper_workload(self, ofdm):
        result = PartitioningEngine(ofdm, paper_platform(1500, 2)).run(1)
        assert (
            result.fpga_cycles + result.cycles_in_cgc + result.comm_cycles
            == result.final_cycles
        )


class TestIncrementalDifferential:
    @pytest.mark.parametrize("allow_regressing", [False, True])
    def test_identical_results_on_paper_workloads(
        self, ofdm, jpeg, allow_regressing
    ):
        for workload in (ofdm, jpeg):
            for afpga, cgc_count in ((1500, 2), (5000, 3)):
                platform = paper_platform(afpga, cgc_count)
                inc = PartitioningEngine(
                    workload,
                    platform,
                    config=EngineConfig(
                        incremental=True,
                        allow_regressing_moves=allow_regressing,
                    ),
                )
                full = PartitioningEngine(
                    workload,
                    platform,
                    config=EngineConfig(
                        incremental=False,
                        allow_regressing_moves=allow_regressing,
                    ),
                )
                initial = inc.initial_cycles()
                constraints = [1, initial // 2, (initial * 3) // 4, initial * 2]
                assert inc.sweep(constraints) == full.sweep(constraints)

    def test_incremental_needs_fewer_evaluations(self, ofdm):
        platform = paper_platform(1500, 2)
        inc = PartitioningEngine(ofdm, platform)
        full = PartitioningEngine(
            ofdm, platform, config=EngineConfig(incremental=False)
        )
        initial = inc.initial_cycles()
        constraints = [1, initial // 2, (initial * 3) // 4]
        inc.sweep(constraints)
        full.sweep(constraints)
        # Contributions are computed once per block either way (the
        # evaluation counter tracks cache misses); the rescan blow-up
        # shows in how often the aggregation *consults* the model.
        assert (
            full.stats.contribution_lookups
            > 5 * inc.stats.contribution_lookups
        )
        assert (
            full.stats.block_cost_evaluations
            == inc.stats.block_cost_evaluations
        )

    def test_strict_mode_raises_consistently_on_retry(self):
        from repro.analysis import profile_cdfg
        from repro.ir import cdfg_from_source
        from repro.partition import workload_from_cdfg

        src = (
            "int f(int n) { int s = 0; "
            "for (int i = 1; i <= n; i++) { s += 100 / i; } return s; }"
        )
        cdfg = cdfg_from_source(src)
        workload = workload_from_cdfg(cdfg, profile_cdfg(cdfg, "f", 10), "div")
        engine = PartitioningEngine(
            workload,
            paper_platform(1500, 2),
            config=EngineConfig(skip_unsupported_kernels=False),
        )
        with pytest.raises(ValueError):
            engine.run(1)
        # The unsupported kernel must still be pending: retrying raises
        # again instead of silently dropping it from the trajectory.
        with pytest.raises(ValueError):
            engine.run(1)

    def test_sweep_warm_starts_from_cached_trajectory(self, ofdm):
        engine = PartitioningEngine(ofdm, paper_platform(1500, 2))
        first = engine.run(1)  # builds the whole trajectory
        evals_after_first = engine.stats.block_cost_evaluations
        second = engine.run(first.initial_cycles // 2)
        # Replay costs zero new block-cost evaluations.
        assert engine.stats.block_cost_evaluations == evals_after_first
        assert engine.stats.warm_started_runs >= 1
        fresh = PartitioningEngine(ofdm, paper_platform(1500, 2)).run(
            first.initial_cycles // 2
        )
        assert second == fresh
