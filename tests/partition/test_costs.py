"""Tests for the shared incremental cost substrate (CostModel/CostState)
and the EngineConfig freeze-after-run contract."""

import pytest

from repro.partition import (
    CostModel,
    CostState,
    EngineConfig,
    PartitioningEngine,
)
from repro.platform import paper_platform
from repro.workloads import synthetic_application


@pytest.fixture(scope="module")
def workload():
    return synthetic_application(
        15, seed=4, comm_intensity=0.7, kernel_fraction=0.8
    )


@pytest.fixture(scope="module")
def model(workload):
    return CostModel(workload, paper_platform(1500, 2))


class TestCostModel:
    def test_initial_ticks_match_full_sum(self, workload, model):
        expected = sum(
            model.contribution(block).fpga_ticks for block in workload.blocks
        )
        assert model.initial_ticks() == expected

    def test_contribution_cached_but_counted(self, workload, model):
        before_lookups = model.stats.contribution_lookups
        before_evals = model.stats.block_cost_evaluations
        mapped = model.stats.blocks_mapped
        block = workload.blocks[0]
        model.contribution(block)
        model.contribution(block)
        # Every call counts as a lookup; evaluation/mapping happen at
        # most once (cache hits must not inflate the evaluation count).
        assert model.stats.contribution_lookups == before_lookups + 2
        assert model.stats.block_cost_evaluations <= before_evals + 1
        assert model.stats.blocks_mapped <= mapped + 1

    def test_cache_hits_do_not_count_as_evaluations(self, workload):
        from repro.partition import CostModel
        from repro.platform import paper_platform

        fresh = CostModel(workload, paper_platform(1500, 2))
        block = workload.blocks[0]
        for _ in range(5):
            fresh.contribution(block)
        assert fresh.stats.contribution_lookups == 5
        assert fresh.stats.block_cost_evaluations == 1
        assert fresh.stats.blocks_mapped == 1

    def test_split_ticks_components_sum(self, model):
        for ticks in ((10, 11, 12), (1, 1, 1), (0, 0, 5), (7, 0, 0)):
            fpga, cgc, comm, total = model.split_ticks(*ticks)
            assert fpga + cgc + comm == total
            assert total == model.ticks_to_cycles(sum(ticks))

    def test_rows_metric_populated(self, workload, model):
        rows = [
            model.contribution(b).cgc_rows
            for b in workload.blocks
            if model.contribution(b).supported
        ]
        assert rows and all(r >= 1 for r in rows)


class TestCostState:
    def test_apply_revert_round_trip(self, workload, model):
        state = CostState(model)
        start = state.ticks
        kernel = next(
            b
            for b in model.kernel_candidates()
            if model.contribution(b).supported
        )
        delta = state.apply_move(kernel.bb_id)
        assert state.total_ticks == model.initial_ticks() + delta
        assert kernel.bb_id in state.moved
        state.revert_move(kernel.bb_id)
        assert state.ticks == start
        assert not state.moved

    def test_propose_matches_apply(self, model):
        state = CostState(model)
        kernel = next(
            b
            for b in model.kernel_candidates()
            if model.contribution(b).supported
        )
        proposed = state.propose_move(kernel.bb_id)
        assert state.apply_move(kernel.bb_id) == proposed
        # Toggling back is the exact negation.
        assert state.propose_move(kernel.bb_id) == -proposed

    def test_double_apply_rejected(self, model):
        state = CostState(model)
        kernel = next(
            b
            for b in model.kernel_candidates()
            if model.contribution(b).supported
        )
        state.apply_move(kernel.bb_id)
        with pytest.raises(ValueError):
            state.apply_move(kernel.bb_id)

    def test_revert_unmoved_rejected(self, model):
        with pytest.raises(ValueError):
            CostState(model).revert_move(999)

    def test_incremental_matches_rescan(self, workload, model):
        """Applying moves one by one equals recomputing from scratch."""
        state = CostState(model)
        supported = [
            b.bb_id
            for b in model.kernel_candidates()
            if model.contribution(b).supported
        ]
        for bb_id in supported:
            state.apply_move(bb_id)
        fpga = sum(
            model.contribution(b).fpga_ticks
            for b in workload.blocks
            if b.bb_id not in state.moved
        )
        cgc = sum(
            model.contribution_by_id(b).cgc_ticks for b in state.moved
        )
        comm = sum(
            model.contribution_by_id(b).comm_ticks for b in state.moved
        )
        assert state.ticks == (fpga, cgc, comm)

    def test_rows_used_is_max_over_moved(self, model):
        state = CostState(model)
        assert state.cgc_rows_used() == 0
        rows = []
        for kernel in model.kernel_candidates():
            if model.contribution(kernel).supported:
                state.apply_move(kernel.bb_id)
                rows.append(model.contribution(kernel).cgc_rows)
        assert state.cgc_rows_used() == max(rows)


class TestEngineConfigFreeze:
    def test_mutation_after_run_raises(self, workload):
        engine = PartitioningEngine(
            workload, paper_platform(1500, 2), config=EngineConfig()
        )
        engine.run(1)
        engine.config.stop_at_constraint = False
        with pytest.raises(ValueError, match="mutated"):
            engine.run(1)

    def test_mutation_after_initial_cycles_raises(self, workload):
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        engine.initial_cycles()
        engine.config.charge_single_partition_reconfig = True
        with pytest.raises(ValueError, match="mutated"):
            engine.run(1)

    def test_mutation_before_first_run_allowed(self, workload):
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        engine.config.max_kernels_moved = 1
        result = engine.run(1)
        assert result.kernels_moved <= 1

    def test_repeat_runs_with_unchanged_config_fine(self, workload):
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        first = engine.run(1)
        second = engine.run(1)
        assert first == second

    def test_reverting_the_mutation_unfreezes(self, workload):
        """Equality, not identity: restoring the original values makes
        the config acceptable again."""
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        engine.run(1)
        engine.config.stop_at_constraint = False
        engine.config.stop_at_constraint = True
        engine.run(1)  # does not raise
