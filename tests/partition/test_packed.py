"""Tests for the packed cost-table substrate (repro.partition.packed).

The contract under test: a :class:`PackedCostTable` derived from a
:class:`CostModel` is *bit-identical* to it — same Eq. 2 terms, same
candidate order, same tick arithmetic, same single-rounding cycle
split — so the search layer can swap substrates without changing a
single reported number.
"""

import pickle

import pytest

from repro.analysis.weights import WeightModel
from repro.partition import (
    CostModel,
    CostState,
    PackedCostTable,
    PackedGreedyTrajectory,
    PackedVisitLog,
)
from repro.partition.trajectory import GreedyTrajectory
from repro.platform import paper_platform
from repro.workloads import synthetic_application


@pytest.fixture(scope="module")
def workload():
    return synthetic_application(
        15, seed=4, comm_intensity=0.7, kernel_fraction=0.8
    )


@pytest.fixture(scope="module")
def model(workload):
    return CostModel(workload, paper_platform(1500, 2))


@pytest.fixture(scope="module")
def table(model):
    return PackedCostTable.from_model(model)


class TestTableDerivation:
    def test_columns_match_contributions(self, model, table):
        """Every column is the model's own BlockContribution ints."""
        weight_model = WeightModel()
        candidates = model.kernel_candidates(weight_model)
        expected_supported = [
            k for k in candidates if model.contribution(k).supported
        ]
        assert table.bb_ids == tuple(k.bb_id for k in expected_supported)
        for index, kernel in enumerate(expected_supported):
            contribution = model.contribution(kernel)
            assert table.fpga_ticks[index] == contribution.fpga_ticks
            assert table.cgc_ticks[index] == contribution.cgc_ticks
            assert table.comm_ticks[index] == contribution.comm_ticks
            assert table.move_delta[index] == contribution.move_delta
            assert table.cgc_rows[index] == contribution.cgc_rows
            assert table.weights[index] == kernel.total_weight(weight_model)

    def test_candidate_order_interleaves_unsupported(self, model, table):
        candidates = model.kernel_candidates(WeightModel())
        assert [bb for bb, _ in table.candidates] == [
            k.bb_id for k in candidates
        ]
        assert table.skipped_bb_ids == tuple(
            k.bb_id
            for k in candidates
            if not model.contribution(k).supported
        )
        for bb_id, index in table.candidates:
            if index >= 0:
                assert table.bb_ids[index] == bb_id
            else:
                assert bb_id in table.skipped_bb_ids

    def test_initial_ticks_and_cycles(self, model, table):
        assert table.initial_ticks == model.initial_ticks()
        assert table.initial_cycles() == model.initial_cycles()
        assert table.clock_ratio == model.platform.clock_ratio

    def test_names(self, model, table):
        assert table.workload_name == model.workload.name
        assert table.platform_name == model.platform.name


class TestTableArithmetic:
    def test_split_ticks_parity(self, model, table):
        for ticks in (
            (10, 11, 12), (1, 1, 1), (0, 0, 5), (7, 0, 0),
            (123456, 789, 10111), (2, 2, 2), (0, 0, 0),
        ):
            assert table.split_ticks(*ticks) == model.split_ticks(*ticks)

    def test_ticks_to_cycles_parity(self, model, table):
        for ticks in (0, 1, 2, 3, 4, 7, 999, 1000, 12345):
            assert table.ticks_to_cycles(ticks) == model.ticks_to_cycles(
                ticks
            )

    @pytest.mark.parametrize("mask_seed", [1, 7, 42])
    def test_mask_ticks_match_cost_state(self, model, table, mask_seed):
        """Pseudo-random subsets price identically on both substrates."""
        import random

        rng = random.Random(mask_seed)
        mask = rng.randrange(1 << len(table))
        state = CostState(model)
        for bb_id in table.bb_ids_of(mask):
            state.apply_move(bb_id)
        assert table.ticks_of(mask) == state.ticks
        assert table.total_ticks_of(mask) == state.total_ticks
        assert table.rows_used(mask) == state.cgc_rows_used()

    def test_mask_round_trip(self, table):
        subset = table.bb_ids[::2]
        mask = table.mask_of(subset)
        assert table.bb_ids_of(mask) == tuple(sorted(subset))

    def test_mask_of_rejects_unknown_kernels(self, table):
        with pytest.raises(KeyError):
            table.mask_of([999_999])


class TestRowMasks:
    def test_row_masks_cover_every_kernel(self, table):
        combined = 0
        for _, row_mask in table.row_masks:
            assert combined & row_mask == 0  # exact-value masks disjoint
            combined |= row_mask
        assert combined == (1 << len(table)) - 1

    def test_rows_used_is_max_over_mask(self, table):
        full = (1 << len(table)) - 1
        assert table.rows_used(full) == max(table.cgc_rows, default=0)
        assert table.rows_used(0) == 0
        for index in range(len(table)):
            assert table.rows_used(1 << index) == table.cgc_rows[index]


class TestPickling:
    def test_pickle_round_trip(self, table):
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table
        assert clone.bb_ids_of(5) == table.bb_ids_of(5)
        assert clone.rows_used(5) == table.rows_used(5)

    def test_pickle_is_small(self, table, workload):
        """The point of shipping tables between processes: a table is
        orders of magnitude smaller than its workload's DFGs."""
        assert len(pickle.dumps(table)) < len(pickle.dumps(workload)) / 10


class TestPackedState:
    def test_toggle_round_trip(self, table):
        state = table.state()
        start = state.ticks
        delta = state.toggle(0)
        assert delta == table.move_delta[0]
        assert state.mask == 1
        assert state.moved_count == 1
        assert state.total_ticks == table.initial_ticks + delta
        assert state.propose(0) == -delta
        state.toggle(0)
        assert state.ticks == start
        assert state.mask == 0 and state.moved_count == 0


class TestVisitLog:
    def test_record_deduplicates(self):
        log = PackedVisitLog()
        log.record(100, 0b1)
        log.record(100, 0b1)
        log.record(90, 0b11)
        assert len(log) == 2
        assert list(log.entries()) == [(100, 0b1), (90, 0b11)]

    def test_record_unchecked_bypasses_dedup(self):
        log = PackedVisitLog()
        log.record_unchecked(1, 0b1)
        log.record_unchecked(1, 0b1)
        assert len(log) == 2

    def test_drop_visits_folds_existing_columns(self, table):
        """Reducing a log mid-stream loses nothing the Pareto sweep
        needs: the reduction of (full columns, then fold) equals the
        reduction of recording everything in reduced mode."""
        from repro.search.pareto import reduce_columns_to_best

        masks = [0, 0b1, 0b10, 0b11, 0b101]
        ticks = [table.total_ticks_of(mask) for mask in masks]
        mixed = PackedVisitLog()
        for total, mask in zip(ticks[:3], masks[:3], strict=True):
            mixed.record(total, mask)
        mixed.drop_visits(table)
        mixed.drop_visits(table)  # idempotent
        for total, mask in zip(ticks[3:], masks[3:], strict=True):
            mixed.record(total, mask)
        reduced = PackedVisitLog()
        reduced.drop_visits(table)
        for total, mask in zip(ticks, masks, strict=True):
            reduced.record(total, mask)
        expected = reduce_columns_to_best(ticks, masks, table)
        assert mixed.best_by_shape == expected
        assert reduced.best_by_shape == expected
        assert len(mixed) == len(reduced) == len(masks)
        assert mixed.ticks == [] and mixed.masks == []

    def test_reduced_mode_still_deduplicates(self, table):
        log = PackedVisitLog()
        log.drop_visits(table)
        log.record(table.total_ticks_of(0b1), 0b1)
        log.record(table.total_ticks_of(0b1), 0b1)
        log.record_unchecked(table.total_ticks_of(0b10), 0b10)
        assert len(log) == 2

    def test_reduced_mode_entries_raise(self, table):
        log = PackedVisitLog()
        log.drop_visits(table)
        log.record(table.total_ticks_of(0b1), 0b1)
        with pytest.raises(ValueError, match="reduced mode"):
            log.entries()

    def test_absorb_columns_in_both_modes(self, table):
        ticks = [table.total_ticks_of(mask) for mask in (0b1, 0b11)]
        full = PackedVisitLog()
        full.absorb_columns(ticks, [0b1, 0b11])
        assert list(full.entries()) == list(zip(ticks, [0b1, 0b11]))
        reduced = PackedVisitLog()
        reduced.drop_visits(table)
        reduced.absorb_columns(ticks, [0b1, 0b11])
        assert len(reduced) == 2
        assert reduced.best_by_shape

    def test_absorb_reduced_merges_shard_summaries(self, table):
        """Two shards reduced independently then merged equal one log
        that saw every visit — the fold is order-independent."""
        masks = [0b1, 0b10, 0b11, 0b100, 0b110]
        ticks = [table.total_ticks_of(mask) for mask in masks]
        whole = PackedVisitLog()
        whole.drop_visits(table)
        for total, mask in zip(ticks, masks, strict=True):
            whole.record_unchecked(total, mask)
        merged = PackedVisitLog()
        merged.drop_visits(table)
        for lo, hi in ((0, 2), (2, 5)):
            shard = PackedVisitLog()
            shard.drop_visits(table)
            for total, mask in zip(
                ticks[lo:hi], masks[lo:hi], strict=True
            ):
                shard.record_unchecked(total, mask)
            merged.absorb_reduced(
                shard.visit_count, shard.best_by_shape.items()
            )
        assert merged.best_by_shape == whole.best_by_shape
        assert len(merged) == len(whole) == len(masks)

    def test_absorb_reduced_requires_reduced_mode(self):
        log = PackedVisitLog()
        with pytest.raises(ValueError, match="drop_visits"):
            log.absorb_reduced(1, [((1, 1), (10, 0b1))])


class TestPackedGreedyTrajectory:
    def test_entries_match_object_trajectory(self, model, table):
        packed = PackedGreedyTrajectory(table)
        reference = GreedyTrajectory(model, WeightModel())
        assert list(packed.iter_entries()) == list(
            reference.iter_entries()
        )

    def test_masks_track_moved_prefixes(self, table):
        trajectory = PackedGreedyTrajectory(table)
        moved_mask = 0
        for entry, mask in zip(
            trajectory.iter_entries(), trajectory.masks, strict=False
        ):
            if entry.action == "moved":
                moved_mask |= 1 << table.index_of(entry.bb_id)
            assert mask == moved_mask

    def test_strict_mode_raises_lazily(self):
        from repro.analysis import profile_cdfg
        from repro.ir import cdfg_from_source
        from repro.partition import workload_from_cdfg

        src = (
            "int f(int n) { int s = 0; "
            "for (int i = 1; i <= n; i++) { s += 100 / i; } return s; }"
        )
        cdfg = cdfg_from_source(src)
        div_workload = workload_from_cdfg(
            cdfg, profile_cdfg(cdfg, "f", 10), "div"
        )
        div_model = CostModel(div_workload, paper_platform(1500, 2))
        div_table = PackedCostTable.from_model(div_model)
        trajectory = PackedGreedyTrajectory(
            div_table, skip_unsupported_kernels=False
        )
        with pytest.raises(ValueError, match="cannot execute"):
            list(trajectory.iter_entries())
        # The offender stays pending: a retry raises identically.
        with pytest.raises(ValueError, match="cannot execute"):
            list(trajectory.iter_entries())
