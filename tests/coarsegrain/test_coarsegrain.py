"""CGC data-path tests: model, scheduler, binding, timing."""

import pytest

from repro.coarsegrain import (
    CGC,
    CGCDatapath,
    CGCGeometry,
    UnsupportedOperationError,
    bind_schedule,
    block_cgc_timing,
    cgc_node_executable,
    make_cgc_array,
    schedule_dfg,
    speedup_over_fpga,
    standard_datapath,
)
from repro.frontend.ast_nodes import Type
from repro.ir import (
    ArrayBase,
    BasicBlock,
    Const,
    DataFlowGraph,
    Instruction,
    Opcode,
    Temp,
)
from repro.platform import default_characterization
from repro.workloads import SyntheticBlockProfile, generate_dfg


def t(i):
    return Temp(i, Type.INT)


def make_dfg(instructions):
    block = BasicBlock("t")
    for ins in instructions:
        block.append(ins)
    block.append(Instruction(Opcode.RET))
    return DataFlowGraph(block)


def chain_dfg(n):
    ins = [Instruction(Opcode.ADD, dest=t(0), operands=(Const(1), Const(1)))]
    for i in range(1, n):
        ins.append(Instruction(Opcode.ADD, dest=t(i), operands=(t(i - 1), Const(1))))
    return make_dfg(ins)


def wide_dfg(n):
    return make_dfg(
        [
            Instruction(Opcode.ADD, dest=t(i), operands=(Const(i), Const(1)))
            for i in range(n)
        ]
    )


class TestModel:
    def test_geometry_node_count(self):
        assert CGCGeometry(2, 2).node_count == 4
        assert CGCGeometry(3, 4).node_count == 12

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CGCGeometry(0, 2)

    def test_chain_depth_is_rows(self):
        assert CGC(0, CGCGeometry(3, 2)).chain_depth == 3

    def test_make_array(self):
        cgcs = make_cgc_array(3)
        assert len(cgcs) == 3
        assert all(c.geometry == CGCGeometry(2, 2) for c in cgcs)

    def test_datapath_slots(self):
        assert standard_datapath(2).node_slots_per_cycle == 8
        assert standard_datapath(3).node_slots_per_cycle == 12

    def test_describe(self):
        assert standard_datapath(2).describe() == "two 2x2"
        assert standard_datapath(3).describe() == "three 2x2"

    def test_executable_classification(self):
        assert cgc_node_executable(Opcode.ADD)
        assert cgc_node_executable(Opcode.MUL)
        assert not cgc_node_executable(Opcode.DIV)
        assert not cgc_node_executable(Opcode.CALL)

    def test_unsupported_dfg_detected(self):
        dfg = make_dfg(
            [Instruction(Opcode.DIV, dest=t(0), operands=(Const(6), Const(2)))]
        )
        datapath = standard_datapath(2)
        assert not datapath.supports_dfg(dfg)
        with pytest.raises(UnsupportedOperationError):
            datapath.reject_unsupported(dfg)

    def test_invalid_datapath(self):
        with pytest.raises(ValueError):
            CGCDatapath(cgcs=[])
        with pytest.raises(ValueError):
            CGCDatapath(memory_ports=0)
        with pytest.raises(ValueError):
            CGCDatapath(memory_latency=0)


class TestScheduler:
    def test_single_op(self):
        schedule = schedule_dfg(wide_dfg(1), standard_datapath(2))
        assert schedule.makespan == 1

    def test_wide_dfg_limited_by_slots(self):
        # 16 independent ops on 8 slots => 2 cycles.
        schedule = schedule_dfg(wide_dfg(16), standard_datapath(2))
        assert schedule.makespan == 2

    def test_more_cgcs_help_wide_dfgs(self):
        two = schedule_dfg(wide_dfg(24), standard_datapath(2)).makespan
        three = schedule_dfg(wide_dfg(24), standard_datapath(3)).makespan
        assert three < two

    def test_chain_halved_by_chaining(self):
        # Chain of 10 dependent ops, chain depth 2 => 5 cycles.
        schedule = schedule_dfg(chain_dfg(10), standard_datapath(2))
        assert schedule.makespan == 5

    def test_deeper_rows_chain_more(self):
        deep = CGCDatapath(cgcs=make_cgc_array(1, rows=4, cols=2))
        schedule = schedule_dfg(chain_dfg(12), deep)
        assert schedule.makespan == 3

    def test_chain_stays_in_one_cgc(self):
        schedule = schedule_dfg(chain_dfg(10), standard_datapath(2))
        for src, dst in schedule.dfg.graph.edges():
            a, b = schedule.ops[src], schedule.ops[dst]
            if a.cycle == b.cycle:
                assert a.cgc_index == b.cgc_index

    def test_validate_accepts_all(self):
        for n in (1, 5, 9, 17):
            schedule_dfg(wide_dfg(n), standard_datapath(2)).validate()

    def test_memory_latency_respected(self):
        a = ArrayBase("g", Type.INT)  # shared
        dfg = make_dfg(
            [
                Instruction(Opcode.LOAD, dest=t(0), operands=(a, Const(0))),
                Instruction(Opcode.ADD, dest=t(1), operands=(t(0), Const(1))),
            ]
        )
        datapath = standard_datapath(2)  # latency 3
        schedule = schedule_dfg(dfg, datapath)
        load, add = schedule.ops[0], schedule.ops[1]
        assert add.cycle >= load.cycle + 3

    def test_local_memory_fast(self):
        a = ArrayBase("buf", Type.INT, local=True)
        dfg = make_dfg(
            [
                Instruction(Opcode.LOAD, dest=t(0), operands=(a, Const(0))),
                Instruction(Opcode.ADD, dest=t(1), operands=(t(0), Const(1))),
            ]
        )
        schedule = schedule_dfg(dfg, standard_datapath(2))
        assert schedule.ops[1].cycle == schedule.ops[0].cycle + 1

    def test_memory_port_contention(self):
        a = ArrayBase("g", Type.INT)
        loads = [
            Instruction(Opcode.LOAD, dest=t(i), operands=(a, Const(i)))
            for i in range(6)
        ]
        one_port = CGCDatapath(cgcs=make_cgc_array(2), memory_ports=1)
        two_ports = CGCDatapath(cgcs=make_cgc_array(2), memory_ports=2)
        slow = schedule_dfg(make_dfg(list(loads)), one_port).makespan
        fast = schedule_dfg(make_dfg(list(loads)), two_ports).makespan
        assert slow == 18 and fast == 9

    def test_mem_never_chains(self):
        schedule = schedule_dfg(
            generate_dfg(
                SyntheticBlockProfile(
                    bb_id=901, exec_freq=1, alu_ops=8, mul_ops=2,
                    load_ops=6, store_ops=2,
                )
            ),
            standard_datapath(2),
        )
        for op in schedule.ops.values():
            if op.unit == "mem":
                assert op.chain_depth == 0

    def test_moves_free(self):
        dfg = make_dfg(
            [
                Instruction(Opcode.ADD, dest=t(0), operands=(Const(1), Const(2))),
                Instruction(Opcode.COPY, dest=t(1), operands=(t(0),)),
                Instruction(Opcode.ADD, dest=t(2), operands=(t(1), Const(3))),
            ]
        )
        schedule = schedule_dfg(dfg, standard_datapath(2))
        # copy is transparent: chain of 2 computes + move fits in one cycle
        assert schedule.makespan == 1

    def test_empty_dfg(self):
        block = BasicBlock("e")
        block.append(Instruction(Opcode.RET))
        schedule = schedule_dfg(DataFlowGraph(block), standard_datapath(2))
        assert schedule.makespan == 0


class TestBinding:
    def test_bind_small(self):
        schedule = schedule_dfg(wide_dfg(6), standard_datapath(2))
        binding = bind_schedule(schedule)
        binding.validate()
        assert len(binding.node_bindings) == 6

    def test_no_double_booking(self):
        schedule = schedule_dfg(wide_dfg(16), standard_datapath(2))
        binding = bind_schedule(schedule)
        seen = set()
        for nb in binding.node_bindings.values():
            key = (nb.cycle, nb.cgc_index, nb.row, nb.col)
            assert key not in seen
            seen.add(key)

    def test_register_pressure_bounded(self):
        profile = SyntheticBlockProfile(
            bb_id=902, exec_freq=1, alu_ops=20, mul_ops=6,
            load_ops=8, store_ops=3, width=3.0,
        )
        schedule = schedule_dfg(generate_dfg(profile), standard_datapath(2))
        binding = bind_schedule(schedule)
        assert binding.registers.max_live <= 64

    def test_binding_matches_schedule_cgc(self):
        schedule = schedule_dfg(chain_dfg(8), standard_datapath(2))
        binding = bind_schedule(schedule)
        for node_id, nb in binding.node_bindings.items():
            assert nb.cgc_index == schedule.ops[node_id].cgc_index


class TestTiming:
    def test_block_timing_counts(self):
        profile = SyntheticBlockProfile(
            bb_id=903, exec_freq=1, alu_ops=10, mul_ops=5,
            load_ops=4, store_ops=2,
        )
        timing = block_cgc_timing(generate_dfg(profile), standard_datapath(2))
        assert timing.compute_ops == 15
        assert timing.memory_ops == 6
        assert timing.cgc_cycles >= 1

    def test_fpga_cycle_conversion(self):
        char = default_characterization()
        timing = block_cgc_timing(chain_dfg(6), standard_datapath(2))
        assert timing.fpga_cycles(char) == timing.cgc_cycles / 3

    def test_application_aggregation(self):
        from repro.coarsegrain import application_cgc_ticks

        timing = block_cgc_timing(chain_dfg(6), standard_datapath(2))
        assert application_cgc_ticks({1: timing}, {1: 7}) == timing.cgc_cycles * 7

    def test_speedup_helper(self):
        char = default_characterization()
        assert speedup_over_fpga(30, 30, char) == pytest.approx(3.0)
        assert speedup_over_fpga(10, 0, char) == float("inf")
