"""Property-based tests of the CGC list scheduler and binder."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coarsegrain import bind_schedule, schedule_dfg
from repro.coarsegrain.datapath import CGCDatapath
from repro.coarsegrain.cgc import make_cgc_array
from repro.workloads import SyntheticBlockProfile, generate_dfg

profiles = st.builds(
    SyntheticBlockProfile,
    bb_id=st.integers(1, 400),
    exec_freq=st.just(1),
    alu_ops=st.integers(1, 30),
    mul_ops=st.integers(0, 12),
    load_ops=st.integers(0, 14),
    store_ops=st.integers(0, 5),
    width=st.floats(1.0, 5.0),
    serial_memory=st.just(False),
)

serial_profiles = st.builds(
    SyntheticBlockProfile,
    bb_id=st.integers(1, 400),
    exec_freq=st.just(1),
    alu_ops=st.integers(1, 15),
    mul_ops=st.integers(0, 6),
    load_ops=st.integers(0, 12),
    store_ops=st.integers(1, 5),
    width=st.just(1.0),
    serial_memory=st.just(True),
)

datapaths = st.builds(
    CGCDatapath,
    cgcs=st.integers(1, 3).map(lambda n: make_cgc_array(n)),
    memory_ports=st.integers(1, 3),
    register_bank_size=st.just(256),
    memory_latency=st.integers(1, 4),
)


@settings(max_examples=40, deadline=None)
@given(profile=profiles, datapath=datapaths)
def test_schedule_always_legal(profile, datapath):
    """validate() (deps, chains, ports, slots) passes for every schedule."""
    schedule = schedule_dfg(generate_dfg(profile), datapath)
    schedule.validate()


@settings(max_examples=30, deadline=None)
@given(profile=serial_profiles, datapath=datapaths)
def test_schedule_legal_on_serial_blocks(profile, datapath):
    schedule = schedule_dfg(generate_dfg(profile), datapath)
    schedule.validate()


@settings(max_examples=30, deadline=None)
@given(profile=profiles, datapath=datapaths)
def test_binding_always_feasible(profile, datapath):
    """Every schedule binds onto physical nodes with no double booking."""
    schedule = schedule_dfg(generate_dfg(profile), datapath)
    binding = bind_schedule(schedule)
    binding.validate()


@settings(max_examples=30, deadline=None)
@given(profile=profiles)
def test_makespan_bounds(profile):
    """Makespan is at least the slot/critical-path lower bound and at most
    fully serial execution."""
    dfg = generate_dfg(profile)
    datapath = CGCDatapath(cgcs=make_cgc_array(2))
    schedule = schedule_dfg(dfg, datapath)
    compute = len([n for n in dfg.nodes if n.op_class.value in ("alu", "mul")])
    mem = len([n for n in dfg.nodes if n.op_class.value == "mem"])
    lower = max(
        -(-compute // datapath.node_slots_per_cycle),
        -(-mem // datapath.memory_ports) if mem else 0,
    )
    upper = compute + mem * datapath.memory_latency + 1
    assert lower <= schedule.makespan <= upper


@settings(max_examples=25, deadline=None)
@given(profile=profiles)
def test_more_resources_bounded_anomaly(profile):
    """Greedy list scheduling exhibits Graham's timing anomalies: adding a
    CGC can occasionally lengthen a schedule by spreading a chain across
    components.  The anomaly is bounded — the bigger data-path can never be
    worse than 2x the smaller one (Graham's factor for list scheduling) —
    and on average it helps (asserted deterministically elsewhere)."""
    dfg = generate_dfg(profile)
    small = CGCDatapath(cgcs=make_cgc_array(2), memory_ports=2)
    large = CGCDatapath(cgcs=make_cgc_array(3), memory_ports=3)
    small_makespan = schedule_dfg(dfg, small).makespan
    large_makespan = schedule_dfg(dfg, large).makespan
    assert large_makespan <= 2 * max(small_makespan, 1)
