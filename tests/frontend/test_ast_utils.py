"""AST utility tests: walkers, types, locations."""

import pytest

from repro.frontend import (
    ArrayType,
    BinaryExpr,
    CallExpr,
    SourceLocation,
    Type,
    parse_program,
    walk_expr,
    walk_stmt,
)
from repro.frontend.ast_nodes import unify_numeric


class TestTypes:
    def test_numeric_classification(self):
        assert Type.INT.is_numeric() and Type.FLOAT.is_numeric()
        assert not Type.VOID.is_numeric()

    def test_unify(self):
        assert unify_numeric(Type.INT, Type.INT) is Type.INT
        assert unify_numeric(Type.INT, Type.FLOAT) is Type.FLOAT
        assert unify_numeric(Type.FLOAT, Type.INT) is Type.FLOAT

    def test_array_type_size(self):
        assert ArrayType(Type.INT, (8,)).size == 8
        assert ArrayType(Type.FLOAT, (4, 8)).size == 32

    def test_array_type_validation(self):
        with pytest.raises(ValueError):
            ArrayType(Type.INT, ())
        with pytest.raises(ValueError):
            ArrayType(Type.INT, (0,))

    def test_array_type_str(self):
        assert str(ArrayType(Type.INT, (2, 3))) == "int[2][3]"


class TestWalkers:
    def test_walk_expr_visits_all(self):
        program = parse_program(
            "int f(int a, int b) { return a * (b + 1) - g(a, b); } "
            "int g(int a, int b) { return a; }"
        )
        ret = program.function("f").body.body[0]
        nodes = list(walk_expr(ret.value))
        assert sum(1 for n in nodes if isinstance(n, BinaryExpr)) == 3
        assert sum(1 for n in nodes if isinstance(n, CallExpr)) == 1

    def test_walk_stmt_visits_nested(self):
        program = parse_program(
            "void f(int n) { for (int i = 0; i < n; i++) { "
            "if (i) { do { n--; } while (n); } } }"
        )
        stmts = list(walk_stmt(program.function("f").body))
        kinds = {type(s).__name__ for s in stmts}
        assert {"ForStmt", "IfStmt", "DoWhileStmt"} <= kinds

    def test_locations_ordered(self):
        location_a = SourceLocation(1, 5, "x.c")
        location_b = SourceLocation(2, 1, "x.c")
        assert location_a < location_b
        assert str(location_a) == "x.c:1:5"
