"""Semantic analysis tests."""

import pytest

from repro.frontend import SemanticError, analyze_program, parse_program


def check(source):
    return analyze_program(parse_program(source))


def check_fails(source, fragment):
    with pytest.raises(SemanticError) as excinfo:
        check(source)
    assert fragment in str(excinfo.value)


class TestDeclarations:
    def test_valid_program_passes(self):
        bag = check("int f(int x) { int y = x + 1; return y; }")
        assert not bag.has_errors()

    def test_undeclared_name(self):
        check_fails("int f() { return missing; }", "undeclared")

    def test_duplicate_local(self):
        check_fails("void f() { int a = 1; int a = 2; }", "duplicate")

    def test_duplicate_function(self):
        check_fails("void f() {} void f() {}", "duplicate function")

    def test_shadowing_in_inner_scope_allowed(self):
        bag = check("void f() { int a = 1; { int a = 2; } }")
        assert not bag.has_errors()

    def test_declaration_scoped_to_block(self):
        check_fails("void f() { { int a = 1; } a = 2; }", "undeclared")

    def test_for_scope(self):
        check_fails(
            "void f() { for (int i = 0; i < 2; i++) { } i = 3; }",
            "undeclared",
        )

    def test_intrinsic_shadowing_rejected(self):
        check_fails("int abs(int x) { return x; }", "shadows an intrinsic")

    def test_global_visible_in_function(self):
        bag = check("int g = 4; int f() { return g; }")
        assert not bag.has_errors()

    def test_global_array_initializer_too_long(self):
        with pytest.raises(SemanticError):
            check("const int T[2] = {1, 2, 3};")


class TestAssignments:
    def test_const_assignment_rejected(self):
        check_fails(
            "const int G = 1; void f() { G = 2; }", "const"
        )

    def test_whole_array_assignment_rejected(self):
        check_fails("void f() { int a[4]; a = 3; }", "whole array")

    def test_array_element_assignment_ok(self):
        bag = check("void f() { int a[4]; a[0] = 3; }")
        assert not bag.has_errors()


class TestArrays:
    def test_index_count_mismatch(self):
        check_fails(
            "void f() { int a[2][2]; a[0] = 1; }", "expects 2 indices"
        )

    def test_scalar_indexed(self):
        check_fails("void f() { int a = 1; int b = a[0]; }", "scalar")

    def test_float_index_rejected(self):
        check_fails(
            "void f() { int a[4]; a[1.5] = 0; }", "integer"
        )


class TestCalls:
    def test_unknown_function(self):
        check_fails("void f() { g(); }", "undeclared function")

    def test_wrong_arity(self):
        check_fails(
            "int g(int a) { return a; } void f() { g(1, 2); }",
            "expects 1 argument",
        )

    def test_intrinsic_arity(self):
        check_fails("void f() { int a = abs(1, 2); }", "expects 1")

    def test_array_argument_ok(self):
        bag = check(
            "int g(int a[4]) { return a[0]; } "
            "void f() { int v[4]; g(v); }"
        )
        assert not bag.has_errors()

    def test_scalar_passed_as_array(self):
        check_fails(
            "int g(int a[4]) { return a[0]; } "
            "void f() { int x = 0; g(x); }",
            "array",
        )

    def test_expression_passed_as_array(self):
        check_fails(
            "int g(int a[4]) { return a[0]; } void f() { g(1 + 2); }",
            "whole arrays",
        )


class TestControlFlow:
    def test_break_outside_loop(self):
        check_fails("void f() { break; }", "outside")

    def test_continue_outside_loop(self):
        check_fails("void f() { continue; }", "outside")

    def test_break_inside_loop_ok(self):
        bag = check("void f() { while (1) { break; } }")
        assert not bag.has_errors()

    def test_continue_in_for_ok(self):
        bag = check("void f() { for (;;) { continue; } }")
        assert not bag.has_errors()


class TestReturns:
    def test_void_returning_value(self):
        check_fails("void f() { return 1; }", "void function")

    def test_nonvoid_bare_return(self):
        check_fails("int f() { return; }", "without a value")

    def test_missing_return_warns(self):
        bag = check("int f(int x) { if (x) { return 1; } }")
        assert bag.warnings
        assert "all paths" in str(bag.warnings[0])

    def test_both_branches_return_no_warning(self):
        bag = check(
            "int f(int x) { if (x) { return 1; } else { return 2; } }"
        )
        assert not bag.warnings


class TestTypes:
    def test_float_mod_rejected(self):
        check_fails("void f(float x) { float y = x % 2.0; }", "integer")

    def test_float_shift_rejected(self):
        check_fails("void f(float x) { float y = x << 1; }", "integer")

    def test_bitwise_not_on_float_rejected(self):
        check_fails("void f(float x) { int y = ~x; }", "integer")

    def test_mixed_arithmetic_promotes(self):
        bag = check("void f(int a, float b) { float c = a + b; }")
        assert not bag.has_errors()

    def test_comparison_yields_int(self):
        bag = check("void f(float a) { int c = a < 2.0; }")
        assert not bag.has_errors()
