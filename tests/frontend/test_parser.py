"""Parser unit tests."""

import pytest

from repro.frontend import (
    ArrayRef,
    ArrayType,
    AssignStmt,
    BinaryExpr,
    BinaryOp,
    BlockStmt,
    CallExpr,
    ConditionalExpr,
    DeclStmt,
    DoWhileStmt,
    ForStmt,
    IfStmt,
    IntLiteral,
    NameRef,
    ParserError,
    ReturnStmt,
    Type,
    UnaryExpr,
    UnaryOp,
    WhileStmt,
    parse_program,
)


def parse_stmt(body: str):
    program = parse_program(f"void f() {{ {body} }}")
    return program.function("f").body.body


def parse_expr(expr: str):
    stmts = parse_stmt(f"return_sink({expr});")
    # a call wrapper keeps any expression a valid statement
    call = stmts[0].expr
    return call.args[0]


# Wrap expressions in a declared call target to keep the parser happy.
def parse_expr_via_assign(expr: str):
    stmts = parse_stmt(f"int x_ = {expr};")
    return stmts[0].init


class TestTopLevel:
    def test_empty_program(self):
        program = parse_program("")
        assert program.functions == [] and program.globals == []

    def test_function_names(self):
        program = parse_program("void a() {} int b(int x) { return x; }")
        assert program.function_names == ["a", "b"]

    def test_void_param_list(self):
        program = parse_program("int f(void) { return 1; }")
        assert program.function("f").params == []

    def test_array_params(self):
        program = parse_program("void f(int a[8], float b[2][3]) {}")
        params = program.function("f").params
        assert params[0].param_type == ArrayType(Type.INT, (8,))
        assert params[1].param_type == ArrayType(Type.FLOAT, (2, 3))

    def test_unsized_array_param(self):
        program = parse_program("void f(int a[]) {}")
        assert isinstance(program.function("f").params[0].param_type, ArrayType)

    def test_global_scalar_with_init(self):
        program = parse_program("int g = 5;")
        decl = program.globals[0]
        assert decl.init_values == [5] and not decl.is_const

    def test_const_global_array(self):
        program = parse_program("const int T[3] = {1, -2, 3};")
        decl = program.globals[0]
        assert decl.is_const and decl.init_values == [1, -2, 3]

    def test_global_float_coerces_init(self):
        program = parse_program("const float F[2] = {1, 2.5};")
        assert program.globals[0].init_values == [1.0, 2.5]

    def test_trailing_comma_in_initializer(self):
        program = parse_program("const int T[2] = {1, 2,};")
        assert program.globals[0].init_values == [1, 2]

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParserError):
            parse_program("int g = 5")

    def test_garbage_top_level_raises(self):
        with pytest.raises(ParserError):
            parse_program("banana;")


class TestStatements:
    def test_declaration_with_init(self):
        stmt = parse_stmt("int a = 3;")[0]
        assert isinstance(stmt, DeclStmt)
        assert stmt.decl_type is Type.INT
        assert isinstance(stmt.init, IntLiteral)

    def test_local_array_declaration(self):
        stmt = parse_stmt("float buf[16];")[0]
        assert stmt.decl_type == ArrayType(Type.FLOAT, (16,))

    def test_local_array_initializer_rejected(self):
        with pytest.raises(ParserError):
            parse_stmt("int a[2] = 3;")

    def test_assignment(self):
        stmt = parse_stmt("int a = 0; a = 5;")[1]
        assert isinstance(stmt, AssignStmt)
        assert isinstance(stmt.target, NameRef)

    def test_compound_assignment_desugars(self):
        stmt = parse_stmt("int a = 0; a += 2;")[1]
        assert isinstance(stmt.value, BinaryExpr)
        assert stmt.value.op is BinaryOp.ADD

    def test_increment_desugars(self):
        stmt = parse_stmt("int a = 0; a++;")[1]
        assert isinstance(stmt, AssignStmt)
        assert stmt.value.op is BinaryOp.ADD
        assert stmt.value.right.value == 1

    def test_decrement_desugars(self):
        stmt = parse_stmt("int a = 0; a--;")[1]
        assert stmt.value.op is BinaryOp.SUB

    def test_array_store(self):
        stmt = parse_stmt("int a[4]; a[1] = 2;")[1]
        assert isinstance(stmt.target, ArrayRef)

    def test_two_dim_index(self):
        stmt = parse_stmt("int a[2][2]; a[1][0] = 3;")[1]
        assert len(stmt.target.indices) == 2

    def test_if_else(self):
        stmt = parse_stmt("if (1) { } else { }")[0]
        assert isinstance(stmt, IfStmt) and stmt.otherwise is not None

    def test_if_without_else(self):
        stmt = parse_stmt("if (1) { }")[0]
        assert stmt.otherwise is None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (1) if (2) { } else { }")[0]
        assert stmt.otherwise is None
        assert isinstance(stmt.then, IfStmt)
        assert stmt.then.otherwise is not None

    def test_while(self):
        stmt = parse_stmt("while (1) { }")[0]
        assert isinstance(stmt, WhileStmt)

    def test_do_while(self):
        stmt = parse_stmt("do { } while (0);")[0]
        assert isinstance(stmt, DoWhileStmt)

    def test_for_full_header(self):
        stmt = parse_stmt("for (int i = 0; i < 4; i++) { }")[0]
        assert isinstance(stmt, ForStmt)
        assert stmt.init is not None and stmt.cond is not None
        assert stmt.step is not None

    def test_for_empty_header(self):
        stmt = parse_stmt("for (;;) { break; }")[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_return_value(self):
        program = parse_program("int f() { return 3; }")
        stmt = program.function("f").body.body[0]
        assert isinstance(stmt, ReturnStmt) and stmt.value is not None

    def test_bare_return(self):
        stmt = parse_stmt("return;")[0]
        assert stmt.value is None

    def test_nested_blocks(self):
        stmt = parse_stmt("{ { int x = 1; } }")[0]
        assert isinstance(stmt, BlockStmt)

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParserError):
            parse_stmt("3 = 4;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr_via_assign("1 + 2 * 3")
        assert expr.op is BinaryOp.ADD
        assert expr.right.op is BinaryOp.MUL

    def test_precedence_shift_below_add(self):
        expr = parse_expr_via_assign("1 << 2 + 3")
        assert expr.op is BinaryOp.SHL

    def test_left_associativity(self):
        expr = parse_expr_via_assign("10 - 4 - 3")
        assert expr.op is BinaryOp.SUB
        assert expr.left.op is BinaryOp.SUB

    def test_parentheses_override(self):
        expr = parse_expr_via_assign("(1 + 2) * 3")
        assert expr.op is BinaryOp.MUL

    def test_comparison_chain_structure(self):
        expr = parse_expr_via_assign("a < b == c")
        assert expr.op is BinaryOp.EQ

    def test_logical_precedence(self):
        expr = parse_expr_via_assign("a && b || c")
        assert expr.op is BinaryOp.LOR

    def test_bitwise_precedence(self):
        expr = parse_expr_via_assign("a | b ^ c & d")
        assert expr.op is BinaryOp.OR
        assert expr.right.op is BinaryOp.XOR
        assert expr.right.right.op is BinaryOp.AND

    def test_unary_negation(self):
        expr = parse_expr_via_assign("-x")
        assert isinstance(expr, UnaryExpr) and expr.op is UnaryOp.NEG

    def test_double_negation(self):
        expr = parse_expr_via_assign("--x" .replace("--", "- -"))
        assert expr.op is UnaryOp.NEG and expr.operand.op is UnaryOp.NEG

    def test_ternary(self):
        expr = parse_expr_via_assign("a ? 1 : 2")
        assert isinstance(expr, ConditionalExpr)

    def test_ternary_right_associative(self):
        expr = parse_expr_via_assign("a ? 1 : b ? 2 : 3")
        assert isinstance(expr.otherwise, ConditionalExpr)

    def test_call_no_args(self):
        expr = parse_expr_via_assign("f()")
        assert isinstance(expr, CallExpr) and expr.args == []

    def test_call_args(self):
        expr = parse_expr_via_assign("f(1, x, g(2))")
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], CallExpr)

    def test_cast_int(self):
        expr = parse_expr_via_assign("(int) 2.5")
        assert isinstance(expr, CallExpr) and expr.callee == "__cast_int"

    def test_cast_float(self):
        expr = parse_expr_via_assign("(float) 3")
        assert expr.callee == "__cast_float"

    def test_array_read(self):
        expr = parse_expr_via_assign("t[i + 1]")
        assert isinstance(expr, ArrayRef)
        assert isinstance(expr.indices[0], BinaryExpr)

    def test_unclosed_paren_raises(self):
        with pytest.raises(ParserError):
            parse_expr_via_assign("(1 + 2")
