"""Lexer unit tests."""

import pytest

from repro.frontend import Lexer, LexerError, tokenize
from repro.frontend.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]  # drop EOF


class TestLiterals:
    def test_decimal_int(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT_LITERAL
        assert token.value == 42

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_hex_literal(self):
        token = tokenize("0x1F")[0]
        assert token.kind is TokenKind.INT_LITERAL
        assert token.value == 31

    def test_hex_uppercase_prefix(self):
        assert tokenize("0XFF")[0].value == 255

    def test_malformed_hex_raises(self):
        with pytest.raises(LexerError):
            tokenize("0x")

    def test_float_literal(self):
        token = tokenize("3.5")[0]
        assert token.kind is TokenKind.FLOAT_LITERAL
        assert token.value == 3.5

    def test_float_with_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0

    def test_float_with_signed_exponent(self):
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_float_f_suffix(self):
        token = tokenize("1.5f")[0]
        assert token.kind is TokenKind.FLOAT_LITERAL
        assert token.value == 1.5

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.kind is TokenKind.FLOAT_LITERAL
        assert token.value == 0.5

    def test_int_then_member_like_dot_is_error(self):
        with pytest.raises(LexerError):
            tokenize("a . b".replace(" ", ""))


class TestIdentifiersAndKeywords:
    def test_identifier(self):
        token = tokenize("counter_1")[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "counter_1"

    def test_underscore_start(self):
        assert tokenize("_tmp")[0].value == "_tmp"

    @pytest.mark.parametrize(
        "keyword,kind",
        [
            ("int", TokenKind.KW_INT),
            ("float", TokenKind.KW_FLOAT),
            ("void", TokenKind.KW_VOID),
            ("if", TokenKind.KW_IF),
            ("else", TokenKind.KW_ELSE),
            ("for", TokenKind.KW_FOR),
            ("while", TokenKind.KW_WHILE),
            ("do", TokenKind.KW_DO),
            ("return", TokenKind.KW_RETURN),
            ("break", TokenKind.KW_BREAK),
            ("continue", TokenKind.KW_CONTINUE),
            ("const", TokenKind.KW_CONST),
        ],
    )
    def test_keywords(self, keyword, kind):
        assert tokenize(keyword)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("interval")[0].kind is TokenKind.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<<", TokenKind.SHL),
            (">>", TokenKind.SHR),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("&&", TokenKind.ANDAND),
            ("||", TokenKind.OROR),
            ("+=", TokenKind.PLUS_ASSIGN),
            ("<<=", TokenKind.SHL_ASSIGN),
            ("++", TokenKind.PLUSPLUS),
            ("--", TokenKind.MINUSMINUS),
        ],
    )
    def test_multichar(self, text, kind):
        assert tokenize(text)[0].kind is kind

    def test_maximal_munch(self):
        # ">>=" must lex as one token, not ">>" "=".
        assert kinds("a >>= 1") == [
            TokenKind.IDENT,
            TokenKind.SHR_ASSIGN,
            TokenKind.INT_LITERAL,
        ]

    def test_adjacent_lt(self):
        assert kinds("a<b") == [
            TokenKind.IDENT,
            TokenKind.LT,
            TokenKind.IDENT,
        ]

    def test_unknown_character(self):
        with pytest.raises(LexerError):
            tokenize("a $ b")


class TestTriviaAndPositions:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\n b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_line_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_recorded(self):
        token = tokenize("x", filename="app.c")[0]
        assert token.location.filename == "app.c"

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("a b c")[-1].kind is TokenKind.EOF

    def test_streaming_interface(self):
        lexer = Lexer("x + 1")
        seen = []
        while True:
            token = lexer.next_token()
            seen.append(token.kind)
            if token.kind is TokenKind.EOF:
                break
        assert seen == [
            TokenKind.IDENT,
            TokenKind.PLUS,
            TokenKind.INT_LITERAL,
            TokenKind.EOF,
        ]
