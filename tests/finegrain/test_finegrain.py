"""Fine-grain mapping tests: device, ASAP utilities, Figure 3, timing."""

import pytest

from repro.finegrain import (
    FPGADevice,
    TemporalPartitioningError,
    block_fpga_timing,
    dfg_total_area,
    generate_bitstreams,
    nodes_in_level_order,
    partition_dfg,
    partition_execution_cycles,
    summarize_levels,
    total_configuration_bytes,
    unique_streams,
    widest_node_area,
)
from repro.platform import default_characterization
from repro.workloads import SyntheticBlockProfile, generate_dfg

CHAR = default_characterization()


def profile_dfg(alu=10, mul=4, loads=6, stores=2, width=2.0, bb_id=900):
    return generate_dfg(
        SyntheticBlockProfile(
            bb_id=bb_id,
            exec_freq=1,
            alu_ops=alu,
            mul_ops=mul,
            load_ops=loads,
            store_ops=stores,
            width=width,
        )
    )


class TestDevice:
    def test_usable_area_fraction(self):
        device = FPGADevice(total_area=1000, usable_fraction=0.7)
        assert device.usable_area == 700

    def test_from_usable_area_exact(self):
        for target in (1500, 5000, 777):
            device = FPGADevice.from_usable_area(target)
            assert device.usable_area == target

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FPGADevice(total_area=100, usable_fraction=1.5)

    def test_invalid_area(self):
        with pytest.raises(ValueError):
            FPGADevice(total_area=0)

    def test_negative_reconfig(self):
        with pytest.raises(ValueError):
            FPGADevice(total_area=100, reconfig_cycles=-1)


class TestASAPUtilities:
    def test_level_order_monotone(self):
        dfg = profile_dfg()
        asap = dfg.asap_levels()
        ordered = nodes_in_level_order(dfg)
        levels = [asap[n.node_id] for n in ordered]
        assert levels == sorted(levels)

    def test_summaries_cover_all_nodes(self):
        dfg = profile_dfg()
        summaries = summarize_levels(dfg, CHAR)
        assert sum(s.node_count for s in summaries) == len(dfg)

    def test_total_area_positive(self):
        dfg = profile_dfg()
        assert dfg_total_area(dfg, CHAR) > 0

    def test_widest_node(self):
        dfg = profile_dfg(mul=2)
        # MUL is the largest op class present
        assert widest_node_area(dfg, CHAR) == CHAR.fpga_area(
            next(n for n in dfg.nodes if n.op_class.value == "mul").opcode
        )


class TestTemporalPartitioning:
    def test_fits_in_one_partition_when_large(self):
        dfg = profile_dfg()
        result = partition_dfg(dfg, 10**6, CHAR)
        assert result.partition_count == 1

    def test_splits_when_small(self):
        dfg = profile_dfg(alu=40, mul=10)
        area = dfg_total_area(dfg, CHAR)
        result = partition_dfg(dfg, area // 3, CHAR)
        assert result.partition_count >= 3

    def test_invariants_validate(self):
        dfg = profile_dfg(alu=30, mul=8, loads=12, stores=4)
        for budget_divisor in (1, 2, 5):
            area = max(
                widest_node_area(dfg, CHAR),
                dfg_total_area(dfg, CHAR) // budget_divisor,
            )
            result = partition_dfg(dfg, area, CHAR)
            result.validate(CHAR)

    def test_every_node_assigned_once(self):
        dfg = profile_dfg()
        result = partition_dfg(dfg, 600, CHAR)
        assigned = [n for p in result.partitions for n in p.node_ids]
        assert sorted(assigned) == sorted(n.node_id for n in dfg.nodes)

    def test_node_larger_than_budget_rejected(self):
        dfg = profile_dfg(mul=1)
        with pytest.raises(TemporalPartitioningError):
            partition_dfg(dfg, 10, CHAR)

    def test_zero_budget_rejected(self):
        with pytest.raises(TemporalPartitioningError):
            partition_dfg(profile_dfg(), 0, CHAR)

    def test_empty_dfg(self):
        from repro.ir import BasicBlock, DataFlowGraph, Instruction, Opcode

        block = BasicBlock("empty")
        block.append(Instruction(Opcode.RET))
        result = partition_dfg(DataFlowGraph(block), 100, CHAR)
        assert result.partition_count == 0

    def test_partition_count_decreases_with_area(self):
        dfg = profile_dfg(alu=60, mul=20, loads=20, stores=6)
        counts = [
            partition_dfg(dfg, budget, CHAR).partition_count
            for budget in (400, 1500, 5000, 10**6)
        ]
        assert counts == sorted(counts, reverse=True)


class TestTiming:
    def test_level_cost_uses_max_delay(self):
        dfg = profile_dfg(alu=4, mul=4, loads=0, stores=1, width=8.0)
        result = partition_dfg(dfg, 10**6, CHAR)
        cycles = partition_execution_cycles(result, CHAR)
        # one compute level with a MUL present => delay 2 (+ store level 1)
        assert cycles[0] >= 2

    def test_single_partition_reconfig_cached(self):
        dfg = profile_dfg()
        device = FPGADevice.from_usable_area(10**6, reconfig_cycles=50)
        timing = block_fpga_timing(dfg, device, CHAR)
        assert timing.partition_count == 1
        assert timing.reconfig_cycles == 0

    def test_single_partition_reconfig_charged_when_forced(self):
        dfg = profile_dfg()
        device = FPGADevice.from_usable_area(10**6, reconfig_cycles=50)
        timing = block_fpga_timing(dfg, device, CHAR, charge_single_partition=True)
        assert timing.reconfig_cycles == 50

    def test_multi_partition_reconfig_charged(self):
        dfg = profile_dfg(alu=60, mul=20)
        device = FPGADevice.from_usable_area(800, reconfig_cycles=50)
        timing = block_fpga_timing(dfg, device, CHAR)
        assert timing.partition_count > 1
        assert timing.reconfig_cycles == 50 * timing.partition_count

    def test_more_area_never_slower(self):
        dfg = profile_dfg(alu=50, mul=15, loads=20, stores=5, width=3.0)
        cycles = []
        for budget in (700, 1500, 5000, 20000):
            device = FPGADevice.from_usable_area(budget)
            cycles.append(block_fpga_timing(dfg, device, CHAR).total_cycles)
        assert cycles == sorted(cycles, reverse=True)

    def test_application_aggregation(self):
        from repro.finegrain import application_fpga_cycles

        dfg = profile_dfg()
        device = FPGADevice.from_usable_area(1500)
        timing = block_fpga_timing(dfg, device, CHAR)
        total = application_fpga_cycles({1: timing}, {1: 10})
        assert total == timing.total_cycles * 10


class TestBitstreams:
    def test_one_stream_per_partition(self):
        dfg = profile_dfg(alu=40, mul=10)
        result = partition_dfg(dfg, 600, CHAR)
        streams = generate_bitstreams(result, CHAR)
        assert len(streams) == result.partition_count

    def test_payload_proportional_to_area(self):
        dfg = profile_dfg()
        result = partition_dfg(dfg, 10**6, CHAR)
        streams = generate_bitstreams(result, CHAR)
        assert streams[0].payload_bytes == result.partitions[0].area_used * 16

    def test_deterministic_checksums(self):
        dfg = profile_dfg()
        result = partition_dfg(dfg, 10**6, CHAR)
        a = generate_bitstreams(result, CHAR)
        b = generate_bitstreams(result, CHAR)
        assert [s.checksum for s in a] == [s.checksum for s in b]

    def test_total_bytes_include_headers(self):
        dfg = profile_dfg()
        result = partition_dfg(dfg, 10**6, CHAR)
        streams = generate_bitstreams(result, CHAR)
        assert total_configuration_bytes(streams) == sum(
            s.payload_bytes + 64 for s in streams
        )

    def test_unique_streams_counts_distinct(self):
        dfg = profile_dfg(alu=40, mul=10)
        result = partition_dfg(dfg, 600, CHAR)
        streams = generate_bitstreams(result, CHAR)
        assert 1 <= unique_streams(streams) <= len(streams)
