"""Property-based tests of the Figure 3 temporal partitioning algorithm."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.finegrain import (
    block_fpga_timing,
    dfg_total_area,
    partition_dfg,
    widest_node_area,
)
from repro.finegrain.device import FPGADevice
from repro.platform import default_characterization
from repro.workloads import SyntheticBlockProfile, generate_dfg

CHAR = default_characterization()

profiles = st.builds(
    SyntheticBlockProfile,
    bb_id=st.integers(1, 500),
    exec_freq=st.just(1),
    alu_ops=st.integers(1, 40),
    mul_ops=st.integers(0, 15),
    load_ops=st.integers(0, 20),
    store_ops=st.integers(0, 6),
    width=st.floats(1.0, 6.0),
    serial_memory=st.just(False),
)

serial_profiles = st.builds(
    SyntheticBlockProfile,
    bb_id=st.integers(1, 500),
    exec_freq=st.just(1),
    alu_ops=st.integers(1, 20),
    mul_ops=st.integers(0, 8),
    load_ops=st.integers(0, 16),
    store_ops=st.integers(1, 6),
    width=st.just(1.0),
    serial_memory=st.just(True),
)

budgets = st.integers(200, 8000)


@settings(max_examples=40, deadline=None)
@given(profile=profiles, budget=budgets)
def test_partitioning_invariants(profile, budget):
    """Every feasible run satisfies all Figure 3 invariants."""
    dfg = generate_dfg(profile)
    budget = max(budget, widest_node_area(dfg, CHAR))
    result = partition_dfg(dfg, budget, CHAR)
    result.validate(CHAR)


@settings(max_examples=40, deadline=None)
@given(profile=serial_profiles, budget=budgets)
def test_partitioning_invariants_serial_blocks(profile, budget):
    dfg = generate_dfg(profile)
    budget = max(budget, widest_node_area(dfg, CHAR))
    result = partition_dfg(dfg, budget, CHAR)
    result.validate(CHAR)


@settings(max_examples=30, deadline=None)
@given(profile=profiles)
def test_huge_budget_means_single_partition(profile):
    dfg = generate_dfg(profile)
    result = partition_dfg(dfg, dfg_total_area(dfg, CHAR) + 1, CHAR)
    assert result.partition_count <= 1 or len(dfg) == 0


@settings(max_examples=30, deadline=None)
@given(profile=profiles, budget=budgets)
def test_partition_count_lower_bound(profile, budget):
    """Partition count can never beat the area lower bound ceil(total/A)."""
    dfg = generate_dfg(profile)
    budget = max(budget, widest_node_area(dfg, CHAR))
    result = partition_dfg(dfg, budget, CHAR)
    total = dfg_total_area(dfg, CHAR)
    assert result.partition_count >= -(-total // budget)


@settings(max_examples=30, deadline=None)
@given(profile=profiles, budget=budgets)
def test_single_partition_is_lower_bound(profile, budget):
    """A device that fits the whole DFG is never slower than any split.

    (Strict per-budget monotonicity does NOT hold for the Figure 3 greedy:
    a slightly larger budget can move a partition boundary into the middle
    of an ASAP level, re-executing that level's max delay in two
    partitions.  The global bound below is the property the algorithm
    actually guarantees.)
    """
    dfg = generate_dfg(profile)
    floor = widest_node_area(dfg, CHAR)
    budget = max(budget, floor)
    split = block_fpga_timing(dfg, FPGADevice.from_usable_area(budget), CHAR)
    whole = block_fpga_timing(
        dfg,
        FPGADevice.from_usable_area(max(dfg_total_area(dfg, CHAR), 1)),
        CHAR,
    )
    assert whole.partition_count <= 1
    assert whole.total_cycles <= split.total_cycles
