"""Differential testing: mini-C programs vs direct Python evaluation.

Hypothesis generates random integer expression trees; each is compiled
through the full stack (lex -> parse -> semantic -> lower -> CFG) and
interpreted, and the result must equal an independent Python evaluation
with C semantics.  This exercises the frontend, lowering and interpreter
against each other over a far larger input space than hand-written cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import run_function
from repro.ir import cdfg_from_source


def c_div(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_mod(a, b):
    return a - c_div(a, b) * b


class Expr:
    """Expression tree that renders to mini-C and evaluates in Python."""

    def __init__(self, text, value):
        self.text = text
        self.value = value


@st.composite
def expressions(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        # Leaf: literal or parameter (x = 7, y = -3 at run time).
        choice = draw(st.integers(0, 2))
        if choice == 0:
            value = draw(st.integers(-50, 50))
            text = f"({value})" if value < 0 else str(value)
            return Expr(text, value)
        if choice == 1:
            return Expr("x", 7)
        return Expr("y", -3)
    op = draw(
        st.sampled_from(
            ["+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "==", "!=",
             "<<", ">>", "&&", "||", "?:"]
        )
    )
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    if op == "+":
        return Expr(f"({left.text} + {right.text})", left.value + right.value)
    if op == "-":
        return Expr(f"({left.text} - {right.text})", left.value - right.value)
    if op == "*":
        return Expr(f"({left.text} * {right.text})", left.value * right.value)
    if op == "/":
        if right.value == 0:
            return left
        return Expr(f"({left.text} / {right.text})", c_div(left.value, right.value))
    if op == "%":
        if right.value == 0:
            return left
        return Expr(f"({left.text} % {right.text})", c_mod(left.value, right.value))
    if op == "&":
        return Expr(f"({left.text} & {right.text})", left.value & right.value)
    if op == "|":
        return Expr(f"({left.text} | {right.text})", left.value | right.value)
    if op == "^":
        return Expr(f"({left.text} ^ {right.text})", left.value ^ right.value)
    if op == "<":
        return Expr(f"({left.text} < {right.text})", int(left.value < right.value))
    if op == ">":
        return Expr(f"({left.text} > {right.text})", int(left.value > right.value))
    if op == "==":
        return Expr(f"({left.text} == {right.text})", int(left.value == right.value))
    if op == "!=":
        return Expr(f"({left.text} != {right.text})", int(left.value != right.value))
    if op == "<<":
        shift = abs(right.value) % 8
        return Expr(f"({left.text} << {shift})", left.value << shift)
    if op == ">>":
        shift = abs(right.value) % 8
        return Expr(f"({left.text} >> {shift})", left.value >> shift)
    if op == "&&":
        return Expr(
            f"({left.text} && {right.text})",
            int(bool(left.value) and bool(right.value)),
        )
    if op == "||":
        return Expr(
            f"({left.text} || {right.text})",
            int(bool(left.value) or bool(right.value)),
        )
    # ternary
    cond = draw(expressions(depth=depth + 1))
    return Expr(
        f"({cond.text} ? {left.text} : {right.text})",
        left.value if cond.value else right.value,
    )


@settings(max_examples=120, deadline=None)
@given(expr=expressions())
def test_expression_compilation_matches_python(expr):
    source = f"int f(int x, int y) {{ return {expr.text}; }}"
    cdfg = cdfg_from_source(source)
    result = run_function(cdfg, "f", 7, -3)
    assert result.return_value == expr.value, source


@settings(max_examples=40, deadline=None)
@given(expr=expressions())
def test_optimizer_preserves_semantics(expr):
    """Constant folding / copy propagation / DCE never change the result."""
    from repro.ir import optimize_cdfg

    source = f"int f(int x, int y) {{ return {expr.text}; }}"
    plain = cdfg_from_source(source)
    optimized = cdfg_from_source(source)
    optimize_cdfg(optimized)
    assert (
        run_function(plain, "f", 7, -3).return_value
        == run_function(optimized, "f", 7, -3).return_value
    )


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(-100, 100), min_size=1, max_size=12),
    threshold=st.integers(-50, 50),
)
def test_loop_accumulation_matches_python(values, threshold):
    """A conditional accumulation loop over an input array."""
    n = len(values)
    source = f"""
    int f(int a[{n}]) {{
        int s = 0;
        for (int i = 0; i < {n}; i++) {{
            if (a[i] > {'(' + str(threshold) + ')' if threshold < 0 else threshold}) {{
                s += a[i];
            }} else {{
                s -= 1;
            }}
        }}
        return s;
    }}
    """
    expected = sum(v if v > threshold else -1 for v in values)
    cdfg = cdfg_from_source(source)
    assert run_function(cdfg, "f", list(values)).return_value == expected
