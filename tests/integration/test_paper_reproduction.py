"""Integration tests: the paper's tables and headline claims reproduce.

These are the repository's acceptance tests — the quantities the paper
reports must come out with the same *shape*: identical Table 1 rows,
identical kernel selections in Tables 2/3, constraints satisfied, and the
published trends.
"""

import pytest

from repro.reporting import (
    reproduce_headline_claims,
    reproduce_table2,
    reproduce_table3,
)


@pytest.fixture(scope="module")
def table2():
    return reproduce_table2()


@pytest.fixture(scope="module")
def table3():
    return reproduce_table3()


class TestTable2OFDM:
    def test_kernel_sets_match_paper(self, table2):
        assert table2.all_sets_match

    def test_constraints_met(self, table2):
        assert table2.all_constraints_met

    def test_reductions_close_to_paper(self, table2):
        for row in table2.rows:
            assert abs(row.reduction_error) < 12.0

    def test_small_area_reduces_more(self, table2):
        by_area = {}
        for row in table2.rows:
            by_area.setdefault(row.paper.afpga, []).append(
                row.result.reduction_percent
            )
        assert min(by_area[1500]) > max(by_area[5000])

    def test_initial_cycles_area_ratio(self, table2):
        initial = {
            row.paper.afpga: row.result.initial_cycles for row in table2.rows
        }
        ratio = initial[1500] / initial[5000]
        assert 1.6 < ratio < 2.7  # paper: 2.12

    def test_three_cgcs_need_fewer_kernels(self, table2):
        moved = {
            (row.paper.afpga, row.paper.cgc_count): row.result.kernels_moved
            for row in table2.rows
        }
        for afpga in (1500, 5000):
            assert moved[(afpga, 3)] < moved[(afpga, 2)]

    def test_cgc_cycles_drop_with_more_cgcs(self, table2):
        cgc = {
            (row.paper.afpga, row.paper.cgc_count): row.result.cycles_in_cgc
            for row in table2.rows
        }
        for afpga in (1500, 5000):
            assert cgc[(afpga, 3)] < cgc[(afpga, 2)]


class TestTable3JPEG:
    def test_kernel_sets_match_paper(self, table3):
        assert table3.all_sets_match

    def test_always_moves_6_2_1(self, table3):
        for row in table3.rows:
            assert row.result.moved_bb_ids == [6, 2, 1]

    def test_constraints_met(self, table3):
        assert table3.all_constraints_met

    def test_reductions_at_small_area_close(self, table3):
        for row in table3.rows:
            if row.paper.afpga == 1500:
                assert abs(row.reduction_error) < 6.0

    def test_small_area_reduces_more(self, table3):
        by_area = {}
        for row in table3.rows:
            by_area.setdefault(row.paper.afpga, []).append(
                row.result.reduction_percent
            )
        assert min(by_area[1500]) > max(by_area[5000])


class TestHeadlineClaims:
    def test_claims(self, table2, table3):
        claims = reproduce_headline_claims(table2, table3)
        # "a maximum clock cycles decrease of 82% relative to ... all
        # fine-grain mapping" (we accept the same order of magnitude)
        assert 70.0 < claims.ofdm_max_reduction < 90.0
        # "the corresponding performance improvement for the JPEG is 43%"
        assert 35.0 < claims.jpeg_max_reduction < 55.0
        assert claims.ofdm_area_trend_holds
        assert claims.jpeg_area_trend_holds
