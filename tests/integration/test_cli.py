"""Tests for the ``python -m repro`` command-line entry point."""

import csv
import json

import pytest

from repro.__main__ import main, parse_algorithm, parse_workload
from repro.search import AlgorithmSpec


class TestParsers:
    def test_parse_paper_workloads(self):
        assert parse_workload("ofdm").kind == "ofdm"
        assert parse_workload("jpeg").kind == "jpeg"

    def test_parse_synthetic_with_params(self):
        spec = parse_workload("synthetic:24:seed=3,comm_intensity=0.8")
        assert spec.kind == "synthetic"
        params = dict(spec.params)
        assert params["block_count"] == 24
        assert params["seed"] == 3
        assert params["comm_intensity"] == 0.8

    def test_parse_workload_rejects_unknown(self):
        with pytest.raises(Exception):
            parse_workload("mp3")
        with pytest.raises(Exception):
            parse_workload("synthetic")  # missing block count

    def test_parse_new_workload_kinds(self):
        assert parse_workload("filterbank").kind == "filterbank"
        assert parse_workload("viterbi:states=32").label == (
            "viterbi-decoder-s32-g48"
        )
        spec = parse_workload("filterbank:channels=12,taps=24")
        assert dict(spec.params) == {"channels": 12, "taps": 24}

    def test_parse_workload_rejects_bad_parameters(self):
        with pytest.raises(Exception, match="bad parameters"):
            parse_workload("filterbank:bogus=1")
        with pytest.raises(Exception, match="bad parameters"):
            parse_workload("viterbi:trellis=9")
        with pytest.raises(Exception, match="integer"):
            parse_workload("synthetic:many")
        with pytest.raises(Exception, match="key=value"):
            parse_workload("synthetic:8:seed")

    def test_parse_algorithm_with_params(self):
        assert parse_algorithm("greedy") == AlgorithmSpec.greedy()
        spec = parse_algorithm("annealing:seed=7,cooling=0.8")
        assert spec.name == "annealing"
        assert dict(spec.params)["seed"] == 7
        assert dict(spec.params)["cooling"] == 0.8

    def test_parse_algorithm_rejects_unknown(self):
        with pytest.raises(Exception):
            parse_algorithm("tabu")
        with pytest.raises(Exception):
            parse_algorithm("greedy:bogus_param=1")


class TestPartitionCommand:
    def test_partition_with_fraction(self, capsys):
        code = main(
            ["partition", "--workload", "ofdm", "--fraction", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ofdm-transmitter" in out
        assert "constraint" in out and "met" in out

    def test_partition_with_absolute_constraint_and_algorithm(self, capsys):
        code = main(
            [
                "partition",
                "--workload", "synthetic:12:seed=2",
                "--constraint", "1",
                "--algorithm", "multi_start:restarts=4",
                "--pareto",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "multi_start" in out
        assert "Pareto front" in out

    def test_substrate_flag_both_paths_agree(self, capsys):
        """--substrate packed|object run the same partition and print
        identical summaries (the CLI-level differential check)."""
        outputs = {}
        for substrate in ("packed", "object"):
            code = main(
                [
                    "partition", "--workload", "ofdm",
                    "--fraction", "0.5", "--substrate", substrate,
                ]
            )
            assert code == 0
            outputs[substrate] = capsys.readouterr().out
        assert outputs["packed"] == outputs["object"]

    def test_unknown_substrate_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "partition", "--workload", "ofdm",
                    "--fraction", "0.5", "--substrate", "simd",
                ]
            )
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_sharded_exhaustive_prints_shard_stats(self, capsys):
        code = main(
            [
                "partition", "--workload", "ofdm", "--fraction", "0.5",
                "--algorithm", "exhaustive", "--shards", "2",
                "--search-workers", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm: exhaustive[shards=2]" in out
        assert "exact search:" in out
        assert out.count("shard ") == 2

    def test_prune_flag_reports_pruned_subtrees(self, capsys):
        code = main(
            [
                "partition", "--workload",
                "synthetic:20:seed=5,kernel_fraction=0.8",
                "--fraction", "0.5",
                "--algorithm", "exhaustive", "--prune",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "subtrees pruned" in out
        # branch-and-bound on a 16-kernel space must actually prune
        assert "0 subtrees pruned" not in out

    def test_prune_param_spelling_matches_flag(self, capsys):
        """exhaustive:prune=true parses to the same search as --prune."""
        outputs = []
        for argv in (
            ["partition", "--workload", "ofdm", "--fraction", "0.5",
             "--algorithm", "exhaustive:prune=true"],
            ["partition", "--workload", "ofdm", "--fraction", "0.5",
             "--algorithm", "exhaustive", "--prune"],
        ):
            assert main(argv) == 0
            out = capsys.readouterr().out
            # per-shard lines carry wall-clock timings; everything else
            # (optimum, visit and prune counts) must be bit-identical
            outputs.append(
                [line for line in out.splitlines() if "/s," not in line]
            )
        assert outputs[0] == outputs[1]
        assert any("subtrees pruned" in line for line in outputs[0])

    def test_exact_flags_rejected_for_other_algorithms(self, capsys):
        code = main(
            [
                "partition", "--workload", "ofdm", "--fraction", "0.5",
                "--algorithm", "greedy", "--shards", "2",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "exhaustive algorithm only" in err

    def test_constraint_and_fraction_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "partition", "--workload", "ofdm",
                    "--constraint", "10", "--fraction", "0.5",
                ]
            )

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_workload_via_main_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["partition", "--workload", "mp3", "--fraction", "0.5"])
        assert excinfo.value.code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_algorithm_via_main_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "partition", "--workload", "ofdm",
                    "--fraction", "0.5", "--algorithm", "tabu",
                ]
            )
        assert excinfo.value.code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_bad_workload_parameter_value_is_rejected(self, capsys):
        # Parameter *names* fail at parse time; bad *values* surface at
        # build time and must exit 2, not crash.
        code = main(
            [
                "partition", "--workload", "viterbi:states=3",
                "--fraction", "0.5",
            ]
        )
        assert code == 2
        assert "power of two" in capsys.readouterr().err

    def test_negative_fraction_is_rejected(self, capsys):
        code = main(
            ["partition", "--workload", "ofdm", "--fraction", "-0.5"]
        )
        assert code == 2
        assert "positive" in capsys.readouterr().err


class TestExploreCommand:
    def test_explore_writes_csv_and_json(self, capsys, tmp_path):
        csv_path = tmp_path / "grid.csv"
        json_path = tmp_path / "grid.json"
        code = main(
            [
                "explore",
                "--workloads", "ofdm",
                "--afpga", "1500",
                "--cgcs", "2",
                "--fractions", "0.5",
                "--algorithms", "greedy", "multi_start",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Best point per algorithm" in out
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert {row["algorithm"] for row in rows} == {"greedy", "multi_start"}
        payload = json.loads(json_path.read_text())
        assert payload["summary"]["points"] == 2

    def test_explore_substrate_flag(self, capsys, tmp_path):
        """Both substrates sweep the same grid to the same CSV rows;
        an unknown substrate is an argparse usage error."""
        rows_by_substrate = {}
        for substrate in ("packed", "object"):
            csv_path = tmp_path / f"grid-{substrate}.csv"
            code = main(
                [
                    "explore",
                    "--workloads", "synthetic:12:seed=2",
                    "--afpga", "1500",
                    "--cgcs", "2",
                    "--fractions", "0.5",
                    "--substrate", substrate,
                    "--csv", str(csv_path),
                ]
            )
            capsys.readouterr()
            assert code == 0
            with csv_path.open() as handle:
                rows_by_substrate[substrate] = list(csv.DictReader(handle))
        assert rows_by_substrate["packed"] == rows_by_substrate["object"]
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "explore", "--workloads", "ofdm",
                    "--substrate", "quantum",
                ]
            )
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_export_path_reports_instead_of_crashing(
        self, capsys, tmp_path
    ):
        code = main(
            [
                "explore",
                "--workloads", "viterbi",
                "--afpga", "1500",
                "--cgcs", "2",
                "--fractions", "0.5",
                "--csv", str(tmp_path / "no" / "such" / "dir" / "grid.csv"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot write exploration CSV" in captured.err
        # The grid itself still printed before the export failed.
        assert "viterbi-decoder" in captured.out


class TestVerifyCommand:
    def test_parse_minic_workload(self):
        spec = parse_workload("minic:5")
        assert spec.kind == "minic"
        assert dict(spec.params)["seed"] == 5
        assert parse_workload("minic").kind == "minic"
        with pytest.raises(Exception, match="integer"):
            parse_workload("minic:zero")

    def test_verify_single_workload(self, capsys):
        code = main(["verify", "minic:0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "minic-s0: ok" in out
        assert "1 clean, 0 failing" in out

    def test_verify_all_covers_ir_backed_kinds(self, capsys):
        code = main(["verify", "--all"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ofdm-transmitter-measured-s6: ok" in out
        assert "jpeg-encoder-measured-i1994: ok" in out
        assert "minic-s0: ok" in out
        # Table-driven suite workloads have no IR and are skipped.
        assert "skipped (no IR" in out
        assert "0 failing" in out

    def test_verify_stats_prints_per_function_rows(self, capsys):
        code = main(["verify", "minic:3", "--stats", "--no-optimize"])
        out = capsys.readouterr().out
        assert code == 0
        assert "entry:" in out
        assert "loops" in out
        assert "peak live scalars" in out

    def test_verify_without_workloads_errors(self, capsys):
        code = main(["verify"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no workloads" in captured.err
