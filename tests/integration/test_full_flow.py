"""Integration: the complete Figure 2 flow on real mini-C programs."""

import pytest

from repro.analysis import WeightModel, extract_kernels, profile_cdfg
from repro.partition import PartitioningEngine, workload_from_cdfg
from repro.platform import paper_platform
from repro.ir import cdfg_from_source

FIR_SOURCE = """
// A small FIR filter: the inner MAC loop is the obvious kernel.
const int TAPS[8] = {1, 2, 4, 8, 8, 4, 2, 1};

void fir(int input[128], int output[128]) {
    for (int n = 8; n < 128; n++) {
        int acc = 0;
        for (int k = 0; k < 8; k++) {
            acc += TAPS[k] * input[n - k];
        }
        output[n] = acc >> 5;
    }
}
"""


@pytest.fixture(scope="module")
def fir_workload():
    cdfg = cdfg_from_source(FIR_SOURCE, "fir.c")
    samples = [((i * 37) % 256) - 128 for i in range(128)]
    profile = profile_cdfg(cdfg, "fir", samples, [0] * 128)
    return cdfg, workload_from_cdfg(cdfg, profile, "fir")


class TestFigure2Flow:
    def test_analysis_finds_mac_loop(self, fir_workload):
        cdfg, workload = fir_workload
        kernels = workload.kernel_candidates(WeightModel())
        assert kernels
        top = kernels[0]
        # The MAC body runs 120 * 8 = 960 times.
        assert top.exec_freq == 960

    def test_all_fpga_exit_when_constraint_loose(self, fir_workload):
        __, workload = fir_workload
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        result = engine.run(engine.initial_cycles())
        assert result.constraint_met and not result.moved_bb_ids

    def test_partitioning_accelerates(self, fir_workload):
        """Moving the MAC kernel lowers total time.  (Note: the FIR blocks
        are tiny — a handful of cycles each — so per-invocation shared
        memory traffic caps the achievable gain; the engine meets a ~4%
        tighter deadline by moving the heaviest kernel.)"""
        __, workload = fir_workload
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        initial = engine.initial_cycles()
        result = engine.run(int(initial * 0.96))
        assert result.moved_bb_ids
        assert result.constraint_met
        assert result.final_cycles < initial

    def test_engine_consistent_across_platforms(self, fir_workload):
        __, workload = fir_workload
        finals = {}
        for cgc_count in (2, 3):
            engine = PartitioningEngine(workload, paper_platform(1500, cgc_count))
            finals[cgc_count] = engine.run(1).final_cycles
        assert finals[3] <= finals[2]

    def test_extract_kernels_equivalent_path(self, fir_workload):
        cdfg, workload = fir_workload
        samples = [((i * 37) % 256) - 128 for i in range(128)]
        profile = profile_cdfg(cdfg, "fir", samples, [0] * 128)
        analysis = extract_kernels(cdfg, profile)
        engine_order = [
            b.bb_id for b in workload.kernel_candidates(WeightModel())
        ]
        assert analysis.kernel_order() == engine_order


class TestOFDMEndToEnd:
    def test_ofdm_minic_partitioning(self):
        """The real mini-C OFDM transmitter through the whole flow."""
        from repro.workloads import (
            BITS_PER_SYMBOL,
            OFDMTransmitterApp,
            random_bits,
        )

        app = OFDMTransmitterApp()
        profile = app.profile_symbols(
            [random_bits(BITS_PER_SYMBOL, seed=s) for s in range(2)]
        )
        workload = workload_from_cdfg(app.cdfg, profile, "ofdm-minic")
        engine = PartitioningEngine(workload, paper_platform(1500, 2))
        initial = engine.initial_cycles()
        result = engine.run(int(initial * 0.5))
        assert result.moved_bb_ids, "expected at least one kernel moved"
        assert result.final_cycles < initial
        # The moved kernels should be IFFT butterfly blocks.
        top_key = app.cdfg.key_for_id(result.moved_bb_ids[0])
        assert top_key.function == "ifft64"
