"""API-surface and cross-cutting behaviour tests."""

import pytest

import repro
from repro.coarsegrain import schedule_dfg, standard_datapath
from repro.partition import PartitioningEngine, PartitionResult, PartitionStep
from repro.platform import paper_platform
from repro.workloads import SyntheticBlockProfile, generate_dfg


class TestPackageExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.coarsegrain
        import repro.explore
        import repro.finegrain
        import repro.frontend
        import repro.interp
        import repro.ir
        import repro.partition
        import repro.platform
        import repro.reporting
        import repro.workloads

        for module in (
            repro.analysis, repro.coarsegrain, repro.explore,
            repro.finegrain, repro.frontend, repro.interp, repro.ir,
            repro.partition, repro.platform, repro.reporting,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestResultTypes:
    def test_partition_result_reduction_edge_cases(self):
        result = PartitionResult(
            workload_name="w",
            platform_name="p",
            timing_constraint=10,
            initial_cycles=0,
            final_cycles=0,
            cycles_in_cgc=0,
            comm_cycles=0,
            fpga_cycles=0,
        )
        assert result.reduction_percent == 0.0
        assert result.kernels_moved == 0

    def test_partition_step_immutable(self):
        step = PartitionStep(1, 2, 3, 4, 9, True)
        with pytest.raises(AttributeError):
            step.total_cycles = 10  # type: ignore[misc]


class TestScheduleIntrospection:
    def test_ops_in_cycle_covers_memory_duration(self):
        profile = SyntheticBlockProfile(
            bb_id=950, exec_freq=1, alu_ops=4, mul_ops=0,
            load_ops=3, store_ops=1,
        )
        schedule = schedule_dfg(generate_dfg(profile), standard_datapath(2))
        # Every memory op must appear active in `memory_latency` cycles.
        for op in schedule.ops.values():
            if op.unit != "mem":
                continue
            active = sum(
                1
                for cycle in range(schedule.makespan)
                if op in schedule.ops_in_cycle(cycle)
            )
            assert active == op.duration

    def test_schedule_end_property(self):
        profile = SyntheticBlockProfile(
            bb_id=951, exec_freq=1, alu_ops=2, mul_ops=0, load_ops=1,
        )
        schedule = schedule_dfg(generate_dfg(profile), standard_datapath(2))
        for op in schedule.ops.values():
            assert op.end == op.cycle + op.duration


class TestEngineDeterminism:
    def test_repeated_runs_identical(self, ofdm):
        platform = paper_platform(1500, 2)
        first = PartitioningEngine(ofdm, platform).run(40_000)
        second = PartitioningEngine(ofdm, platform).run(40_000)
        assert first.moved_bb_ids == second.moved_bb_ids
        assert first.final_cycles == second.final_cycles
        assert first.initial_cycles == second.initial_cycles

    def test_fresh_workload_builds_identical(self):
        from repro.workloads import ofdm_workload

        platform = paper_platform(1500, 3)
        a = PartitioningEngine(ofdm_workload(), platform).run(40_000)
        b = PartitioningEngine(ofdm_workload(), platform).run(40_000)
        assert a.final_cycles == b.final_cycles
        assert a.moved_bb_ids == b.moved_bb_ids
