"""Shared fixtures for the benchmark harness."""

import pytest

from repro.workloads import jpeg_workload, ofdm_workload


@pytest.fixture(scope="session")
def ofdm():
    return ofdm_workload()


@pytest.fixture(scope="session")
def jpeg():
    return jpeg_workload()
