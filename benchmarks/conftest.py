"""Shared fixtures and the opt-in `slow` marker for the bench harness.

Benches marked ``@pytest.mark.slow`` (large exploration grids, wall-clock
parallel-speedup measurements) are skipped unless the run passes
``--run-slow``::

    PYTHONPATH=src python -m pytest benchmarks/bench_*.py --run-slow
"""

import pytest

from repro.workloads import jpeg_workload, ofdm_workload


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run benches marked slow (large exploration grids)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: opt-in long-running bench (needs --run-slow)"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow bench: pass --run-slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def ofdm():
    return ofdm_workload()


@pytest.fixture(scope="session")
def jpeg():
    return jpeg_workload()
