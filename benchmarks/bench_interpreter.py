"""Interpreter throughput bench: walker vs block-compiled engine.

Profiles the two paper applications (the JPEG encoder on the standard
test frame, the OFDM transmitter on payload symbols) under both
execution engines and reports interpreted instructions/second.  Asserts
the PR's headline claim — ≥ 5x interpreted-instruction throughput on the
JPEG encode profiling run — and emits ``BENCH_interp.json`` at the repo
root so the perf trajectory is tracked from this PR on (CI uploads the
file as an artifact).

The profile-cache effect is also measured: a content-keyed warm lookup
replaces the whole profiling run with a dict hit.
"""

import json
import time
from pathlib import Path

import pytest

from repro.interp import BlockProfiler, Interpreter, ProfileCache, compile_cdfg
from repro.workloads import (
    BITS_PER_SYMBOL,
    JPEGEncoderApp,
    OFDMTransmitterApp,
    random_bits,
)
from repro.workloads import test_image as make_test_image
from repro.workloads.ofdm import CP_LEN, FFT_SIZE

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_interp.json"

#: The acceptance floor; measured speedups land well above it.
REQUIRED_JPEG_SPEEDUP = 5.0


def _profiled_run(cdfg, mode, entry, *args):
    """One profiling run; returns (seconds, steps)."""
    profiler = BlockProfiler()
    interpreter = Interpreter(cdfg, profiler, mode=mode)
    started = time.perf_counter()
    result = interpreter.run(entry, *args)
    return time.perf_counter() - started, result.steps


def _bench_app(cdfg, entry, *args, best_of: int = 3):
    """Walker vs compiled on one profiling run.

    The walker is timed once (it is the slow side by an order of
    magnitude); the compiled engine is compiled warm, then timed
    ``best_of`` times keeping the fastest run.
    """
    walker_seconds, steps = _profiled_run(cdfg, "walker", entry, *args)
    compile_cdfg(cdfg)  # warm the program cache; compilation is one-time
    compiled_seconds = min(
        _profiled_run(cdfg, "compiled", entry, *args)[0]
        for _ in range(best_of)
    )
    return {
        "steps": steps,
        "walker_seconds": round(walker_seconds, 6),
        "compiled_seconds": round(compiled_seconds, 6),
        "walker_ips": round(steps / walker_seconds),
        "compiled_ips": round(steps / compiled_seconds),
        "speedup": round(walker_seconds / compiled_seconds, 2),
    }


@pytest.fixture(scope="module")
def report():
    """Run both app benches once; individual tests assert on slices."""
    jpeg = JPEGEncoderApp()
    pixels = [int(p) for p in make_test_image().ravel()]
    jpeg_row = _bench_app(jpeg.cdfg, "encode_image", list(pixels))

    ofdm = OFDMTransmitterApp()
    bits = [int(b) for b in random_bits(BITS_PER_SYMBOL)]
    out_len = FFT_SIZE + CP_LEN
    ofdm_row = _bench_app(
        ofdm.cdfg, "ofdm_symbol", list(bits), [0] * out_len, [0] * out_len
    )

    # Content-keyed cache: cold miss (one compiled run) vs warm hit.
    cache = ProfileCache()
    started = time.perf_counter()
    cache.profile(jpeg.cdfg, "encode_image", list(pixels))
    cold = time.perf_counter() - started
    started = time.perf_counter()
    cache.profile(jpeg.cdfg, "encode_image", list(pixels))
    warm = time.perf_counter() - started
    cache_row = {
        "cold_seconds": round(cold, 6),
        "warm_seconds": round(warm, 6),
        "hit_speedup": round(cold / max(warm, 1e-9), 1),
    }

    return {
        "bench": "interpreter_throughput",
        "required_jpeg_speedup": REQUIRED_JPEG_SPEEDUP,
        "jpeg_encode_profile": jpeg_row,
        "ofdm_symbol_profile": ofdm_row,
        "profile_cache": cache_row,
    }


def test_jpeg_compiled_speedup(report, capsys):
    row = report["jpeg_encode_profile"]
    with capsys.disabled():
        print(
            f"\n  JPEG encode profile: {row['steps']} instructions — "
            f"walker {row['walker_ips']:,} ips, "
            f"compiled {row['compiled_ips']:,} ips "
            f"({row['speedup']}x)"
        )
    assert row["speedup"] >= REQUIRED_JPEG_SPEEDUP


def test_ofdm_compiled_faster(report, capsys):
    row = report["ofdm_symbol_profile"]
    with capsys.disabled():
        print(
            f"\n  OFDM symbol profile: {row['steps']} instructions — "
            f"walker {row['walker_ips']:,} ips, "
            f"compiled {row['compiled_ips']:,} ips "
            f"({row['speedup']}x)"
        )
    # The OFDM run is ~25k instructions, so per-run constant costs are a
    # bigger slice; require a conservative floor rather than the JPEG one.
    assert row["speedup"] >= 2.0


def test_profile_cache_hit_is_fast(report, capsys):
    row = report["profile_cache"]
    with capsys.disabled():
        print(
            f"\n  profile cache: cold {row['cold_seconds']}s, warm "
            f"{row['warm_seconds']}s ({row['hit_speedup']}x)"
        )
    assert row["warm_seconds"] < row["cold_seconds"]


def test_write_bench_json(report):
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert json.loads(BENCH_PATH.read_text())["jpeg_encode_profile"][
        "speedup"
    ] >= REQUIRED_JPEG_SPEEDUP
