"""Search-algorithm bench: do the heuristics find what greedy misses?

The Eq. 1 greedy order ranks kernels by ``exec_freq × weight``, which
predicts benefit but is not benefit: a kernel's real value is the ticks
it *saves*, and communication can eat almost all of them.  On skewed
workloads where the heaviest kernel saves the least, a move budget makes
weight-order greedy provably suboptimal — and the randomized algorithms
(multi-start, simulated annealing), which share greedy's O(1) cost
substrate, recover the exhaustive optimum.

Asserted here (the PR's acceptance claim) and recorded in
``BENCH_search.json`` at the repo root (uploaded as a CI artifact):

* ``exhaustive`` lower-bounds every algorithm on every scenario;
* ``annealing`` and ``multi_start`` strictly beat ``greedy``'s final
  cycles on the skewed scenarios;
* the protocol ``greedy`` stays bit-identical to the engine.

Also measured: visited-configurations/second per algorithm (the payoff
of the incremental cost state) and the Pareto front sizes.
"""

import json
import time
from pathlib import Path

import pytest

from repro.partition import (
    ApplicationWorkload,
    BlockWorkload,
    EngineConfig,
    PartitioningEngine,
)
from repro.platform import paper_platform
from repro.search import AlgorithmSpec, front_of_results, make_partitioner
from repro.workloads import generate_dfg, make_profile, synthetic_application

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_search.json"

SPECS = (
    AlgorithmSpec.greedy(),
    AlgorithmSpec.exhaustive(),
    AlgorithmSpec.multi_start(restarts=16, seed=1),
    AlgorithmSpec.annealing(seed=1),
)


def _block(bb_id, freq, weight, **kwargs):
    profile = make_profile(bb_id, freq, weight, **kwargs)
    return BlockWorkload(
        bb_id=bb_id,
        exec_freq=freq,
        dfg=generate_dfg(profile),
        comm_words_in=profile.live_in_words,
        comm_words_out=profile.live_out_words,
    )


def _skewed_handmade():
    """Three-kernel trap: the top-weight kernel saves ~2% of what each of
    the two lighter kernels saves (communication cancels its FPGA time),
    so a 2-move budget spent by weight order wastes a slot."""
    return ApplicationWorkload(
        name="skewed-handmade",
        blocks=[
            _block(1, 3000, 20, width=1.0, live=(55, 55)),
            _block(2, 900, 50, mul_fraction=0.5, live=(2, 1)),
            _block(3, 800, 48, mul_fraction=0.5, live=(2, 1)),
            _block(4, 50, 6),
        ],
    )


def _skewed_generated():
    """Same trap, grown statistically: heavy kernels with inflated
    communication on top of a synthetic base workload."""
    base = synthetic_application(
        10, seed=8, kernel_fraction=0.5, comm_intensity=0.1,
        name="skewed-generated",
    )
    blocks = list(base.blocks)
    blocks.append(_block(90, 2600, 24, width=1.0, live=(55, 55)))
    blocks.append(_block(91, 700, 52, mul_fraction=0.5, live=(2, 1)))
    blocks.append(_block(92, 600, 50, mul_fraction=0.5, live=(2, 1)))
    return ApplicationWorkload(name=base.name, blocks=blocks)


SCENARIOS = {
    "skewed-handmade": (_skewed_handmade, 2),
    "skewed-generated": (_skewed_generated, 2),
}


def _run_scenario(workload, budget):
    platform = paper_platform(1500, 2)
    rows = {}
    fronts = []
    for spec in SPECS:
        partitioner = make_partitioner(
            spec,
            workload,
            platform,
            config=EngineConfig(
                stop_at_constraint=False, max_kernels_moved=budget
            ),
        )
        started = time.perf_counter()
        result = partitioner.run(1)  # unreachable: minimize outright
        elapsed = time.perf_counter() - started
        front = partitioner.pareto_front()
        fronts.append(front)
        rows[spec.name] = {
            "label": spec.label,
            "final_cycles": result.final_cycles,
            "initial_cycles": result.initial_cycles,
            "moved_bb_ids": list(result.moved_bb_ids),
            "reduction_percent": round(result.reduction_percent, 2),
            "visited_configurations": len(partitioner.visited),
            "pareto_front_size": len(front),
            "seconds": round(elapsed, 6),
            "configs_per_second": (
                round(len(partitioner.visited) / elapsed)
                if elapsed > 0
                else None
            ),
        }
    combined = front_of_results(fronts)
    return {
        "move_budget": budget,
        "algorithms": rows,
        "combined_front": [point.to_dict() for point in combined],
    }


@pytest.fixture(scope="module")
def report():
    scenarios = {
        name: _run_scenario(factory(), budget)
        for name, (factory, budget) in SCENARIOS.items()
    }
    return {"bench": "search_algorithms", "scenarios": scenarios}


def test_exhaustive_lower_bounds_everything(report):
    for name, scenario in report["scenarios"].items():
        rows = scenario["algorithms"]
        optimum = rows["exhaustive"]["final_cycles"]
        for algorithm, row in rows.items():
            assert row["final_cycles"] >= optimum, (name, algorithm)


def test_heuristics_beat_greedy_on_skewed_workloads(report, capsys):
    """The acceptance claim: annealing AND multi-start find
    configurations budgeted greedy misses, on every skewed scenario."""
    with capsys.disabled():
        print()
        for name, scenario in report["scenarios"].items():
            rows = scenario["algorithms"]
            print(
                f"  {name} (budget {scenario['move_budget']}): "
                + ", ".join(
                    f"{algorithm} {row['final_cycles']}"
                    for algorithm, row in rows.items()
                )
            )
    for name, scenario in report["scenarios"].items():
        rows = scenario["algorithms"]
        greedy = rows["greedy"]["final_cycles"]
        assert rows["annealing"]["final_cycles"] < greedy, name
        assert rows["multi_start"]["final_cycles"] < greedy, name
        # The best heuristic reaches the enumerated optimum.
        assert (
            min(
                rows["annealing"]["final_cycles"],
                rows["multi_start"]["final_cycles"],
            )
            == rows["exhaustive"]["final_cycles"]
        ), name


def test_no_algorithm_regresses_from_all_fpga(report):
    for scenario in report["scenarios"].values():
        for row in scenario["algorithms"].values():
            assert row["final_cycles"] <= row["initial_cycles"]


def test_protocol_greedy_matches_engine_on_scenarios(report):
    for name, (factory, budget) in SCENARIOS.items():
        workload = factory()
        platform = paper_platform(1500, 2)
        config = dict(stop_at_constraint=False, max_kernels_moved=budget)
        engine = PartitioningEngine(
            workload, platform, config=EngineConfig(**config)
        )
        greedy = make_partitioner(
            AlgorithmSpec.greedy(), workload, platform,
            config=EngineConfig(**config),
        )
        assert greedy.run(1) == engine.run(1), name


def test_combined_front_spans_tradeoffs(report):
    for scenario in report["scenarios"].values():
        front = scenario["combined_front"]
        assert front
        # The all-FPGA corner (0 moves) is always non-dominated.
        assert any(p["moved_kernel_count"] == 0 for p in front)


def test_write_bench_json(report):
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    loaded = json.loads(BENCH_PATH.read_text())
    for scenario in loaded["scenarios"].values():
        rows = scenario["algorithms"]
        assert rows["annealing"]["final_cycles"] < rows["greedy"]["final_cycles"]
