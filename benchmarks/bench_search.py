"""Search-algorithm bench: quality of the heuristics AND throughput of
the packed substrate.

Two claims are asserted here and recorded in ``BENCH_search.json`` at
the repo root (uploaded as a CI artifact):

**Quality** (the PR 3 acceptance, unchanged): on skewed workloads where
the Eq. 1 weight order misleads a budgeted greedy, ``annealing`` and
``multi_start`` strictly beat greedy and recover the ``exhaustive``
optimum, and the protocol greedy stays bit-identical to the engine.

**Throughput** (this PR's acceptance): every algorithm evaluates
configurations on the packed cost-table substrate at ≥ 10× the
configs/second the committed pre-packed baseline recorded
(``COMMITTED_CONFIGS_PER_SECOND`` below, the numbers shipped in
``BENCH_search.json`` before the packed substrate landed), and on a
16-kernel enumeration (65,536 subsets, ``max_candidates=20``) the
packed Gray-code walk is ≥ 10× faster than the object-substrate DFS
while certifying the *same* optimum — identical ``final_cycles``,
``moved_bb_ids`` and Pareto fronts.

Timing methodology: pricing (block mapping) is warmed before the timer
starts — ``initial_cycles()`` prices every block on either substrate —
so configs/second measures configuration *evaluation*, not DFG
scheduling; each measurement is the best of ``REPEATS`` fresh
partitioners (packed ones share one injected table, which is exactly
how the explore/suite layers run).
"""

import json
import time
from pathlib import Path

import pytest

from repro.partition import (
    ApplicationWorkload,
    BlockWorkload,
    CostModel,
    EngineConfig,
    PackedCostTable,
    PartitioningEngine,
)
from repro.platform import paper_platform
from repro.search import AlgorithmSpec, front_of_results, make_partitioner
from repro.workloads import generate_dfg, make_profile, synthetic_application

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_search.json"

REPEATS = 3

SPECS = (
    AlgorithmSpec.greedy(),
    AlgorithmSpec.exhaustive(),
    AlgorithmSpec.multi_start(restarts=16, seed=1),
    AlgorithmSpec.annealing(seed=1),
)

#: configs/second recorded in the committed BENCH_search.json *before*
#: the packed substrate (object CostState pricing, cold models) — the
#: floor the ≥ 10× acceptance claim is measured against.
COMMITTED_CONFIGS_PER_SECOND = {
    "skewed-handmade": {
        "greedy": 551,
        "exhaustive": 2060,
        "multi_start": 1090,
        "annealing": 1731,
    },
    "skewed-generated": {
        "greedy": 115,
        "exhaustive": 1411,
        "multi_start": 281,
        "annealing": 1248,
    },
}


def _block(bb_id, freq, weight, **kwargs):
    profile = make_profile(bb_id, freq, weight, **kwargs)
    return BlockWorkload(
        bb_id=bb_id,
        exec_freq=freq,
        dfg=generate_dfg(profile),
        comm_words_in=profile.live_in_words,
        comm_words_out=profile.live_out_words,
    )


def _skewed_handmade():
    """Three-kernel trap: the top-weight kernel saves ~2% of what each of
    the two lighter kernels saves (communication cancels its FPGA time),
    so a 2-move budget spent by weight order wastes a slot."""
    return ApplicationWorkload(
        name="skewed-handmade",
        blocks=[
            _block(1, 3000, 20, width=1.0, live=(55, 55)),
            _block(2, 900, 50, mul_fraction=0.5, live=(2, 1)),
            _block(3, 800, 48, mul_fraction=0.5, live=(2, 1)),
            _block(4, 50, 6),
        ],
    )


def _skewed_generated():
    """Same trap, grown statistically: heavy kernels with inflated
    communication on top of a synthetic base workload."""
    base = synthetic_application(
        10, seed=8, kernel_fraction=0.5, comm_intensity=0.1,
        name="skewed-generated",
    )
    blocks = list(base.blocks)
    blocks.append(_block(90, 2600, 24, width=1.0, live=(55, 55)))
    blocks.append(_block(91, 700, 52, mul_fraction=0.5, live=(2, 1)))
    blocks.append(_block(92, 600, 50, mul_fraction=0.5, live=(2, 1)))
    return ApplicationWorkload(name=base.name, blocks=blocks)


SCENARIOS = {
    "skewed-handmade": (_skewed_handmade, 2),
    "skewed-generated": (_skewed_generated, 2),
}


def _measure(spec, workload, platform, config_kwargs, substrate, table):
    """(partitioner after one run, best-of-REPEATS search seconds).

    Pricing is excluded: ``initial_cycles()`` warms every block cost
    (and the packed table) before the timer starts; each repeat uses a
    fresh partitioner so no repeat replays another's cached search.
    """
    best_seconds = None
    partitioner = None
    for _ in range(REPEATS):
        partitioner = make_partitioner(
            spec,
            workload,
            platform,
            config=EngineConfig(substrate=substrate, **config_kwargs),
            packed_table=table if substrate == "packed" else None,
        )
        partitioner.initial_cycles()
        started = time.perf_counter()
        partitioner.run(1)  # unreachable: minimize outright
        elapsed = time.perf_counter() - started
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return partitioner, best_seconds


def _configs_per_second(partitioner, seconds):
    if not seconds:
        return None
    return round(partitioner.visited_count / seconds)


def _run_scenario(workload, budget):
    platform = paper_platform(1500, 2)
    table = PackedCostTable.from_model(CostModel(workload, platform))
    config_kwargs = dict(stop_at_constraint=False, max_kernels_moved=budget)
    rows = {}
    fronts = []
    for spec in SPECS:
        packed, packed_seconds = _measure(
            spec, workload, platform, config_kwargs, "packed", table
        )
        reference, object_seconds = _measure(
            spec, workload, platform, config_kwargs, "object", None
        )
        result = packed.run(1)
        # The substrate differential, asserted per scenario: identical
        # results and identical Pareto fronts.
        assert result == reference.run(1), spec.name
        front = packed.pareto_front()
        assert front == reference.pareto_front(), spec.name
        fronts.append(front)
        packed_cps = _configs_per_second(packed, packed_seconds)
        object_cps = _configs_per_second(reference, object_seconds)
        rows[spec.name] = {
            "label": spec.label,
            "final_cycles": result.final_cycles,
            "initial_cycles": result.initial_cycles,
            "moved_bb_ids": list(result.moved_bb_ids),
            "reduction_percent": round(result.reduction_percent, 2),
            "visited_configurations": packed.visited_count,
            "pareto_front_size": len(front),
            "seconds": round(packed_seconds, 6),
            "configs_per_second": packed_cps,
            "object_seconds": round(object_seconds, 6),
            "object_configs_per_second": object_cps,
            "packed_speedup": (
                round(object_seconds / packed_seconds, 1)
                if packed_seconds
                else None
            ),
        }
    combined = front_of_results(fronts)
    return {
        "move_budget": budget,
        "algorithms": rows,
        "combined_front": [point.to_dict() for point in combined],
    }


def _run_throughput_scenario():
    """The ≥ 10× packed-vs-object claim needs enough configurations to
    time: a 16-kernel synthetic workload enumerated exhaustively
    (65,536 subsets) under the raised ``max_candidates=20`` guard."""
    workload = synthetic_application(
        20, seed=5, kernel_fraction=0.8, comm_intensity=0.5,
        name="throughput-16k",
    )
    platform = paper_platform(1500, 2)
    table = PackedCostTable.from_model(CostModel(workload, platform))
    spec = AlgorithmSpec.exhaustive(max_candidates=20)
    config_kwargs = dict(stop_at_constraint=False)
    packed, packed_seconds = _measure(
        spec, workload, platform, config_kwargs, "packed", table
    )
    reference, object_seconds = _measure(
        spec, workload, platform, config_kwargs, "object", None
    )
    packed_result = packed.run(1)
    object_result = reference.run(1)
    packed_front = packed.pareto_front()
    object_front = reference.pareto_front()
    return {
        "workload": workload.name,
        "algorithm": spec.label,
        "visited_configurations": packed.visited_count,
        "identical_results": packed_result == object_result,
        "identical_fronts": packed_front == object_front,
        "final_cycles": packed_result.final_cycles,
        "moved_bb_ids": list(packed_result.moved_bb_ids),
        "pareto_front_size": len(packed_front),
        "packed_seconds": round(packed_seconds, 6),
        "object_seconds": round(object_seconds, 6),
        "packed_configs_per_second": _configs_per_second(
            packed, packed_seconds
        ),
        "object_configs_per_second": _configs_per_second(
            reference, object_seconds
        ),
        "packed_speedup": round(object_seconds / packed_seconds, 1),
    }


def _run_exact_search_report():
    """Sharded Gray walk + branch-and-bound on the 65,536-subset
    enumeration, plus the 34-kernel branch-and-bound certification.

    Shard scaling is computed from the per-shard *walk* seconds the
    workers measure themselves (visits / Σ seconds for one worker,
    visits / max seconds for the fan-out's critical path), so the ~200ms
    process-spawn overhead — fixed cost, amortized over real 2^32-scale
    walks — does not drown the 10ms walk this bench can afford to time.
    """
    workload = synthetic_application(
        20, seed=5, kernel_fraction=0.8, comm_intensity=0.5,
        name="throughput-16k",
    )
    platform = paper_platform(1500, 2)
    table = PackedCostTable.from_model(CostModel(workload, platform))

    def fresh(spec, **config_kwargs):
        partitioner = make_partitioner(
            spec, workload, platform,
            config=EngineConfig(stop_at_constraint=False, **config_kwargs),
            packed_table=table,
        )
        partitioner.initial_cycles()
        started = time.perf_counter()
        result = partitioner.run(1)
        return partitioner, result, time.perf_counter() - started

    serial, serial_result, serial_seconds = fresh(AlgorithmSpec.exhaustive())
    serial_front = serial.pareto_front()

    sharded, sharded_result, sharded_seconds = fresh(
        AlgorithmSpec.exhaustive(shards=4)
    )
    walk_seconds = [s["seconds"] for s in sharded.shard_outcomes]
    visits = sum(s["visits"] for s in sharded.shard_outcomes)
    one_worker_cps = visits / sum(walk_seconds)
    four_worker_cps = visits / max(walk_seconds)

    bnb, bnb_result, bnb_seconds = fresh(AlgorithmSpec.exhaustive(prune=True))

    certify_workload = synthetic_application(
        40, seed=9, kernel_fraction=0.85, name="certify-34",
    )
    certify_table = PackedCostTable.from_model(
        CostModel(certify_workload, platform)
    )
    certify = make_partitioner(
        AlgorithmSpec.exhaustive(prune=True), certify_workload, platform,
        config=EngineConfig(stop_at_constraint=False),
        packed_table=certify_table,
    )
    certify.initial_cycles()
    started = time.perf_counter()
    certify_result = certify.run(1)
    certify_seconds = time.perf_counter() - started
    # Eq. 2 is additive, so the unconstrained optimum is analytically
    # certain: initial plus every negative per-kernel delta.
    analytic_ticks = certify_table.initial_ticks + sum(
        delta for delta in certify_table.move_delta if delta < 0
    )

    return {
        "workload": workload.name,
        "visited_configurations": serial.visited_count,
        "serial_seconds": round(serial_seconds, 6),
        "sharded": {
            "shards": 4,
            "wall_seconds": round(sharded_seconds, 6),
            "shard_walk_seconds": [round(s, 6) for s in walk_seconds],
            "shard_visits": [s["visits"] for s in sharded.shard_outcomes],
            "one_worker_configs_per_second": round(one_worker_cps),
            "four_worker_configs_per_second": round(four_worker_cps),
            "walk_scaling": round(four_worker_cps / one_worker_cps, 2),
            "identical_results": sharded_result == serial_result,
            "identical_fronts": sharded.pareto_front() == serial_front,
            "identical_visit_counts": (
                sharded.visited_count == serial.visited_count
            ),
        },
        "branch_and_bound": {
            "seconds": round(bnb_seconds, 6),
            "visited_configurations": bnb.visited_count,
            "pruned_subtrees": bnb.pruned_subtrees,
            "identical_results": bnb_result == serial_result,
            "identical_fronts": bnb.pareto_front() == serial_front,
        },
        "certify_34": {
            "workload": certify_workload.name,
            "kernels": len(certify_table),
            "subset_space": f"2^{len(certify_table)}",
            "seconds": round(certify_seconds, 6),
            "visited_configurations": certify.visited_count,
            "pruned_subtrees": certify.pruned_subtrees,
            "final_cycles": certify_result.final_cycles,
            "analytically_certified": (
                certify_result.final_cycles
                == certify_table.ticks_to_cycles(analytic_ticks)
            ),
        },
    }


@pytest.fixture(scope="module")
def report():
    scenarios = {
        name: _run_scenario(factory(), budget)
        for name, (factory, budget) in SCENARIOS.items()
    }
    return {
        "bench": "search_algorithms",
        "scenarios": scenarios,
        "throughput": _run_throughput_scenario(),
        "exact_search": _run_exact_search_report(),
    }


# ----------------------------------------------------------------------
# Quality (PR 3 acceptance, now running on the packed substrate)
# ----------------------------------------------------------------------
def test_exhaustive_lower_bounds_everything(report):
    for name, scenario in report["scenarios"].items():
        rows = scenario["algorithms"]
        optimum = rows["exhaustive"]["final_cycles"]
        for algorithm, row in rows.items():
            assert row["final_cycles"] >= optimum, (name, algorithm)


def test_heuristics_beat_greedy_on_skewed_workloads(report, capsys):
    """Annealing AND multi-start find configurations budgeted greedy
    misses, on every skewed scenario."""
    with capsys.disabled():
        print()
        for name, scenario in report["scenarios"].items():
            rows = scenario["algorithms"]
            print(
                f"  {name} (budget {scenario['move_budget']}): "
                + ", ".join(
                    f"{algorithm} {row['final_cycles']}"
                    for algorithm, row in rows.items()
                )
            )
    for name, scenario in report["scenarios"].items():
        rows = scenario["algorithms"]
        greedy = rows["greedy"]["final_cycles"]
        assert rows["annealing"]["final_cycles"] < greedy, name
        assert rows["multi_start"]["final_cycles"] < greedy, name
        # The best heuristic reaches the enumerated optimum.
        assert (
            min(
                rows["annealing"]["final_cycles"],
                rows["multi_start"]["final_cycles"],
            )
            == rows["exhaustive"]["final_cycles"]
        ), name


def test_no_algorithm_regresses_from_all_fpga(report):
    for scenario in report["scenarios"].values():
        for row in scenario["algorithms"].values():
            assert row["final_cycles"] <= row["initial_cycles"]


def test_protocol_greedy_matches_engine_on_scenarios(report):
    for name, (factory, budget) in SCENARIOS.items():
        workload = factory()
        platform = paper_platform(1500, 2)
        config = dict(stop_at_constraint=False, max_kernels_moved=budget)
        engine = PartitioningEngine(
            workload, platform, config=EngineConfig(**config)
        )
        greedy = make_partitioner(
            AlgorithmSpec.greedy(), workload, platform,
            config=EngineConfig(**config),
        )
        assert greedy.run(1) == engine.run(1), name


def test_combined_front_spans_tradeoffs(report):
    for scenario in report["scenarios"].values():
        front = scenario["combined_front"]
        assert front
        # The all-FPGA corner (0 moves) is always non-dominated.
        assert any(p["moved_kernel_count"] == 0 for p in front)


# ----------------------------------------------------------------------
# Throughput (this PR's acceptance)
# ----------------------------------------------------------------------
def test_packed_beats_committed_baseline_by_10x(report, capsys):
    """Every algorithm on every skewed scenario evaluates ≥ 10× the
    configs/second the committed pre-packed BENCH_search.json shipped."""
    with capsys.disabled():
        print()
        for name, scenario in report["scenarios"].items():
            for algorithm, row in scenario["algorithms"].items():
                committed = COMMITTED_CONFIGS_PER_SECOND[name][algorithm]
                print(
                    f"  {name}/{algorithm}: {row['configs_per_second']:,} "
                    f"cfg/s packed vs {committed:,} committed "
                    f"({row['configs_per_second'] / committed:.0f}x), "
                    f"object now {row['object_configs_per_second']:,}"
                )
    for name, scenario in report["scenarios"].items():
        for algorithm, row in scenario["algorithms"].items():
            committed = COMMITTED_CONFIGS_PER_SECOND[name][algorithm]
            assert row["configs_per_second"] >= 10 * committed, (
                name, algorithm, row["configs_per_second"], committed,
            )


def test_packed_enumeration_10x_object_with_identical_optimum(
    report, capsys
):
    """The Gray-code walk vs the object DFS on 65,536 subsets at
    ``max_candidates=20``: ≥ 10× the throughput, same certified optimum,
    same Pareto front."""
    throughput = report["throughput"]
    with capsys.disabled():
        print(
            f"\n  {throughput['workload']}: "
            f"{throughput['visited_configurations']:,} configs — packed "
            f"{throughput['packed_configs_per_second']:,}/s vs object "
            f"{throughput['object_configs_per_second']:,}/s "
            f"({throughput['packed_speedup']}x)"
        )
    assert throughput["visited_configurations"] == 2 ** 16
    assert throughput["identical_results"]
    assert throughput["identical_fronts"]
    assert (
        throughput["packed_configs_per_second"]
        >= 10 * throughput["object_configs_per_second"]
    )


def test_sharded_walk_matches_serial_and_scales(report, capsys):
    """Sharding the 65,536-subset Gray walk is bit-identical to the
    serial enumeration; on a ≥ 4-core machine the per-shard walk times
    show ≥ 2× throughput going 1 → 4 workers."""
    exact = report["exact_search"]["sharded"]
    with capsys.disabled():
        print(
            f"\n  sharded walk: {exact['one_worker_configs_per_second']:,}"
            f"/s (1 worker) -> {exact['four_worker_configs_per_second']:,}"
            f"/s (4 workers), {exact['walk_scaling']}x"
        )
    assert exact["identical_results"]
    assert exact["identical_fronts"]
    assert exact["identical_visit_counts"]
    import os

    if (os.cpu_count() or 1) >= 4:
        assert exact["walk_scaling"] >= 2.0, exact


def test_branch_and_bound_certifies_with_fewer_visits(report, capsys):
    """B&B visits strictly fewer configurations than the full walk,
    prunes a nonzero number of subtrees, and still produces the
    identical optimum and Pareto front — then certifies a 2^34 space
    against the analytic Eq. 2 optimum in seconds."""
    exact = report["exact_search"]
    bnb = exact["branch_and_bound"]
    certify = exact["certify_34"]
    with capsys.disabled():
        print(
            f"\n  B&B: {bnb['visited_configurations']:,} of "
            f"{exact['visited_configurations']:,} configs visited, "
            f"{bnb['pruned_subtrees']:,} subtrees pruned"
        )
        print(
            f"  certify-34: {certify['subset_space']} space certified in "
            f"{certify['seconds']:.2f}s "
            f"({certify['visited_configurations']:,} visits)"
        )
    assert bnb["identical_results"]
    assert bnb["identical_fronts"]
    assert (
        bnb["visited_configurations"] < exact["visited_configurations"]
    )
    assert bnb["pruned_subtrees"] > 0
    assert certify["kernels"] >= 32
    assert certify["analytically_certified"]
    assert certify["seconds"] < 60
    assert certify["pruned_subtrees"] > 0


def test_write_bench_json(report):
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    loaded = json.loads(BENCH_PATH.read_text())
    for name, scenario in loaded["scenarios"].items():
        rows = scenario["algorithms"]
        assert rows["annealing"]["final_cycles"] < rows["greedy"]["final_cycles"]
        for algorithm, row in rows.items():
            committed = COMMITTED_CONFIGS_PER_SECOND[name][algorithm]
            assert row["configs_per_second"] >= 10 * committed
    assert loaded["throughput"]["identical_results"]
    assert loaded["exact_search"]["branch_and_bound"]["pruned_subtrees"] > 0
    assert loaded["exact_search"]["certify_34"]["analytically_certified"]
