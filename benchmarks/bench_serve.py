"""Serve load bench: hundreds of concurrent jobs, one priced table.

Drives the in-process :class:`repro.serve.Server` with a skewed
synthetic job mix — many concurrent requests, few distinct
(workload × platform) pairs — and checks the properties the serving
layer exists for:

* **batching collapses duplicate pricing**: N jobs over K pairs build
  exactly K cost tables (``cost_table_builds`` telemetry), never N;
* **served results are bit-identical** to what a serial
  ``python -m repro partition`` run produces for the same spec;
* **cycles are deterministic** even when arrival order is not — two
  loads with different shuffles decide the same splits;
* **latency/throughput do not regress**: p50/p99 and jobs/sec gate
  against ``benchmarks/serve_baseline.json``.

The gate is deliberately noise-floored: CI machines differ from the
machine that recorded the baseline, so the bench fails only on a
``REPRO_SERVE_GATE_FACTOR``-fold (default 4x) regression, with an
absolute p99 floor below which timing scatter is ignored.  Same-machine
comparisons (developer laptops re-running the bench) are therefore the
only place small drifts show — CI catches collapses, not ripples.

``REPRO_SERVE_JOBS`` shrinks/grows the load (CI uses a short profile).
Metrics land in ``BENCH_serve.json`` (uploaded as a CI artifact) and,
as ``serve-*`` scenario rows, in a suite store so the longitudinal
trend tooling covers serving alongside partitioning.
"""

import json
import os
import random
import threading
import time
from pathlib import Path

from repro import telemetry
from repro.explore import PlatformSpec, WorkloadSpec
from repro.search import make_partitioner
from repro.serve import JobRequest, Server, ServerConfig
from repro.specs import algorithm_spec_from_text
from repro.suite import ResultStore, ScenarioResult, SuiteRun

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
BASELINE_PATH = Path(__file__).resolve().parent / "serve_baseline.json"

#: Default concurrent-job count; CI overrides with a short profile.
DEFAULT_JOBS = 240

#: The skewed pair mix: most load hammers one hot pair, a tail of
#: colder pairs keeps the LRU honest.  Weights sum to 1.
PAIR_MIX = (
    (WorkloadSpec.synthetic(48, seed=11), PlatformSpec(), 0.625),
    (WorkloadSpec.synthetic(48, seed=23), PlatformSpec(afpga=900), 0.2),
    (WorkloadSpec.synthetic(32, seed=7), PlatformSpec(), 0.1),
    (WorkloadSpec.synthetic(32, seed=41), PlatformSpec(cgc_count=3), 0.075),
)

GREEDY = algorithm_spec_from_text("greedy")


def job_count() -> int:
    return int(os.environ.get("REPRO_SERVE_JOBS", str(DEFAULT_JOBS)))


def build_requests(jobs: int, shuffle_seed: int) -> list[JobRequest]:
    """The deterministic skewed load: same multiset of jobs for every
    seed, a different arrival order per seed."""
    requests = []
    for index in range(jobs):
        # Deterministic pair assignment by position in the mix, so two
        # shuffles serve the exact same multiset of jobs.
        point = (index + 0.5) / jobs
        cumulative = 0.0
        workload, platform, _ = PAIR_MIX[-1]
        for candidate_workload, candidate_platform, weight in PAIR_MIX:
            cumulative += weight
            if point < cumulative:
                workload, platform = candidate_workload, candidate_platform
                break
        requests.append(
            JobRequest(
                workload=workload,
                platform=platform,
                fraction=0.5,
                algorithm=GREEDY,
            )
        )
    random.Random(shuffle_seed).shuffle(requests)
    return requests


def run_load(requests, workers=2, submit_threads=4):
    """Submit ``requests`` from several threads at once, await all.

    Returns ``(records, wall_seconds, cost_table_builds)``; records are
    in submission-id order regardless of which thread won each race.
    """
    telemetry.reset_trace()
    config = ServerConfig(
        workers=workers,
        queue_capacity=max(len(requests) * 2, 64),
        batch_window_seconds=0.02,
    )
    job_ids: list[int] = []
    id_lock = threading.Lock()
    started = time.perf_counter()
    with Server(config) as server:
        def submit(chunk):
            for request in chunk:
                job_id = server.submit(request)
                with id_lock:
                    job_ids.append(job_id)

        chunk_size = (len(requests) + submit_threads - 1) // submit_threads
        threads = [
            threading.Thread(
                target=submit,
                args=(requests[i:i + chunk_size],),
            )
            for i in range(0, len(requests), chunk_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = [
            server.await_result(job_id, timeout=300.0)
            for job_id in sorted(job_ids)
        ]
    wall = time.perf_counter() - started
    builds = telemetry.get_trace().total_counter("cost_table_builds")
    telemetry.reset_trace()
    return records, wall, builds


def percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def gate_failures(current, baseline, factor, p99_floor=0.25):
    """The regression gate, as data -> reasons (empty means green).

    p99 may grow to ``baseline * factor`` before failing, and never
    fails below the absolute ``p99_floor`` (timer scatter on short
    loads); throughput may fall to ``baseline / factor``.
    """
    failures = []
    p99_budget = max(baseline["p99_seconds"] * factor, p99_floor)
    if current["p99_seconds"] > p99_budget:
        failures.append(
            f"p99 {current['p99_seconds']:.3f}s exceeds budget "
            f"{p99_budget:.3f}s (baseline "
            f"{baseline['p99_seconds']:.3f}s x{factor})"
        )
    floor = baseline["jobs_per_second"] / factor
    if current["jobs_per_second"] < floor:
        failures.append(
            f"throughput {current['jobs_per_second']:.1f} jobs/s below "
            f"floor {floor:.1f} (baseline "
            f"{baseline['jobs_per_second']:.1f} / {factor})"
        )
    return failures


def serial_reference(request: JobRequest):
    """What ``python -m repro partition`` would decide for this job."""
    workload = request.workload.build()
    platform = request.platform.build()
    partitioner = make_partitioner(request.algorithm, workload, platform)
    constraint = max(
        1, round(partitioner.initial_cycles() * request.fraction)
    )
    return partitioner.run(constraint)


def test_serve_load_batches_collapse_and_gate(capsys, tmp_path):
    jobs = job_count()
    requests = build_requests(jobs, shuffle_seed=1)
    records, wall, builds = run_load(requests)

    assert all(record.state == "done" for record in records)
    # The collapse claim: one priced table per distinct pair, period.
    assert builds == len(PAIR_MIX), (
        f"{jobs} jobs over {len(PAIR_MIX)} pairs built {builds} cost "
        "tables; batching failed to collapse duplicate pricing"
    )

    latencies = [record.latency_seconds() for record in records]
    metrics = {
        "jobs": jobs,
        "distinct_pairs": len(PAIR_MIX),
        "cost_table_builds": builds,
        "collapse_factor": jobs / builds,
        "p50_seconds": percentile(latencies, 0.50),
        "p99_seconds": percentile(latencies, 0.99),
        "jobs_per_second": jobs / wall,
        "wall_seconds": wall,
    }

    # serve-* scenario rows: p99 as the wall metric, jobs/sec as the
    # throughput metric, so the longitudinal trend tooling graphs
    # serving next to partitioning.
    run = SuiteRun(label="serve-load", fingerprint="serve-bench")
    for pair_index, (workload, platform, _) in enumerate(PAIR_MIX):
        pair_records = [
            r for r in records
            if r.request.workload == workload
            and r.request.platform == platform
        ]
        result = pair_records[0].result
        run.results.append(
            ScenarioResult(
                scenario=f"serve-pair-{pair_index}",
                workload=workload.label,
                platform=platform.label,
                algorithm="greedy",
                constraint_fraction=0.5,
                timing_constraint=result.timing_constraint,
                initial_cycles=result.initial_cycles,
                total_cycles=result.final_cycles,
                reduction_percent=(
                    100.0
                    * (result.initial_cycles - result.final_cycles)
                    / result.initial_cycles
                ),
                kernels_moved=len(result.moved_bb_ids),
                moved_bb_ids=tuple(result.moved_bb_ids),
                rows_used=0,
                constraint_met=result.constraint_met,
                wall_time_seconds=metrics["p99_seconds"],
                configs_per_second=metrics["jobs_per_second"],
            )
        )
    with ResultStore(tmp_path / "serve_trend.sqlite") as store:
        store.record_run(run)
        points = store.scenario_trend_points("serve-pair-0")
    assert len(points) == 1

    BENCH_PATH.write_text(
        json.dumps(
            {"serve": metrics, "suite_run": run.to_json_dict()}, indent=2
        )
        + "\n"
    )

    baseline = json.loads(BASELINE_PATH.read_text())["serve"]
    factor = float(os.environ.get("REPRO_SERVE_GATE_FACTOR", "4.0"))
    failures = gate_failures(metrics, baseline, factor)
    with capsys.disabled():
        print(
            f"\n[bench_serve] {jobs} jobs, {builds} builds "
            f"(collapse x{metrics['collapse_factor']:.0f}), "
            f"p50={metrics['p50_seconds']:.3f}s "
            f"p99={metrics['p99_seconds']:.3f}s "
            f"{metrics['jobs_per_second']:.1f} jobs/s"
        )
        print(f"[bench_serve] results -> {BENCH_PATH}")
    assert not failures, "; ".join(failures)


def test_served_results_bit_identical_to_serial_partition():
    """Every distinct pair's served split equals the serial CLI path."""
    requests = [
        JobRequest(
            workload=workload, platform=platform, fraction=0.5,
            algorithm=GREEDY,
        )
        for workload, platform, _ in PAIR_MIX
    ]
    # Three copies of each pair so batching actually engages.
    records, _, builds = run_load(requests * 3, workers=1)
    assert builds == len(PAIR_MIX)
    for request in requests:
        reference = serial_reference(request)
        served = [
            r.result for r in records if r.request.pair_key == request.pair_key
        ]
        assert served, request.describe()
        for result in served:
            assert result.final_cycles == reference.final_cycles
            assert result.moved_bb_ids == reference.moved_bb_ids
            assert result.timing_constraint == reference.timing_constraint
            assert [s.total_cycles for s in result.steps] == [
                s.total_cycles for s in reference.steps
            ]


def test_cycles_deterministic_across_arrival_orders():
    """Different arrival orders, same decisions: the job multiset alone
    determines every split."""
    jobs = min(job_count(), 60)
    first, _, _ = run_load(build_requests(jobs, shuffle_seed=2))
    second, _, _ = run_load(build_requests(jobs, shuffle_seed=3))

    def by_pair(records):
        outcome = {}
        for record in records:
            outcome.setdefault(record.request.pair_key, set()).add(
                (
                    record.result.final_cycles,
                    tuple(record.result.moved_bb_ids),
                )
            )
        return outcome

    first_outcomes, second_outcomes = by_pair(first), by_pair(second)
    assert first_outcomes == second_outcomes
    # Determinism within a pair too: every job on a pair decided the
    # same split, not merely the same set across runs.
    assert all(len(splits) == 1 for splits in first_outcomes.values())


def test_gate_detects_injected_regressions():
    """Doctored metrics must trip the gate (the gate logic itself is
    timing-independent, so this cannot flake)."""
    baseline = json.loads(BASELINE_PATH.read_text())["serve"]
    healthy = dict(baseline)
    assert gate_failures(healthy, baseline, factor=4.0) == []

    slow = dict(baseline, p99_seconds=baseline["p99_seconds"] * 5 + 0.5)
    assert any(
        "p99" in reason
        for reason in gate_failures(slow, baseline, factor=4.0)
    )

    cold = dict(
        baseline, jobs_per_second=baseline["jobs_per_second"] / 10
    )
    assert any(
        "throughput" in reason
        for reason in gate_failures(cold, baseline, factor=4.0)
    )

    # The noise floor: a p99 under the absolute floor never fails, no
    # matter how tiny the baseline was.
    jittery = dict(baseline, p99_seconds=0.2)
    tiny_baseline = dict(baseline, p99_seconds=0.001)
    assert gate_failures(jittery, tiny_baseline, factor=4.0) == []


def test_bench_artifact_is_readable():
    """BENCH_serve.json (written above) parses and carries the run."""
    if not BENCH_PATH.exists():  # ordering safety on partial runs
        return
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["serve"]["cost_table_builds"] >= 1
    assert SuiteRun.from_json_dict(payload["suite_run"]).scenario_names()
