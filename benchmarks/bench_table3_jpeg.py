"""Table 3 regeneration bench: JPEG partitioning on all four platforms."""

import pytest

from repro.partition import PartitioningEngine
from repro.platform import paper_platform
from repro.reporting import render_partition_table, reproduce_table3, scaled_constraint
from repro.workloads import JPEG_TIMING_CONSTRAINT, PAPER_TABLE3_JPEG

CONFIGS = [(row.afpga, row.cgc_count) for row in PAPER_TABLE3_JPEG]


@pytest.mark.parametrize("afpga,cgc_count", CONFIGS)
def test_table3_configuration(benchmark, jpeg, afpga, cgc_count):
    constraint, _ = scaled_constraint(
        jpeg, PAPER_TABLE3_JPEG, JPEG_TIMING_CONSTRAINT
    )
    paper_row = next(
        r for r in PAPER_TABLE3_JPEG
        if (r.afpga, r.cgc_count) == (afpga, cgc_count)
    )

    def run_engine():
        engine = PartitioningEngine(jpeg, paper_platform(afpga, cgc_count))
        return engine.run(constraint)

    result = benchmark(run_engine)
    assert result.constraint_met
    assert result.moved_bb_ids == list(paper_row.moved_bbs) == [6, 2, 1]


def test_table3_full_reproduction(benchmark, capsys):
    table = benchmark(reproduce_table3)
    assert table.all_sets_match and table.all_constraints_met
    with capsys.disabled():
        print()
        print(render_partition_table(table))
