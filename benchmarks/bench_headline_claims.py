"""Headline-claims bench: the abstract's numbers and the §4 trends.

The paper's abstract: "a maximum clock cycles decrease of 82% relative to
the ones in an all fine-grain mapping solution is achieved [OFDM].  The
corresponding performance improvement for the JPEG is 43%."  §4 also
observes "as the FPGA area grows, the reduction of clock cycles is
smaller".
"""

from repro.reporting import (
    reproduce_headline_claims,
    reproduce_table2,
    reproduce_table3,
)


def test_headline_claims(benchmark, capsys):
    def run():
        table2 = reproduce_table2()
        table3 = reproduce_table3()
        return reproduce_headline_claims(table2, table3)

    claims = benchmark(run)
    assert claims.ofdm_area_trend_holds
    assert claims.jpeg_area_trend_holds
    assert 70.0 < claims.ofdm_max_reduction < 90.0
    assert 35.0 < claims.jpeg_max_reduction < 55.0
    with capsys.disabled():
        print()
        print("headline claims, ours vs paper:")
        print(
            f"  OFDM max reduction: {claims.ofdm_max_reduction:.1f}% "
            f"(paper {claims.PAPER_OFDM_MAX}%)"
        )
        print(
            f"  JPEG max reduction: {claims.jpeg_max_reduction:.1f}% "
            f"(paper {claims.PAPER_JPEG_MAX}%)"
        )
        print(
            f"  larger A_FPGA => smaller reduction: OFDM "
            f"{claims.ofdm_area_trend_holds}, JPEG "
            f"{claims.jpeg_area_trend_holds} (paper: both hold)"
        )
