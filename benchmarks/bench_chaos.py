"""Chaos bench: deterministic fault schedules through the real server.

Every scenario replays a seed-driven :class:`~repro.faults.FaultPlan`
against an in-process :class:`repro.serve.Server` (real process pool,
real worker deaths) and asserts the three properties the robustness
layer exists for:

* **recovery** — every job reaches ``done`` despite crashed workers,
  flaky tasks and injected stalls, with the supervision counters
  (``pool_rebuilds``, ``task_retries``, ``tasks_recovered``) visible in
  ``stats()["robustness"]``;
* **bit-identity** — the chaotic run's results equal the fault-free
  run's, split for split (supervision may re-run work, never change
  it);
* **bounded p99 inflation** — chaos costs latency, but only the
  injected latency plus a recovery allowance: the chaotic p99 must stay
  under ``fault-free p99 x REPRO_CHAOS_GATE_FACTOR + injected budget``.

All schedules are static data addressed by ``(task_index, attempt)``,
so a failing run replays exactly and the assertions cannot flake on
fault placement.  ``REPRO_CHAOS_JOBS`` shrinks the load for the CI
short profile.  Metrics land in ``BENCH_chaos.json`` (a CI artifact).
"""

import json
import os
import time
import warnings
from pathlib import Path

from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.parallel import map_tasks
from repro.serve import JobRequest, Server, ServerConfig
from repro.specs import algorithm_spec_from_text, workload_spec_from_text

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: Default job count per scenario; CI overrides with a short profile.
DEFAULT_JOBS = 24

#: Injected stall length for the latency-inflation scenario.  Short on
#: purpose: the gate must see it as *bounded* injected latency.
SLOW_SECONDS = 0.15

GREEDY = algorithm_spec_from_text("greedy")
WORKLOAD = workload_spec_from_text("synthetic:48:seed=11")

_metrics: dict[str, object] = {}


def job_count() -> int:
    return int(os.environ.get("REPRO_CHAOS_JOBS", str(DEFAULT_JOBS)))


def gate_factor() -> float:
    return float(os.environ.get("REPRO_CHAOS_GATE_FACTOR", "4.0"))


def run_load(config: ServerConfig, jobs: int):
    """Submit ``jobs`` identical greedy jobs, await all, return
    ``(payloads, latencies, wall_seconds, stats)``."""
    started = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with Server(config) as server:
            job_ids = [
                server.submit(
                    JobRequest(
                        workload=WORKLOAD, fraction=0.5, algorithm=GREEDY
                    )
                )
                for __ in range(jobs)
            ]
            records = [
                server.await_result(job_id, timeout=300.0)
                for job_id in job_ids
            ]
            stats = server.stats()
    wall = time.perf_counter() - started
    payloads = [record.to_payload() for record in records]
    latencies = [record.latency_seconds() for record in records]
    return payloads, latencies, wall, stats


def percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def results_of(payloads):
    return [payload["result"] for payload in payloads]


def baseline():
    """The fault-free reference run (memoized across tests)."""
    if "baseline" not in _metrics:
        jobs = job_count()
        payloads, latencies, wall, __ = run_load(
            ServerConfig(workers=4, batch_window_seconds=0.05), jobs
        )
        assert all(p["state"] == "done" for p in payloads)
        _metrics["baseline"] = {
            "jobs": jobs,
            "p50_seconds": percentile(latencies, 0.50),
            "p99_seconds": percentile(latencies, 0.99),
            "wall_seconds": wall,
            "results": results_of(payloads),
        }
    return _metrics["baseline"]


# ----------------------------------------------------------------------
# Scenario 1: worker crashes — recovery and bit-identity
# ----------------------------------------------------------------------
def test_crashed_workers_recover_bit_identical():
    reference = baseline()
    jobs = reference["jobs"]
    # Two of the four workers die on their first task; the supervisor
    # must salvage, rebuild once, and merge bit-identically.  (A pool
    # break re-runs its victims at the next attempt number, so which
    # *other* tasks were in flight is racy — the crash scenario asserts
    # only crash-path counters; retries get their own scenario below.)
    plan = FaultPlan.crash_at(0, 1)
    payloads, latencies, wall, stats = run_load(
        ServerConfig(
            workers=4,
            batch_window_seconds=0.05,
            task_retries=2,
            retry_backoff_seconds=0.01,
            fault_plan=plan,
        ),
        jobs,
    )
    assert all(p["state"] == "done" for p in payloads), [
        p.get("error") for p in payloads if p["state"] != "done"
    ]
    assert results_of(payloads) == reference["results"], (
        "chaotic results diverged from the fault-free run"
    )
    robustness = stats["robustness"]
    assert robustness["pool_rebuilds"] >= 1
    assert robustness["tasks_recovered"] >= 2
    _metrics["crash"] = {
        "p99_seconds": percentile(latencies, 0.99),
        "wall_seconds": wall,
        "pool_rebuilds": robustness["pool_rebuilds"],
        "tasks_recovered": robustness["tasks_recovered"],
    }


def test_flaky_tasks_retry_bit_identical():
    reference = baseline()
    jobs = reference["jobs"]
    # Deterministic flakiness with no pool breaks: first-attempt errors
    # on two tasks must be retried (with backoff) and recovered.
    plan = FaultPlan.of(
        FaultSpec(task_index=0, attempt=0, kind="error", message="flaky"),
        FaultSpec(task_index=2, attempt=0, kind="error", message="flaky"),
    )
    payloads, latencies, wall, stats = run_load(
        ServerConfig(
            workers=4,
            batch_window_seconds=0.05,
            task_retries=2,
            retry_backoff_seconds=0.01,
            fault_plan=plan,
        ),
        jobs,
    )
    assert all(p["state"] == "done" for p in payloads)
    assert results_of(payloads) == reference["results"]
    robustness = stats["robustness"]
    assert robustness["task_retries"] >= 2
    assert robustness["tasks_recovered"] >= 2
    _metrics["flaky"] = {
        "p99_seconds": percentile(latencies, 0.99),
        "wall_seconds": wall,
        "task_retries": robustness["task_retries"],
    }


# ----------------------------------------------------------------------
# Scenario 2: injected stalls — bounded p99 inflation
# ----------------------------------------------------------------------
def test_slow_faults_inflate_p99_boundedly():
    reference = baseline()
    jobs = reference["jobs"]
    plan = FaultPlan.seeded(
        seed=17,
        task_count=jobs,
        slow_rate=0.25,
        slow_seconds=SLOW_SECONDS,
    )
    injected = sum(1 for s in plan.specs if s.kind == "slow")
    assert injected >= 1, "seeded plan injected nothing; raise the rate"
    payloads, latencies, wall, stats = run_load(
        ServerConfig(workers=4, batch_window_seconds=0.05, fault_plan=plan),
        jobs,
    )
    assert all(p["state"] == "done" for p in payloads)
    assert results_of(payloads) == reference["results"]

    p99 = percentile(latencies, 0.99)
    # The stalls are serialized at worst (4 workers, so in practice
    # less); allow the full injected budget plus the regression factor
    # over the fault-free p99.
    budget = (
        reference["p99_seconds"] * gate_factor()
        + injected * SLOW_SECONDS
        + 0.25  # absolute noise floor for short CI profiles
    )
    assert p99 <= budget, (
        f"chaotic p99 {p99:.3f}s exceeds budget {budget:.3f}s "
        f"(fault-free p99 {reference['p99_seconds']:.3f}s, "
        f"{injected} x {SLOW_SECONDS}s injected)"
    )
    _metrics["slow"] = {
        "injected_stalls": injected,
        "p99_seconds": p99,
        "p99_budget_seconds": budget,
        "wall_seconds": wall,
    }


# ----------------------------------------------------------------------
# Scenario 3: hangs under a per-task deadline — the kill path saves time
# ----------------------------------------------------------------------
def _square(task: int) -> int:
    return task * task


def test_hang_is_killed_not_waited_out():
    # Straight through map_tasks (the server does not expose per-task
    # deadlines): a 30 s hang under a 0.5 s deadline must finish in kill
    # time, not hang time, with results intact.
    tasks = list(range(16))
    plan = FaultPlan.of(
        FaultSpec(task_index=5, attempt=0, kind="hang", seconds=30.0)
    )
    counters: dict[str, int] = {}
    started = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        results, __ = map_tasks(
            _square,
            tasks,
            4,
            what="chaos squares",
            policy=RetryPolicy(
                max_attempts=2,
                backoff_seconds=0.0,
                task_timeout_seconds=0.5,
            ),
            fault_plan=plan,
            counters=counters,
        )
    wall = time.perf_counter() - started
    assert results == [task * task for task in tasks]
    assert counters["task_timeouts"] == 1
    assert wall < 15.0, (
        f"hang recovery took {wall:.1f}s; the deadline kill path is "
        "not engaging"
    )
    _metrics["hang"] = {
        "wall_seconds": wall,
        "task_timeouts": counters["task_timeouts"],
    }


# ----------------------------------------------------------------------
# Artifact
# ----------------------------------------------------------------------
def test_write_chaos_artifact(capsys):
    assert "baseline" in _metrics, "scenario tests did not run first"
    payload = {
        name: (
            {k: v for k, v in metrics.items() if k != "results"}
            if isinstance(metrics, dict)
            else metrics
        )
        for name, metrics in _metrics.items()
    }
    payload["gate_factor"] = gate_factor()
    BENCH_PATH.write_text(json.dumps({"chaos": payload}, indent=2) + "\n")
    with capsys.disabled():
        base = _metrics["baseline"]
        print(
            f"\n[bench_chaos] {base['jobs']} jobs/scenario, fault-free "
            f"p99={base['p99_seconds']:.3f}s; crash p99="
            f"{_metrics['crash']['p99_seconds']:.3f}s "
            f"({_metrics['crash']['pool_rebuilds']} rebuilds); slow p99="
            f"{_metrics['slow']['p99_seconds']:.3f}s "
            f"(budget {_metrics['slow']['p99_budget_seconds']:.3f}s)"
        )
        print(f"[bench_chaos] results -> {BENCH_PATH}")


def test_chaos_artifact_is_readable():
    if not BENCH_PATH.exists():  # ordering safety on partial runs
        return
    payload = json.loads(BENCH_PATH.read_text())["chaos"]
    assert payload["crash"]["pool_rebuilds"] >= 1
    assert payload["slow"]["p99_seconds"] <= payload["slow"][
        "p99_budget_seconds"
    ]
