"""Scenario-suite bench: the whole registry, gated against the baseline.

Runs every registered scenario through the batched suite runner and
checks the three properties the suite exists for:

* every scenario still partitions sanely (``final <= initial``, the
  deterministic cycle counts reproduce across back-to-back runs);
* the two new kernel-rich workloads (FIR/IIR filter bank, Viterbi
  trellis decoder) are present and contribute non-trivial Pareto
  fronts;
* nothing regressed by more than 20% in total cycles against the
  committed baseline (``benchmarks/suite_baseline.json``) — the same
  gate CI runs via ``python -m repro suite compare``.

Records the run into ``BENCH_suite.json`` at the repo root (uploaded as
a CI artifact) so any run is diffable against any other with
``suite compare``.
"""

import json
import time
from pathlib import Path

from repro import telemetry
from repro.search import make_partitioner
from repro.suite import (
    RegressionThresholds,
    assert_no_regressions,
    compare_runs,
    default_suite,
    read_run_json,
    run_suite,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_suite.json"
BASELINE_PATH = Path(__file__).resolve().parent / "suite_baseline.json"


def test_suite_runs_green_and_matches_baseline(capsys):
    run = run_suite(max_workers=1)

    names = run.scenario_names()
    assert len(names) == len(default_suite())
    for result in run.results:
        assert result.total_cycles <= result.initial_cycles
        assert result.reduction_percent >= 0.0
        assert result.wall_time_seconds > 0.0
        # Evaluation throughput is recorded per scenario so it can gate
        # longitudinally like cycles do.
        assert result.configs_per_second > 0.0

    # The two new workloads are on the board.
    workloads = {result.workload for result in run.results}
    assert any(w.startswith("filterbank-pipeline") for w in workloads)
    assert any(w.startswith("viterbi-decoder") for w in workloads)

    # The CI gate, inlined: nothing slower than baseline + 20% cycles.
    baseline = read_run_json(BASELINE_PATH)
    comparison = compare_runs(
        baseline, run, RegressionThresholds(cycle_percent=20.0)
    )
    assert_no_regressions(comparison)

    run.write_json(BENCH_PATH)
    with capsys.disabled():
        print(f"\n[bench_suite] {comparison.summary()}")
        print(f"[bench_suite] results -> {BENCH_PATH}")


def test_suite_cycles_are_deterministic():
    scenarios = [s for s in default_suite() if s.name in (
        "synth-skewed", "filterbank-greedy", "viterbi-greedy",
    )]
    first = run_suite(scenarios, max_workers=1)
    second = run_suite(scenarios, max_workers=1)
    assert [r.total_cycles for r in first.results] == [
        r.total_cycles for r in second.results
    ]
    assert [r.moved_bb_ids for r in first.results] == [
        r.moved_bb_ids for r in second.results
    ]


def test_new_workloads_have_nontrivial_pareto_fronts(capsys):
    """The acceptance claim: both new named workloads appear on the
    Pareto reports with real cycles/moves/rows trade-offs."""
    fronts = {}
    for scenario in default_suite():
        if scenario.name not in ("filterbank-greedy", "viterbi-greedy"):
            continue
        workload = scenario.workload.build()
        platform = scenario.platform.build()
        partitioner = make_partitioner(
            scenario.algorithm, workload, platform
        )
        initial = partitioner.initial_cycles()
        # A deliberately tight constraint walks the whole greedy
        # trajectory, so the front spans the full cycles/moves curve.
        partitioner.run(max(1, round(initial * 0.05)))
        front = partitioner.pareto_front()
        fronts[workload.name] = front
        # The front spans from the all-FPGA corner to the best split.
        assert any(p.moved_kernel_count == 0 for p in front)
        assert any(p.moved_kernel_count >= 1 for p in front)
        assert len(front) >= 3
    assert set(fronts) == {"filterbank-pipeline", "viterbi-decoder"}
    with capsys.disabled():
        for name, front in fronts.items():
            print(f"\n[bench_suite] {name}: Pareto front size {len(front)}")


def test_injected_regression_is_detected():
    """Doubling one scenario's cycles must trip the 20% gate."""
    baseline = read_run_json(BASELINE_PATH)
    payload = baseline.to_json_dict()
    payload["results"][0]["total_cycles"] *= 2
    from repro.suite import SuiteRun

    doctored = SuiteRun.from_json_dict(payload)
    comparison = compare_runs(
        baseline, doctored, RegressionThresholds(cycle_percent=20.0)
    )
    assert comparison.has_regressions
    (regression,) = comparison.regressions()
    assert regression.cycle_delta_percent == 100.0


def test_injected_throughput_regression_is_detected():
    """A 100x configs_per_second collapse must trip the (opt-in)
    throughput gate — evaluation-speed regressions gate like cycle
    regressions."""
    baseline = read_run_json(BASELINE_PATH)
    payload = baseline.to_json_dict()
    gated = [
        entry
        for entry in payload["results"]
        if entry["configs_per_second"] >= 1000.0
    ]
    assert gated, "baseline predates throughput recording"
    doctored_payload = dict(payload)
    doctored_payload["results"] = [
        {**entry, "configs_per_second": entry["configs_per_second"] / 100}
        for entry in payload["results"]
    ]
    from repro.suite import SuiteRun

    doctored = SuiteRun.from_json_dict(doctored_payload)
    comparison = compare_runs(
        baseline, doctored, RegressionThresholds(throughput_percent=50.0)
    )
    assert comparison.has_regressions
    assert any(
        "configs_per_second" in reason
        for delta in comparison.regressions()
        for reason in delta.reasons
    )


def _timed_suite(scenarios, enabled, repetitions=3):
    """Best-of-N wall time for the suite subset with telemetry forced
    on or off.  Min-of-N is the standard variance killer: any one rep
    can be slowed by scheduler noise, but the minimum converges on the
    true cost."""
    best = float("inf")
    run = None
    telemetry.set_enabled(enabled)
    try:
        for _ in range(repetitions):
            telemetry.reset_trace()
            started = time.perf_counter()
            run = run_suite(scenarios, max_workers=1)
            best = min(best, time.perf_counter() - started)
    finally:
        telemetry.set_enabled(None)
        telemetry.reset_trace()
    return best, run


def _fast_scenarios():
    return [s for s in default_suite() if s.name in (
        "synth-small", "synth-skewed", "filterbank-greedy",
        "viterbi-greedy",
    )]


def test_telemetry_overhead_within_two_percent(capsys):
    """The PR's observability budget: spans sit at phase boundaries
    only, so telemetry-on must cost <= 2% over REPRO_TELEMETRY=0 (plus
    an absolute noise floor for sub-second suites, where 2% of the wall
    is smaller than timer scatter)."""
    scenarios = _fast_scenarios()
    _timed_suite(scenarios, enabled=True, repetitions=1)  # warm caches
    off_best, _ = _timed_suite(scenarios, enabled=False)
    on_best, _ = _timed_suite(scenarios, enabled=True)
    noise_floor = 0.15  # seconds; scheduler + allocator scatter
    budget = off_best * 1.02 + noise_floor
    with capsys.disabled():
        overhead = (on_best - off_best) / off_best * 100.0
        print(
            f"\n[bench_suite] telemetry overhead: on={on_best:.3f}s "
            f"off={off_best:.3f}s ({overhead:+.2f}%)"
        )
    assert on_best <= budget, (
        f"telemetry overhead {on_best - off_best:.3f}s exceeds 2% + "
        f"{noise_floor}s noise floor (on={on_best:.3f}s off={off_best:.3f}s)"
    )


def test_results_identical_with_telemetry_on_and_off():
    """Telemetry observes, never steers: cycles and moved blocks are
    bit-identical whether tracing is enabled or not, and phase data
    appears only when it is."""
    scenarios = _fast_scenarios()
    _, run_on = _timed_suite(scenarios, enabled=True, repetitions=1)
    _, run_off = _timed_suite(scenarios, enabled=False, repetitions=1)
    assert [r.total_cycles for r in run_on.results] == [
        r.total_cycles for r in run_off.results
    ]
    assert [r.moved_bb_ids for r in run_on.results] == [
        r.moved_bb_ids for r in run_off.results
    ]
    assert [r.rows_used for r in run_on.results] == [
        r.rows_used for r in run_off.results
    ]
    assert all(r.phases for r in run_on.results)
    assert all(r.phases == () for r in run_off.results)


def test_phase_breakdowns_reconcile_with_wall_time():
    """Per-scenario phase seconds are exclusive wall-clock slices, so
    their sum can never exceed the scenario's recorded wall — serial
    and with pooled workers shipping subtraces back."""
    scenarios = _fast_scenarios()
    for workers in (1, 2):
        telemetry.set_enabled(True)
        try:
            telemetry.reset_trace()
            run = run_suite(scenarios, max_workers=workers)
        finally:
            telemetry.set_enabled(None)
            telemetry.reset_trace()
        for result in run.results:
            phase_sum = sum(seconds for _, seconds in result.phases)
            assert phase_sum <= result.wall_time_seconds + 1e-6, (
                f"{result.scenario} (workers={workers}): phases "
                f"{phase_sum:.6f}s > wall {result.wall_time_seconds:.6f}s"
            )
            assert all(seconds >= 0.0 for _, seconds in result.phases)


def test_bench_artifact_is_readable():
    """BENCH_suite.json (written above) loads as a suite run."""
    if not BENCH_PATH.exists():  # ordering safety on partial runs
        return
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["results"]
    assert read_run_json(BENCH_PATH).scenario_names()
