"""Table 1 regeneration bench: analysis ordering for both applications.

Prints the regenerated (BB no., exec freq, ops weight, total weight) rows
next to the paper's and benchmarks the analysis-ordering step itself.
Every row must match the paper exactly — Table 1 is encoded data plus our
weight model, so this is a hard equality.
"""

from repro.analysis import WeightModel
from repro.reporting import (
    render_table1,
    reproduce_table1_jpeg,
    reproduce_table1_ofdm,
)


def test_table1_ofdm_rows(benchmark, ofdm, capsys):
    comparisons = benchmark(reproduce_table1_ofdm)
    assert all(c.matches for c in comparisons)
    with capsys.disabled():
        print()
        print(render_table1(comparisons, "Table 1 — OFDM transmitter"))


def test_table1_jpeg_rows(benchmark, jpeg, capsys):
    comparisons = benchmark(reproduce_table1_jpeg)
    assert all(c.matches for c in comparisons)
    with capsys.disabled():
        print()
        print(render_table1(comparisons, "Table 1 — JPEG encoder"))


def test_kernel_ordering_throughput(benchmark, ofdm):
    """Microbenchmark: Eq. 1 ordering over the 18-block OFDM workload."""
    model = WeightModel()
    result = benchmark(ofdm.kernel_candidates, model)
    assert [b.bb_id for b in result[:3]] == [22, 12, 3]
