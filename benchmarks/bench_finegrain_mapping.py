"""Figure 3 algorithm bench: temporal partitioning behaviour and speed.

Not a results table in the paper, but the behaviour Figure 3 defines:
partition counts fall as A_FPGA grows, and the mapper's own runtime stays
linear in DFG size.
"""

import pytest

from repro.finegrain import FPGADevice, block_fpga_timing, partition_dfg
from repro.platform import default_characterization
from repro.workloads import SyntheticBlockProfile, generate_dfg

CHAR = default_characterization()


def make_dfg(ops):
    return generate_dfg(
        SyntheticBlockProfile(
            bb_id=1000 + ops,
            exec_freq=1,
            alu_ops=int(ops * 0.7),
            mul_ops=int(ops * 0.3),
            load_ops=ops // 2,
            store_ops=max(1, ops // 8),
            width=3.0,
        )
    )


@pytest.mark.parametrize("ops", [16, 64, 256])
def test_partitioner_scales_linearly(benchmark, ops):
    dfg = make_dfg(ops)
    result = benchmark(partition_dfg, dfg, 1500, CHAR)
    result.validate(CHAR)


@pytest.mark.parametrize("afpga", [800, 1500, 5000])
def test_partition_count_vs_area(benchmark, afpga, capsys):
    dfg = make_dfg(96)
    device = FPGADevice.from_usable_area(afpga)
    timing = benchmark(block_fpga_timing, dfg, device, CHAR)
    with capsys.disabled():
        print(
            f"\n  A_FPGA={afpga}: {timing.partition_count} partitions, "
            f"{timing.total_cycles} cycles/invocation"
        )
    if afpga >= 5000:
        small = block_fpga_timing(
            dfg, FPGADevice.from_usable_area(800), CHAR
        )
        assert timing.partition_count < small.partition_count
        assert timing.total_cycles < small.total_cycles
