"""§3.3 mapping bench: CGC list-scheduler + binder behaviour and speed."""

import pytest

from repro.coarsegrain import bind_schedule, schedule_dfg, standard_datapath
from repro.workloads import SyntheticBlockProfile, generate_dfg


def make_dfg(ops, width=3.0):
    return generate_dfg(
        SyntheticBlockProfile(
            bb_id=2000 + ops,
            exec_freq=1,
            alu_ops=int(ops * 0.6),
            mul_ops=int(ops * 0.4),
            load_ops=ops // 3,
            store_ops=max(1, ops // 10),
            width=width,
        )
    )


@pytest.mark.parametrize("ops", [16, 64, 256])
def test_scheduler_scales(benchmark, ops):
    dfg = make_dfg(ops)
    datapath = standard_datapath(2)
    schedule = benchmark(schedule_dfg, dfg, datapath)
    schedule.validate()


def compute_bound_dfg():
    """Wide, multiply-rich, few memory ops: the regime where extra CGCs
    pay off (memory ports scale with the CGC count, as in paper_platform)."""
    return generate_dfg(
        SyntheticBlockProfile(
            bb_id=2500, exec_freq=1, alu_ops=72, mul_ops=24,
            load_ops=6, store_ops=2, width=8.0,
        )
    )


@pytest.mark.parametrize("cgc_count", [1, 2, 3])
def test_makespan_vs_cgc_count(benchmark, cgc_count, capsys):
    dfg = compute_bound_dfg()
    datapath = standard_datapath(cgc_count, memory_ports=cgc_count)
    schedule = benchmark(schedule_dfg, dfg, datapath)
    with capsys.disabled():
        print(
            f"\n  {datapath.describe()}: makespan {schedule.makespan} "
            f"CGC cycles"
        )
    if cgc_count == 3:
        one = schedule_dfg(
            compute_bound_dfg(), standard_datapath(1, memory_ports=1)
        )
        assert schedule.makespan < one.makespan


def test_binding_throughput(benchmark):
    schedule = schedule_dfg(make_dfg(128), standard_datapath(2))
    binding = benchmark(bind_schedule, schedule)
    binding.validate()
