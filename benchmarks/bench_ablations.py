"""Ablation benches for the model choices DESIGN.md calls out.

Each ablation flips one modelling decision and checks the direction of the
effect, quantifying how much of the headline result each mechanism
carries:

* configuration caching (single-partition blocks skip per-invocation
  reconfiguration) — drives the A_FPGA sensitivity of the initial cycles;
* intra-CGC chaining (chain depth = rows) — drives the CGC's advantage on
  serial code;
* shared-memory latency seen by the CGC — drives the memory-bound
  behaviour of the JPEG kernels;
* communication cost — the t_comm term of Eq. 2.
"""

import pytest

from repro.coarsegrain import schedule_dfg, standard_datapath
from repro.coarsegrain.cgc import make_cgc_array
from repro.coarsegrain.datapath import CGCDatapath
from repro.partition import EngineConfig, PartitioningEngine
from repro.platform import SharedMemory, paper_platform
from repro.reporting import scaled_constraint
from repro.workloads import (
    OFDM_TIMING_CONSTRAINT,
    PAPER_TABLE2_OFDM,
    SyntheticBlockProfile,
    generate_dfg,
)


def test_ablation_configuration_caching(benchmark, ofdm, capsys):
    """Without caching, every block pays reconfiguration per invocation and
    the area sensitivity of the initial cycles collapses."""
    def initial_ratio(charge):
        config = EngineConfig(charge_single_partition_reconfig=charge)
        small = PartitioningEngine(
            ofdm, paper_platform(1500, 2), config=config
        ).initial_cycles()
        large = PartitioningEngine(
            ofdm, paper_platform(5000, 2), config=config
        ).initial_cycles()
        return small / large

    cached = benchmark(initial_ratio, False)
    uncached = initial_ratio(True)
    with capsys.disabled():
        print(
            f"\n  initial(A=1500)/initial(A=5000): cached={cached:.2f}, "
            f"uncached={uncached:.2f} (paper: 2.12)"
        )
    assert cached > uncached


def test_ablation_chaining(benchmark, capsys):
    """Chain depth = rows halves serial-chain latency vs a 1-row array."""
    profile = SyntheticBlockProfile(
        bb_id=3001, exec_freq=1, alu_ops=24, mul_ops=8,
        load_ops=0, store_ops=1, width=1.0,
    )
    dfg = generate_dfg(profile)
    chained = CGCDatapath(cgcs=make_cgc_array(2, rows=2, cols=2))
    unchained = CGCDatapath(cgcs=make_cgc_array(2, rows=1, cols=4))

    fast = benchmark(schedule_dfg, dfg, chained)
    slow = schedule_dfg(dfg, unchained)
    with capsys.disabled():
        print(
            f"\n  serial chain of 32 ops: chained makespan {fast.makespan}, "
            f"unchained {slow.makespan}"
        )
    assert fast.makespan < slow.makespan


def test_ablation_memory_latency(benchmark, capsys):
    """A shared memory as fast as the CGC clock would overstate the gain
    on memory-bound kernels by ~2-3x."""
    profile = SyntheticBlockProfile(
        bb_id=3002, exec_freq=1, alu_ops=8, mul_ops=4,
        load_ops=24, store_ops=8, width=2.0,
    )
    dfg = generate_dfg(profile)
    realistic = standard_datapath(2)  # latency 3 (one FPGA cycle)
    idealized = CGCDatapath(cgcs=make_cgc_array(2), memory_latency=1)
    slow = benchmark(schedule_dfg, dfg, realistic)
    fast = schedule_dfg(dfg, idealized)
    with capsys.disabled():
        print(
            f"\n  memory-bound kernel: latency-3 makespan {slow.makespan}, "
            f"latency-1 makespan {fast.makespan}"
        )
    assert slow.makespan > fast.makespan


def test_ablation_communication_cost(benchmark, ofdm, capsys):
    """Slower shared memory for boundary transfers erodes the reduction."""
    constraint, _ = scaled_constraint(
        ofdm, PAPER_TABLE2_OFDM, OFDM_TIMING_CONSTRAINT
    )

    def run(read_latency):
        platform = paper_platform(
            1500, 2, memory=SharedMemory(
                read_latency=read_latency, write_latency=read_latency
            )
        )
        return PartitioningEngine(ofdm, platform).run(constraint)

    cheap = benchmark(run, 1)
    expensive = run(8)
    with capsys.disabled():
        print(
            f"\n  reduction at mem latency 1: {cheap.reduction_percent:.1f}%"
            f", at latency 8: {expensive.reduction_percent:.1f}%"
        )
    assert expensive.final_cycles > cheap.final_cycles


@pytest.mark.parametrize("ratio", [2, 3, 4])
def test_ablation_clock_ratio(benchmark, ofdm, ratio, capsys):
    """T_FPGA/T_CGC scales the coarse-grain advantage almost linearly."""
    constraint, _ = scaled_constraint(
        ofdm, PAPER_TABLE2_OFDM, OFDM_TIMING_CONSTRAINT
    )

    def run():
        platform = paper_platform(1500, 2, clock_ratio=ratio)
        return PartitioningEngine(ofdm, platform).run(constraint)

    result = benchmark(run)
    with capsys.disabled():
        print(
            f"\n  clock ratio {ratio}: final {result.final_cycles} "
            f"({result.reduction_percent:.1f}%)"
        )
    assert result.cycles_in_cgc > 0
