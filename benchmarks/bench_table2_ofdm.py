"""Table 2 regeneration bench: OFDM partitioning on all four platforms.

For each (A_FPGA, CGC count) configuration of §4, runs the Figure 2 engine
at the (scale-normalized) 60 000-cycle constraint, asserts the kernel
selection matches the paper, and prints the full ours-vs-paper table.
"""

import pytest

from repro.partition import PartitioningEngine
from repro.platform import paper_platform
from repro.reporting import render_partition_table, reproduce_table2, scaled_constraint
from repro.workloads import OFDM_TIMING_CONSTRAINT, PAPER_TABLE2_OFDM

CONFIGS = [(row.afpga, row.cgc_count) for row in PAPER_TABLE2_OFDM]


@pytest.mark.parametrize("afpga,cgc_count", CONFIGS)
def test_table2_configuration(benchmark, ofdm, afpga, cgc_count):
    constraint, _ = scaled_constraint(
        ofdm, PAPER_TABLE2_OFDM, OFDM_TIMING_CONSTRAINT
    )
    paper_row = next(
        r for r in PAPER_TABLE2_OFDM
        if (r.afpga, r.cgc_count) == (afpga, cgc_count)
    )

    def run_engine():
        engine = PartitioningEngine(ofdm, paper_platform(afpga, cgc_count))
        return engine.run(constraint)

    result = benchmark(run_engine)
    assert result.constraint_met
    assert result.moved_bb_ids == list(paper_row.moved_bbs)


def test_table2_full_reproduction(benchmark, capsys):
    table = benchmark(reproduce_table2)
    assert table.all_sets_match and table.all_constraints_met
    with capsys.disabled():
        print()
        print(render_partition_table(table))
