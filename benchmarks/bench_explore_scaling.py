"""Scaling bench: the incremental engine vs the seed's full-rescan loop.

The seed engine rescanned every block's cost after every kernel move and
restarted the greedy loop from scratch for every constraint of a sweep.
The incremental engine applies an O(1) delta per move and warm-starts
each constraint from the cached trajectory, so a (constraints × moves)
sweep touches each block's cost O(1) times instead of O(moves) times.

This bench runs both modes over a 120-block synthetic workload, checks
they produce identical results, and asserts the headline claim: >= 5x
fewer block-cost evaluations (measured: >100x).  The slow (opt-in) bench
additionally fans a full design-space grid out across worker processes.
"""

import pytest

from repro.explore import DesignSpace, WorkloadSpec, explore
from repro.partition import EngineConfig, PartitioningEngine
from repro.platform import paper_platform
from repro.reporting import render_exploration
from repro.workloads import synthetic_application

CONSTRAINT_FRACTIONS = (0.95, 0.9, 0.8, 0.7, 0.6, 0.5)


@pytest.fixture(scope="module")
def big_synthetic():
    return synthetic_application(120, seed=7, comm_intensity=0.6)


def _sweep(workload, incremental):
    engine = PartitioningEngine(
        workload,
        paper_platform(3000, 2),
        config=EngineConfig(incremental=incremental),
    )
    initial = engine.initial_cycles()
    constraints = [max(1, round(initial * f)) for f in CONSTRAINT_FRACTIONS]
    results = engine.sweep(constraints)
    return results, engine.stats


def test_incremental_sweep_speed(benchmark, big_synthetic):
    """Wall-clock of a warm 6-constraint sweep on 120 blocks."""
    engine = PartitioningEngine(big_synthetic, paper_platform(3000, 2))
    initial = engine.initial_cycles()
    constraints = [max(1, round(initial * f)) for f in CONSTRAINT_FRACTIONS]
    engine.run(1)  # build trajectory once; bench measures warm replays

    results = benchmark(engine.sweep, constraints)
    assert len(results) == len(constraints)


def test_block_cost_evaluation_scaling(big_synthetic, capsys):
    """The acceptance claim: >= 5x fewer per-block cost consultations
    than the seed's full-rescan aggregation on a 100+-block synthetic
    sweep, with bit-identical results.

    Measured on ``contribution_lookups`` (every time the aggregation
    consults the model): ``block_cost_evaluations`` now counts only
    contributions actually *computed* — cache hits no longer inflate
    it — so both modes compute each block exactly once and the rescan
    blow-up is visible purely in lookups.
    """
    incremental_results, incremental_stats = _sweep(big_synthetic, True)
    rescan_results, rescan_stats = _sweep(big_synthetic, False)

    assert incremental_results == rescan_results
    assert (
        rescan_stats.block_cost_evaluations
        == incremental_stats.block_cost_evaluations
    )
    ratio = (
        rescan_stats.contribution_lookups
        / incremental_stats.contribution_lookups
    )
    with capsys.disabled():
        print(
            f"\n  120-block sweep x {len(CONSTRAINT_FRACTIONS)} constraints: "
            f"full-rescan {rescan_stats.contribution_lookups} lookups, "
            f"incremental {incremental_stats.contribution_lookups} "
            f"({ratio:.1f}x fewer; both computed "
            f"{incremental_stats.block_cost_evaluations} contributions)"
        )
    assert ratio >= 5.0


def test_warm_start_adds_no_evaluations(big_synthetic):
    """Extra constraints after the first sweep are free replays."""
    engine = PartitioningEngine(big_synthetic, paper_platform(3000, 2))
    initial = engine.initial_cycles()
    engine.run(1)
    lookups = engine.stats.contribution_lookups
    engine.sweep([max(1, round(initial * f)) for f in CONSTRAINT_FRACTIONS])
    assert engine.stats.contribution_lookups == lookups


@pytest.mark.slow
def test_parallel_grid_exploration(capsys):
    """Fan a (3 workloads x 6 platforms x 4 constraints) grid across
    worker processes and compare against the serial run."""
    import time

    workloads = [
        WorkloadSpec.synthetic(100, seed=s, comm_intensity=0.5)
        for s in (1, 2, 3)
    ]
    space = DesignSpace.grid(
        workloads,
        afpga_values=(1500, 3000, 5000),
        cgc_counts=(2, 3),
        constraint_fractions=(0.9, 0.75, 0.6, 0.5),
    )

    # Parallel first: forked workers must build their own workloads, so
    # neither run benefits from the other's per-process cache.
    started = time.perf_counter()
    parallel = explore(space, max_workers=4)
    parallel_seconds = time.perf_counter() - started

    started = time.perf_counter()
    serial = explore(space, max_workers=1)
    serial_seconds = time.perf_counter() - started

    assert parallel.results == serial.results
    with capsys.disabled():
        print(f"\n{render_exploration(parallel)}")
        print(
            f"  serial {serial_seconds:.2f}s vs "
            f"{parallel.workers_used} workers {parallel_seconds:.2f}s"
        )
