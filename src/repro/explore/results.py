"""Structured records produced by a design-space exploration run."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..partition.result import PartitionResult


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of one (workload × platform × constraint) grid point."""

    workload: str
    platform: str
    afpga: int
    cgc_count: int
    clock_ratio: int
    reconfig_cycles: int
    constraint_fraction: float
    timing_constraint: int
    initial_cycles: int
    final_cycles: int
    reduction_percent: float
    kernels_moved: int
    moved_bb_ids: tuple[int, ...]
    reverted_bb_ids: tuple[int, ...]
    skipped_bb_ids: tuple[int, ...]
    constraint_met: bool
    #: Label of the :class:`~repro.search.AlgorithmSpec` that produced
    #: this point (the fourth grid axis).
    algorithm: str = "greedy"

    @classmethod
    def from_partition_result(
        cls,
        result: PartitionResult,
        *,
        afpga: int,
        cgc_count: int,
        clock_ratio: int,
        reconfig_cycles: int,
        constraint_fraction: float,
        algorithm: str = "greedy",
    ) -> "ExplorationResult":
        return cls(
            algorithm=algorithm,
            workload=result.workload_name,
            platform=result.platform_name,
            afpga=afpga,
            cgc_count=cgc_count,
            clock_ratio=clock_ratio,
            reconfig_cycles=reconfig_cycles,
            constraint_fraction=constraint_fraction,
            timing_constraint=result.timing_constraint,
            initial_cycles=result.initial_cycles,
            final_cycles=result.final_cycles,
            reduction_percent=result.reduction_percent,
            kernels_moved=result.kernels_moved,
            moved_bb_ids=tuple(result.moved_bb_ids),
            reverted_bb_ids=tuple(result.reverted_bb_ids),
            skipped_bb_ids=tuple(result.skipped_bb_ids),
            constraint_met=result.constraint_met,
        )

    def to_dict(self) -> dict[str, object]:
        """A flat, JSON/CSV-friendly view of this record."""
        return {
            "workload": self.workload,
            "algorithm": self.algorithm,
            "platform": self.platform,
            "afpga": self.afpga,
            "cgc_count": self.cgc_count,
            "clock_ratio": self.clock_ratio,
            "reconfig_cycles": self.reconfig_cycles,
            "constraint_fraction": self.constraint_fraction,
            "timing_constraint": self.timing_constraint,
            "initial_cycles": self.initial_cycles,
            "final_cycles": self.final_cycles,
            "reduction_percent": round(self.reduction_percent, 3),
            "kernels_moved": self.kernels_moved,
            "moved_bb_ids": list(self.moved_bb_ids),
            "reverted_bb_ids": list(self.reverted_bb_ids),
            "skipped_bb_ids": list(self.skipped_bb_ids),
            "constraint_met": self.constraint_met,
        }


@dataclass
class ExplorationReport:
    """Everything one :func:`repro.explore.explore` call produced."""

    results: list[ExplorationResult] = field(default_factory=list)
    workers_used: int = 1
    tasks_run: int = 0
    elapsed_seconds: float = 0.0
    #: Aggregated engine work counters across every worker.
    block_cost_evaluations: int = 0
    contribution_lookups: int = 0
    blocks_mapped: int = 0

    @property
    def size(self) -> int:
        return len(self.results)

    def met(self) -> list[ExplorationResult]:
        return [r for r in self.results if r.constraint_met]

    def workload_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for result in self.results:
            seen.setdefault(result.workload)
        return list(seen)

    def for_workload(self, workload: str) -> list[ExplorationResult]:
        return [r for r in self.results if r.workload == workload]

    def cheapest_meeting(
        self, workload: str, constraint_fraction: float
    ) -> ExplorationResult | None:
        """Smallest platform that meets the constraint at the given
        relative deadline — the classic DSE query.  "Smallest" is ordered
        by (A_FPGA, CGC count, clock ratio, reconfiguration cost), so the
        pick is deterministic on grids that cross the extra axes too.

        Fractions are matched with a tolerance so arithmetically derived
        values (``7 * 0.1``) still hit the grid point they name.
        """
        candidates = [
            r
            for r in self.for_workload(workload)
            if r.constraint_met
            and math.isclose(
                r.constraint_fraction, constraint_fraction, rel_tol=1e-9
            )
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (
                r.afpga,
                r.cgc_count,
                r.clock_ratio,
                r.reconfig_cycles,
            ),
        )

    def best_reduction(self, workload: str) -> ExplorationResult | None:
        rows = self.for_workload(workload)
        if not rows:
            return None
        return max(rows, key=lambda r: r.reduction_percent)

    def algorithms(self) -> list[str]:
        """Algorithm labels present, in first-seen order."""
        seen: dict[str, None] = {}
        for result in self.results:
            seen.setdefault(result.algorithm)
        return list(seen)

    def for_algorithm(self, algorithm: str) -> list[ExplorationResult]:
        return [r for r in self.results if r.algorithm == algorithm]

    def best_per_algorithm(
        self,
        workload: str | None = None,
        constraint_fraction: float | None = None,
    ) -> dict[str, ExplorationResult]:
        """The best point each algorithm found, keyed by algorithm label.

        "Best" is lowest final cycles, tie-broken by fewer kernels moved
        then the smaller platform — the head-to-head comparison the
        algorithm axis exists for.  Optional filters restrict the
        competition to one workload and/or one constraint fraction.
        """
        best: dict[str, ExplorationResult] = {}
        for result in self.results:
            if workload is not None and result.workload != workload:
                continue
            if constraint_fraction is not None and not math.isclose(
                result.constraint_fraction, constraint_fraction, rel_tol=1e-9
            ):
                continue
            incumbent = best.get(result.algorithm)
            key = (
                result.final_cycles,
                result.kernels_moved,
                result.afpga,
                result.cgc_count,
            )
            if incumbent is None or key < (
                incumbent.final_cycles,
                incumbent.kernels_moved,
                incumbent.afpga,
                incumbent.cgc_count,
            ):
                best[result.algorithm] = result
        return best

    def summary(self) -> str:
        met = len(self.met())
        return (
            f"explored {self.size} points over {self.tasks_run} tasks "
            f"({self.workers_used} workers) in {self.elapsed_seconds:.2f}s; "
            f"{met}/{self.size} constraints met; "
            f"{self.block_cost_evaluations} block-cost evaluations "
            f"({self.contribution_lookups} lookups), "
            f"{self.blocks_mapped} blocks mapped"
        )
