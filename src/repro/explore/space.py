"""Declarative description of a design space to explore.

Specs rather than objects: a :class:`WorkloadSpec` / :class:`PlatformSpec`
names how to *build* a workload or platform instead of holding the built
object, so a grid is tiny, hashable, and cheap to ship to worker
processes; each worker materializes (and caches) the heavy DFGs locally.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import ClassVar

from ..partition.engine import EngineConfig
from ..partition.workload import ApplicationWorkload
from ..platform.soc import HybridPlatform, paper_platform
from ..search.base import AlgorithmSpec


@dataclass(frozen=True)
class WorkloadSpec:
    """A buildable workload: a paper app (calibrated Table 1 statistics or
    measured by actually profiling the mini-C implementation) or a
    synthetic one."""

    kind: str  # "ofdm" | "jpeg" | "synthetic" | "*-measured" | "filterbank" | "viterbi" | "minic"
    params: tuple[tuple[str, object], ...] = ()

    _KINDS = (
        "ofdm",
        "jpeg",
        "synthetic",
        "ofdm-measured",
        "jpeg-measured",
        "filterbank",
        "viterbi",
        "minic",
    )
    #: Kinds whose workloads are built from a real lowered CDFG (the
    #: ones the IR verifier / ``python -m repro verify`` can inspect).
    CDFG_KINDS = ("ofdm-measured", "jpeg-measured", "minic")
    #: Names the paper-app factories give their workloads; labels must
    #: match them because ExplorationResult.workload is the built name.
    _APP_NAMES: ClassVar[dict[str, str]] = {
        "ofdm": "ofdm-transmitter",
        "jpeg": "jpeg-encoder",
        "ofdm-measured": "ofdm-transmitter-measured",
        "jpeg-measured": "jpeg-encoder-measured",
    }

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; expected one of "
                f"{self._KINDS}"
            )
        if self.kind == "synthetic" and "block_count" not in dict(self.params):
            raise ValueError(
                "synthetic workload specs need a block_count parameter "
                "(use WorkloadSpec.synthetic(block_count, ...))"
            )

    @classmethod
    def ofdm(cls) -> "WorkloadSpec":
        return cls(kind="ofdm")

    @classmethod
    def jpeg(cls) -> "WorkloadSpec":
        return cls(kind="jpeg")

    @classmethod
    def synthetic(cls, block_count: int, **params: object) -> "WorkloadSpec":
        merged: dict[str, object] = {"block_count": block_count, **params}
        return cls(kind="synthetic", params=tuple(sorted(merged.items())))

    @classmethod
    def filterbank(cls, **params: object) -> "WorkloadSpec":
        """The FIR/IIR filter-bank pipeline (channels/taps/... params)."""
        return cls(kind="filterbank", params=tuple(sorted(params.items())))

    @classmethod
    def viterbi(cls, **params: object) -> "WorkloadSpec":
        """The Viterbi trellis decoder (states/stages params)."""
        return cls(kind="viterbi", params=tuple(sorted(params.items())))

    @classmethod
    def ofdm_measured(cls, symbols: int = 6) -> "WorkloadSpec":
        """OFDM with frequencies measured by interpreting the mini-C
        transmitter on ``symbols`` deterministic payload symbols."""
        return cls(kind="ofdm-measured", params=(("symbols", symbols),))

    @classmethod
    def jpeg_measured(cls, image_seed: int = 1994) -> "WorkloadSpec":
        """JPEG with frequencies measured by interpreting the mini-C
        encoder on the deterministic test frame for ``image_seed``."""
        return cls(kind="jpeg-measured", params=(("image_seed", image_seed),))

    @classmethod
    def minic(cls, seed: int = 0, optimize: bool = True) -> "WorkloadSpec":
        """A generated mini-C program measured through the full frontend
        + profiling flow (``optimize`` runs the local+global pass
        pipeline before profiling)."""
        return cls(
            kind="minic", params=(("optimize", optimize), ("seed", seed))
        )

    @property
    def label(self) -> str:
        """Predicts the built workload's name (the report query key)."""
        if self.kind in ("ofdm-measured", "jpeg-measured"):
            # Params are part of the label: two measured specs with
            # different inputs must not collide into one report key.
            base = self._APP_NAMES[self.kind]
            params = dict(self.params)
            if self.kind == "ofdm-measured":
                return f"{base}-s{params.get('symbols', 6)}"
            return f"{base}-i{params.get('image_seed', 1994)}"
        if self.kind == "minic":
            from ..workloads.synthetic import minic_workload_name

            return minic_workload_name(int(dict(self.params).get("seed", 0)))  # type: ignore[arg-type]
        if self.kind == "filterbank":
            from ..workloads.filterbank import filterbank_workload_name

            return filterbank_workload_name(**dict(self.params))
        if self.kind == "viterbi":
            from ..workloads.viterbi import viterbi_workload_name

            return viterbi_workload_name(**dict(self.params))
        if self.kind != "synthetic":
            return self._APP_NAMES[self.kind]
        from ..workloads.synthetic import synthetic_workload_name

        params = dict(self.params)
        custom_name = params.pop("name", None)
        if custom_name:
            return str(custom_name)
        return synthetic_workload_name(
            params.pop("block_count"), params.pop("seed", 0), **params
        )

    def build(self, profile_cache=None) -> ApplicationWorkload:
        # Imported here so a spec stays importable without dragging the
        # whole workload layer into every module that names one.
        from ..workloads.profiles import jpeg_workload, ofdm_workload
        from ..workloads.synthetic import synthetic_application

        if self.kind == "ofdm":
            return ofdm_workload()
        if self.kind == "jpeg":
            return jpeg_workload()
        if self.kind == "filterbank":
            from ..workloads.filterbank import filterbank_workload

            return filterbank_workload(**dict(self.params))  # type: ignore[arg-type]
        if self.kind == "viterbi":
            from ..workloads.viterbi import viterbi_workload

            return viterbi_workload(**dict(self.params))  # type: ignore[arg-type]
        if self.kind == "minic":
            from ..workloads.synthetic import minic_application

            params = dict(self.params)
            return minic_application(
                seed=int(params.get("seed", 0)),  # type: ignore[arg-type]
                optimize=bool(params.get("optimize", True)),
            )
        if self.kind in ("ofdm-measured", "jpeg-measured"):
            return self._build_measured(profile_cache)
        return synthetic_application(**dict(self.params))  # type: ignore[arg-type]

    def cdfg(self, optimize: bool | None = None):
        """The lowered CDFG behind this spec, or ``None``.

        Only :attr:`CDFG_KINDS` are backed by real IR; the calibrated
        Table 1 and synthetic-DFG kinds fabricate engine statistics
        directly and have nothing for the verifier to inspect.
        """
        if self.kind == "minic":
            from ..workloads.synthetic import minic_cdfg

            params = dict(self.params)
            return minic_cdfg(
                seed=int(params.get("seed", 0)),  # type: ignore[arg-type]
                optimize=bool(
                    params.get("optimize", True)
                    if optimize is None
                    else optimize
                ),
            )
        if self.kind == "ofdm-measured":
            from ..workloads.ofdm import OFDMTransmitterApp

            return OFDMTransmitterApp().cdfg
        if self.kind == "jpeg-measured":
            from ..workloads.jpeg import JPEGEncoderApp

            return JPEGEncoderApp().cdfg
        return None

    def _build_measured(self, profile_cache) -> ApplicationWorkload:
        """Profile the real mini-C application through the (optionally
        shared, on-disk) content-keyed profile cache."""
        from ..interp.cache import default_profile_cache
        from ..ir.verify import assert_verified, sanitizer_enabled
        from ..partition.workload import workload_from_cdfg

        if profile_cache is None:
            profile_cache = default_profile_cache()
        params = dict(self.params)
        if self.kind == "ofdm-measured":
            from ..workloads.ofdm import (
                BITS_PER_SYMBOL,
                OFDMTransmitterApp,
                random_bits,
            )

            app = OFDMTransmitterApp(profile_cache=profile_cache)
            symbols = int(params.get("symbols", 6))  # type: ignore[arg-type]
            profile = app.profile_symbols(
                [
                    random_bits(BITS_PER_SYMBOL, seed=2004 + index)
                    for index in range(symbols)
                ]
            )
        else:
            from ..workloads.jpeg import JPEGEncoderApp, test_image

            app = JPEGEncoderApp(profile_cache=profile_cache)
            image_seed = int(params.get("image_seed", 1994))  # type: ignore[arg-type]
            profile = app.profile_image(test_image(seed=image_seed))
        if sanitizer_enabled():
            assert_verified(app.cdfg, f"workload {self.label}")
        return workload_from_cdfg(app.cdfg, profile, name=self.label)


@dataclass(frozen=True)
class PlatformSpec:
    """A buildable :func:`paper_platform` configuration."""

    afpga: int = 1500
    cgc_count: int = 2
    clock_ratio: int = 3
    reconfig_cycles: int = 20
    rows: int = 2
    cols: int = 2

    def __post_init__(self) -> None:
        if self.afpga < 1 or self.cgc_count < 1:
            raise ValueError("afpga and cgc_count must be >= 1")
        if self.clock_ratio < 1:
            raise ValueError("clock_ratio must be >= 1")

    @property
    def label(self) -> str:
        return (
            f"A{self.afpga}-{self.cgc_count}x({self.rows}x{self.cols})"
            f"-r{self.clock_ratio}"
        )

    def build(self) -> HybridPlatform:
        return paper_platform(
            self.afpga,
            self.cgc_count,
            reconfig_cycles=self.reconfig_cycles,
            clock_ratio=self.clock_ratio,
            rows=self.rows,
            cols=self.cols,
        )


@dataclass(frozen=True)
class ExplorationTask:
    """One worker unit: the (algorithm × constraint) sweep its
    ``algorithms`` tuple names for one (workload, platform) pair.

    The grid emits one task per (workload, platform, algorithm) triple
    (singleton ``algorithms``) so the algorithm axis still fans out
    across worker processes; the runner's per-process packed-table
    cache keys on the (workload, platform) pair, so however the triples
    are scheduled, each worker prices a pair at most **once** — no grid
    cell remaps a block another cell of the same pair already priced.
    Constraint-independent search state (the greedy move trajectory, a
    cached annealing walk) is additionally shared across the
    constraints of each algorithm.

    ``profile_cache_dir`` points measured workload specs at a shared
    on-disk profile cache so parallel workers (and later runs) profile
    each distinct program at most once.
    """

    workload: WorkloadSpec
    platform: PlatformSpec
    constraint_fractions: tuple[float, ...]
    engine_config: EngineConfig | None = None
    profile_cache_dir: str | None = None
    algorithms: tuple[AlgorithmSpec, ...] = (AlgorithmSpec.greedy(),)


@dataclass(frozen=True)
class DesignSpace:
    """A (workload × platform × constraint × algorithm) grid.

    Constraints are *relative*: each fraction is multiplied by the
    workload's all-FPGA cycle count on that platform, so one grid spans
    workloads whose absolute timescales differ by orders of magnitude.
    ``algorithms`` is the partitioning-algorithm axis; the default is the
    paper's greedy loop alone, so existing grids are unchanged.
    """

    workloads: tuple[WorkloadSpec, ...]
    platforms: tuple[PlatformSpec, ...]
    constraint_fractions: tuple[float, ...] = (0.9, 0.75, 0.5)
    algorithms: tuple[AlgorithmSpec, ...] = (AlgorithmSpec.greedy(),)

    def __post_init__(self) -> None:
        if not self.workloads or not self.platforms:
            raise ValueError("a design space needs >= 1 workload and platform")
        if not self.constraint_fractions:
            raise ValueError("a design space needs >= 1 constraint fraction")
        for fraction in self.constraint_fractions:
            if fraction <= 0.0:
                raise ValueError("constraint fractions must be positive")
        if not self.algorithms:
            raise ValueError("a design space needs >= 1 algorithm")

    @property
    def size(self) -> int:
        return (
            len(self.workloads)
            * len(self.platforms)
            * len(self.constraint_fractions)
            * len(self.algorithms)
        )

    def tasks(
        self,
        engine_config: EngineConfig | None = None,
        profile_cache_dir: str | None = None,
    ) -> list[ExplorationTask]:
        return [
            ExplorationTask(
                workload=workload,
                platform=platform,
                constraint_fractions=self.constraint_fractions,
                engine_config=engine_config,
                profile_cache_dir=profile_cache_dir,
                algorithms=(algorithm,),
            )
            for workload, platform, algorithm in itertools.product(
                self.workloads, self.platforms, self.algorithms
            )
        ]

    @classmethod
    def grid(
        cls,
        workloads,
        *,
        afpga_values=(1500, 5000),
        cgc_counts=(2, 3),
        clock_ratios=(3,),
        reconfig_cycles_values=(20,),
        constraint_fractions=(0.9, 0.75, 0.5),
        algorithms=(AlgorithmSpec.greedy(),),
    ) -> "DesignSpace":
        """Cross the given axes into a full grid (the §4 neighbourhood by
        default: A_FPGA ∈ {1500, 5000} × {2, 3} CGCs at ratio 3, 20-cycle
        reconfiguration, greedy partitioning)."""
        platforms = tuple(
            PlatformSpec(
                afpga=a, cgc_count=c, clock_ratio=r, reconfig_cycles=g
            )
            for a, c, r, g in itertools.product(
                afpga_values, cgc_counts, clock_ratios, reconfig_cycles_values
            )
        )
        return cls(
            workloads=tuple(workloads),
            platforms=platforms,
            constraint_fractions=tuple(constraint_fractions),
            algorithms=tuple(algorithms),
        )
