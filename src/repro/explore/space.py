"""Declarative description of a design space to explore.

Specs rather than objects: a :class:`WorkloadSpec` / :class:`PlatformSpec`
names how to *build* a workload or platform instead of holding the built
object, so a grid is tiny, hashable, and cheap to ship to worker
processes; each worker materializes (and caches) the heavy DFGs locally.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..partition.engine import EngineConfig
from ..partition.workload import ApplicationWorkload
from ..platform.soc import HybridPlatform, paper_platform


@dataclass(frozen=True)
class WorkloadSpec:
    """A buildable workload: one of the paper apps or a synthetic one."""

    kind: str  # "ofdm" | "jpeg" | "synthetic"
    params: tuple[tuple[str, object], ...] = ()

    _KINDS = ("ofdm", "jpeg", "synthetic")
    #: Names the paper-app factories give their workloads; labels must
    #: match them because ExplorationResult.workload is the built name.
    _APP_NAMES = {"ofdm": "ofdm-transmitter", "jpeg": "jpeg-encoder"}

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; expected one of "
                f"{self._KINDS}"
            )
        if self.kind == "synthetic" and "block_count" not in dict(self.params):
            raise ValueError(
                "synthetic workload specs need a block_count parameter "
                "(use WorkloadSpec.synthetic(block_count, ...))"
            )

    @classmethod
    def ofdm(cls) -> "WorkloadSpec":
        return cls(kind="ofdm")

    @classmethod
    def jpeg(cls) -> "WorkloadSpec":
        return cls(kind="jpeg")

    @classmethod
    def synthetic(cls, block_count: int, **params: object) -> "WorkloadSpec":
        merged: dict[str, object] = {"block_count": block_count, **params}
        return cls(kind="synthetic", params=tuple(sorted(merged.items())))

    @property
    def label(self) -> str:
        """Predicts the built workload's name (the report query key)."""
        if self.kind != "synthetic":
            return self._APP_NAMES[self.kind]
        from ..workloads.synthetic import synthetic_workload_name

        params = dict(self.params)
        custom_name = params.pop("name", None)
        if custom_name:
            return str(custom_name)
        return synthetic_workload_name(
            params.pop("block_count"), params.pop("seed", 0), **params
        )

    def build(self) -> ApplicationWorkload:
        # Imported here so a spec stays importable without dragging the
        # whole workload layer into every module that names one.
        from ..workloads.profiles import jpeg_workload, ofdm_workload
        from ..workloads.synthetic import synthetic_application

        if self.kind == "ofdm":
            return ofdm_workload()
        if self.kind == "jpeg":
            return jpeg_workload()
        return synthetic_application(**dict(self.params))  # type: ignore[arg-type]


@dataclass(frozen=True)
class PlatformSpec:
    """A buildable :func:`paper_platform` configuration."""

    afpga: int = 1500
    cgc_count: int = 2
    clock_ratio: int = 3
    reconfig_cycles: int = 20
    rows: int = 2
    cols: int = 2

    def __post_init__(self) -> None:
        if self.afpga < 1 or self.cgc_count < 1:
            raise ValueError("afpga and cgc_count must be >= 1")
        if self.clock_ratio < 1:
            raise ValueError("clock_ratio must be >= 1")

    @property
    def label(self) -> str:
        return (
            f"A{self.afpga}-{self.cgc_count}x({self.rows}x{self.cols})"
            f"-r{self.clock_ratio}"
        )

    def build(self) -> HybridPlatform:
        return paper_platform(
            self.afpga,
            self.cgc_count,
            reconfig_cycles=self.reconfig_cycles,
            clock_ratio=self.clock_ratio,
            rows=self.rows,
            cols=self.cols,
        )


@dataclass(frozen=True)
class ExplorationTask:
    """One worker unit: a full constraint sweep of one (workload,
    platform) pair, so the engine's cost cache and move trajectory are
    shared across every constraint of the pair."""

    workload: WorkloadSpec
    platform: PlatformSpec
    constraint_fractions: tuple[float, ...]
    engine_config: EngineConfig | None = None


@dataclass(frozen=True)
class DesignSpace:
    """A (workload × platform × constraint) grid.

    Constraints are *relative*: each fraction is multiplied by the
    workload's all-FPGA cycle count on that platform, so one grid spans
    workloads whose absolute timescales differ by orders of magnitude.
    """

    workloads: tuple[WorkloadSpec, ...]
    platforms: tuple[PlatformSpec, ...]
    constraint_fractions: tuple[float, ...] = (0.9, 0.75, 0.5)

    def __post_init__(self) -> None:
        if not self.workloads or not self.platforms:
            raise ValueError("a design space needs >= 1 workload and platform")
        if not self.constraint_fractions:
            raise ValueError("a design space needs >= 1 constraint fraction")
        for fraction in self.constraint_fractions:
            if fraction <= 0.0:
                raise ValueError("constraint fractions must be positive")

    @property
    def size(self) -> int:
        return (
            len(self.workloads)
            * len(self.platforms)
            * len(self.constraint_fractions)
        )

    def tasks(
        self, engine_config: EngineConfig | None = None
    ) -> list[ExplorationTask]:
        return [
            ExplorationTask(
                workload=workload,
                platform=platform,
                constraint_fractions=self.constraint_fractions,
                engine_config=engine_config,
            )
            for workload, platform in itertools.product(
                self.workloads, self.platforms
            )
        ]

    @classmethod
    def grid(
        cls,
        workloads,
        *,
        afpga_values=(1500, 5000),
        cgc_counts=(2, 3),
        clock_ratios=(3,),
        reconfig_cycles_values=(20,),
        constraint_fractions=(0.9, 0.75, 0.5),
    ) -> "DesignSpace":
        """Cross the given axes into a full grid (the §4 neighbourhood by
        default: A_FPGA ∈ {1500, 5000} × {2, 3} CGCs at ratio 3, 20-cycle
        reconfiguration)."""
        platforms = tuple(
            PlatformSpec(
                afpga=a, cgc_count=c, clock_ratio=r, reconfig_cycles=g
            )
            for a, c, r, g in itertools.product(
                afpga_values, cgc_counts, clock_ratios, reconfig_cycles_values
            )
        )
        return cls(
            workloads=tuple(workloads),
            platforms=platforms,
            constraint_fractions=tuple(constraint_fractions),
        )
