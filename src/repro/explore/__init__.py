"""Parallel design-space exploration on top of the partitioning engine.

The paper evaluates four hand-picked platform configurations; this
subsystem explores *grids*: every (workload × platform × timing
constraint) point of a declarative :class:`DesignSpace` is partitioned and
reported as a structured :class:`ExplorationResult`.

Three layers:

* :mod:`repro.explore.space` — :class:`WorkloadSpec` / :class:`PlatformSpec`
  (buildable, picklable descriptions) and :class:`DesignSpace`, the grid,
  whose fourth axis is the partitioning algorithm
  (:class:`~repro.search.AlgorithmSpec`: greedy, exhaustive, multi-start,
  annealing — see :mod:`repro.search`).
  ``WorkloadSpec.ofdm_measured()`` / ``WorkloadSpec.jpeg_measured()``
  profile the real mini-C applications under the block-compiled
  interpreter instead of using the calibrated Table 1 statistics; pass
  ``explore(..., profile_cache_dir=...)`` to share those profiling runs
  across worker processes and repeat invocations via the content-keyed
  on-disk cache (:mod:`repro.interp.cache`);
* :mod:`repro.explore.runner` — :func:`explore`, which fans the grid out
  across worker processes; each task sweeps every constraint of one
  (workload, platform, algorithm) triple on a single partitioner so cost
  caches and constraint-independent search state are shared;
* :mod:`repro.explore.results` — :class:`ExplorationResult` records and
  the :class:`ExplorationReport` aggregate with DSE queries such as
  :meth:`ExplorationReport.cheapest_meeting`.

CSV/JSON/table rendering of a report lives in
:mod:`repro.reporting.exploration`.

Example — sweep both paper apps and a 100-block synthetic workload over
a platform grid, in parallel::

    from repro.explore import DesignSpace, WorkloadSpec, explore

    space = DesignSpace.grid(
        [WorkloadSpec.ofdm(), WorkloadSpec.jpeg(),
         WorkloadSpec.synthetic(100, seed=1)],
        afpga_values=(1500, 3000, 5000),
        cgc_counts=(1, 2, 3),
        constraint_fractions=(0.9, 0.75, 0.5),
    )
    report = explore(space, max_workers=4)
    print(report.summary())
    print(report.cheapest_meeting("ofdm-transmitter", 0.5))
"""

from .results import ExplorationReport, ExplorationResult
from .runner import explore
from .space import DesignSpace, ExplorationTask, PlatformSpec, WorkloadSpec

__all__ = [
    "DesignSpace",
    "ExplorationReport",
    "ExplorationResult",
    "ExplorationTask",
    "PlatformSpec",
    "WorkloadSpec",
    "explore",
]
