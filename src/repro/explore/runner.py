"""Parallel grid-sweep runner.

Work is split at (workload, platform, algorithm) granularity so every
grid axis fans out across worker processes, but pricing is shared at
(workload, platform) granularity: on the packed substrate a single
:class:`~repro.partition.packed.PackedCostTable` is derived per pair,
cached per worker process (per call when serial), and injected into
every partitioner the worker builds for that pair — so the algorithm
and constraint axes never remap a block a sibling cell already priced.
Constraint-independent search state (the greedy move trajectory, a
cached annealing walk) is shared across the constraints of each
algorithm as before.  Within a worker process, built workloads are
additionally cached by spec, so every platform the worker prices
against the same workload reuses its DFGs.

Tasks fan out over ``concurrent.futures.ProcessPoolExecutor``; with
``max_workers=1`` (or a single task) everything runs in-process, which is
also the automatic fallback where process pools are unavailable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from .. import telemetry
from ..interp.cache import ProfileCache
from ..parallel import map_tasks
from ..partition.costs import CostModel, CostStats
from ..partition.engine import EngineConfig
from ..partition.packed import PackedCostTable
from ..partition.workload import ApplicationWorkload
from ..search import make_partitioner
from .results import ExplorationReport, ExplorationResult
from .space import DesignSpace, ExplorationTask, PlatformSpec, WorkloadSpec

#: Per-process cache of built workloads (DFG generation is the expensive
#: part of a spec); worker processes each grow their own copy.
_WORKLOAD_CACHE: dict[WorkloadSpec, ApplicationWorkload] = {}

#: Per-process cache of packed cost tables, keyed by the (workload,
#: platform) pair plus the one pricing flag that changes the numbers.
#: One pricing pass per pair serves every algorithm and constraint of
#: every grid cell the worker executes — the tables themselves are tiny
#: tuples of ints (they pickle in microseconds), so callers can equally
#: ship one across processes via ``packed_table``.
_TableKey = tuple[WorkloadSpec, PlatformSpec, bool]
_TABLE_CACHE: dict[_TableKey, PackedCostTable] = {}


def _cached_table(
    task: ExplorationTask,
    workload: ApplicationWorkload,
    platform,
    config: EngineConfig,
    stats: CostStats,
    cache: dict[_TableKey, PackedCostTable] | None = None,
) -> PackedCostTable:
    """Derive (or reuse) the pair's packed table; pricing work on a
    cache miss is charged to ``stats``."""
    if cache is None:
        cache = _TABLE_CACHE
    key = (
        task.workload,
        task.platform,
        config.charge_single_partition_reconfig,
    )
    table = cache.get(key)
    if table is None:
        model = CostModel(
            workload,
            platform,
            charge_single_partition_reconfig=(
                config.charge_single_partition_reconfig
            ),
            stats=stats,
        )
        table = PackedCostTable.from_model(model)
        cache[key] = table
    return table

#: Per-process profile caches keyed by on-disk directory (None = memory
#: only).  Measured workload specs profile real programs; the
#: content-keyed cache means each distinct (program, input) pair is
#: interpreted at most once per process — or once per *fleet* when a
#: shared directory is configured.
_PROFILE_CACHES: dict[str | None, ProfileCache] = {}


def _profile_cache(directory: str | None) -> ProfileCache:
    cache = _PROFILE_CACHES.get(directory)
    if cache is None:
        cache = ProfileCache(directory=directory)
        _PROFILE_CACHES[directory] = cache
    return cache


def _cached_workload(
    spec: WorkloadSpec,
    cache: dict[WorkloadSpec, ApplicationWorkload] | None = None,
    profile_cache_dir: str | None = None,
) -> ApplicationWorkload:
    if cache is None:
        cache = _WORKLOAD_CACHE
    workload = cache.get(spec)
    if workload is None:
        with telemetry.span("build_workload"):
            workload = spec.build(
                profile_cache=_profile_cache(profile_cache_dir)
            )
        cache[spec] = workload
    return workload


@dataclass
class _TaskOutcome:
    """What one task ships back to the coordinating process."""

    results: list[ExplorationResult] = field(default_factory=list)
    block_cost_evaluations: int = 0
    contribution_lookups: int = 0
    blocks_mapped: int = 0

    def absorb(self, stats: CostStats) -> None:
        self.block_cost_evaluations += stats.block_cost_evaluations
        self.contribution_lookups += stats.contribution_lookups
        self.blocks_mapped += stats.blocks_mapped


def _run_task(
    task: ExplorationTask,
    workload_cache: dict[WorkloadSpec, ApplicationWorkload] | None = None,
    table_cache: dict[_TableKey, PackedCostTable] | None = None,
) -> _TaskOutcome:
    """Execute one (workload, platform) pair's (algorithm × constraint)
    sweep.

    On the packed substrate the pair is priced once — the shared packed
    table is derived (or fetched from the per-process cache) up front
    and injected into every algorithm's partitioner, so the algorithm
    and constraint axes add zero block-mapping work.  The object
    substrate keeps one model per algorithm (the reference behaviour).
    """
    workload = _cached_workload(
        task.workload, workload_cache, task.profile_cache_dir
    )
    platform = task.platform.build()
    config = task.engine_config or EngineConfig()
    outcome = _TaskOutcome()
    table = None
    # Derive the shared table only when some algorithm will actually run
    # on it: greedy with incremental=False delegates to the full-rescan
    # engine regardless of substrate, so an all-greedy reference task
    # must not pay (or count) a dead pricing pass.
    needs_table = config.substrate == "packed" and (
        config.incremental
        or any(algorithm.name != "greedy" for algorithm in task.algorithms)
    )
    if needs_table:
        pricing_stats = CostStats()
        table = _cached_table(
            task, workload, platform, config, pricing_stats, table_cache
        )
        outcome.absorb(pricing_stats)
    for algorithm in task.algorithms:
        partitioner = make_partitioner(
            algorithm, workload, platform, config=config, packed_table=table
        )
        initial = partitioner.initial_cycles()
        for fraction in task.constraint_fractions:
            constraint = max(1, round(initial * fraction))
            result = partitioner.run(constraint)
            outcome.results.append(
                ExplorationResult.from_partition_result(
                    result,
                    afpga=task.platform.afpga,
                    cgc_count=task.platform.cgc_count,
                    clock_ratio=task.platform.clock_ratio,
                    reconfig_cycles=task.platform.reconfig_cycles,
                    constraint_fraction=fraction,
                    algorithm=algorithm.label,
                )
            )
        outcome.absorb(partitioner.stats)
    return outcome


def explore(
    space: DesignSpace,
    *,
    max_workers: int | None = None,
    engine_config: EngineConfig | None = None,
    profile_cache_dir: str | None = None,
) -> ExplorationReport:
    """Sweep the whole design space, fanning tasks out across processes.

    ``max_workers=None`` sizes the pool to ``min(tasks, cpu_count)``;
    ``max_workers=1`` forces a serial in-process run.  Results come back
    in grid order (workloads × platforms × constraint fractions)
    regardless of worker scheduling.  ``profile_cache_dir`` enables the
    shared on-disk profile cache for measured workload specs, so worker
    processes (and repeat invocations) never re-profile an identical
    program.
    """
    tasks = space.tasks(engine_config, profile_cache_dir)
    started = time.perf_counter()
    workers = max_workers
    if workers is None:
        workers = min(len(tasks), os.cpu_count() or 1)
    workers = max(1, workers)

    def run_serially(serial_tasks) -> list[_TaskOutcome]:
        # Caches scoped to this call: the coordinating process is long
        # lived and must not accumulate every workload ever explored.
        workloads: dict[WorkloadSpec, ApplicationWorkload] = {}
        tables: dict[_TableKey, PackedCostTable] = {}
        return [_run_task(task, workloads, tables) for task in serial_tasks]

    # The shared fan-out contract (repro.parallel): an unusable pool or
    # a worker dying mid-grid falls back to a serial run; genuine task
    # errors propagate as themselves.
    outcomes, workers = map_tasks(
        _run_task,
        tasks,
        workers,
        what="exploration grid",
        serial_runner=run_serially,
    )

    report = ExplorationReport(
        workers_used=workers,
        tasks_run=len(tasks),
        elapsed_seconds=time.perf_counter() - started,
    )
    for outcome in outcomes:
        report.results.extend(outcome.results)
        report.block_cost_evaluations += outcome.block_cost_evaluations
        report.contribution_lookups += outcome.contribution_lookups
        report.blocks_mapped += outcome.blocks_mapped
    return report
