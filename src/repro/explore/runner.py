"""Parallel grid-sweep runner.

Work is split at (workload, platform, algorithm) granularity: one task
runs the whole constraint sweep for a triple on a single partitioner, so
the per-block cost cache and any constraint-independent search state
(the greedy move trajectory, a cached annealing walk) are shared across
every constraint of that triple.  Within a worker process,
built workloads are additionally cached by spec, so every platform the
worker prices against the same workload reuses its DFGs.

Tasks fan out over ``concurrent.futures.ProcessPoolExecutor``; with
``max_workers=1`` (or a single task) everything runs in-process, which is
also the automatic fallback where process pools are unavailable.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field

from ..interp.cache import ProfileCache
from ..partition.engine import EngineConfig
from ..partition.workload import ApplicationWorkload
from ..search import make_partitioner
from .results import ExplorationReport, ExplorationResult
from .space import DesignSpace, ExplorationTask, WorkloadSpec

#: Per-process cache of built workloads (DFG generation is the expensive
#: part of a spec); worker processes each grow their own copy.
_WORKLOAD_CACHE: dict[WorkloadSpec, ApplicationWorkload] = {}

#: Per-process profile caches keyed by on-disk directory (None = memory
#: only).  Measured workload specs profile real programs; the
#: content-keyed cache means each distinct (program, input) pair is
#: interpreted at most once per process — or once per *fleet* when a
#: shared directory is configured.
_PROFILE_CACHES: dict[str | None, ProfileCache] = {}


def _profile_cache(directory: str | None) -> ProfileCache:
    cache = _PROFILE_CACHES.get(directory)
    if cache is None:
        cache = ProfileCache(directory=directory)
        _PROFILE_CACHES[directory] = cache
    return cache


def _cached_workload(
    spec: WorkloadSpec,
    cache: dict[WorkloadSpec, ApplicationWorkload] | None = None,
    profile_cache_dir: str | None = None,
) -> ApplicationWorkload:
    if cache is None:
        cache = _WORKLOAD_CACHE
    workload = cache.get(spec)
    if workload is None:
        workload = spec.build(
            profile_cache=_profile_cache(profile_cache_dir)
        )
        cache[spec] = workload
    return workload


@dataclass
class _TaskOutcome:
    """What one task ships back to the coordinating process."""

    results: list[ExplorationResult] = field(default_factory=list)
    block_cost_evaluations: int = 0
    blocks_mapped: int = 0


def _run_task(
    task: ExplorationTask,
    workload_cache: dict[WorkloadSpec, ApplicationWorkload] | None = None,
) -> _TaskOutcome:
    """Execute one (workload, platform, algorithm) constraint sweep."""
    workload = _cached_workload(
        task.workload, workload_cache, task.profile_cache_dir
    )
    platform = task.platform.build()
    config = task.engine_config or EngineConfig()
    partitioner = make_partitioner(
        task.algorithm, workload, platform, config=config
    )
    initial = partitioner.initial_cycles()
    outcome = _TaskOutcome()
    for fraction in task.constraint_fractions:
        constraint = max(1, round(initial * fraction))
        result = partitioner.run(constraint)
        outcome.results.append(
            ExplorationResult.from_partition_result(
                result,
                afpga=task.platform.afpga,
                cgc_count=task.platform.cgc_count,
                clock_ratio=task.platform.clock_ratio,
                reconfig_cycles=task.platform.reconfig_cycles,
                constraint_fraction=fraction,
                algorithm=task.algorithm.label,
            )
        )
    outcome.block_cost_evaluations = partitioner.stats.block_cost_evaluations
    outcome.blocks_mapped = partitioner.stats.blocks_mapped
    return outcome


def explore(
    space: DesignSpace,
    *,
    max_workers: int | None = None,
    engine_config: EngineConfig | None = None,
    profile_cache_dir: str | None = None,
) -> ExplorationReport:
    """Sweep the whole design space, fanning tasks out across processes.

    ``max_workers=None`` sizes the pool to ``min(tasks, cpu_count)``;
    ``max_workers=1`` forces a serial in-process run.  Results come back
    in grid order (workloads × platforms × constraint fractions)
    regardless of worker scheduling.  ``profile_cache_dir`` enables the
    shared on-disk profile cache for measured workload specs, so worker
    processes (and repeat invocations) never re-profile an identical
    program.
    """
    tasks = space.tasks(engine_config, profile_cache_dir)
    started = time.perf_counter()
    workers = max_workers
    if workers is None:
        workers = min(len(tasks), os.cpu_count() or 1)
    workers = max(1, workers)

    def run_serially() -> list[_TaskOutcome]:
        # Cache scoped to this call: the coordinating process is long
        # lived and must not accumulate every workload ever explored.
        cache: dict[WorkloadSpec, ApplicationWorkload] = {}
        return [_run_task(task, cache) for task in tasks]

    outcomes: list[_TaskOutcome]
    if workers == 1 or len(tasks) == 1:
        workers = 1
        outcomes = run_serially()
    else:
        # An unusable pool (no fork, no sem_open — surfaced either at
        # construction or by the warm-up probe, since workers spawn
        # lazily) and a worker dying mid-grid (BrokenExecutor) fall back
        # to a serial run.  Genuine task errors only occur after the
        # probe succeeded and propagate as themselves, so the fallback
        # never re-runs a grid that would fail anyway.
        pool_ready = False
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                pool.submit(os.getpid).result()  # force a worker to spawn
                pool_ready = True
                outcomes = list(pool.map(_run_task, tasks))
        except (OSError, ImportError, NotImplementedError) as error:
            if pool_ready:  # the error is the tasks' own: surface it
                raise
            warnings.warn(
                f"process pool unavailable ({error}); exploring serially",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
            outcomes = run_serially()
        except BrokenExecutor as error:
            warnings.warn(
                f"worker pool broke mid-run ({error}); exploring serially",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
            outcomes = run_serially()

    report = ExplorationReport(
        workers_used=workers,
        tasks_run=len(tasks),
        elapsed_seconds=time.perf_counter() - started,
    )
    for outcome in outcomes:
        report.results.extend(outcome.results)
        report.block_cost_evaluations += outcome.block_cost_evaluations
        report.blocks_mapped += outcome.blocks_mapped
    return report
