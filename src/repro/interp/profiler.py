"""Profiling hooks: the dynamic-analysis half of the paper's §3.1.

The paper instruments loop basic blocks with Lex-inserted counters, runs
the program on representative inputs, and reads back per-block execution
frequencies.  Our :class:`BlockProfiler` is the interpreter-hook equivalent:
it counts every basic-block entry (``exec_freq``) and, optionally, dynamic
memory accesses per block.

Under the block-compiled engine (``Interpreter(mode="compiled")``) the
same :class:`BlockProfiler` works as a counter-only sink: the engine
accumulates one integer per block entry and reconstructs the profiles
afterwards, with ``dynamic_instructions``/``dynamic_memory_accesses``
derived as ``exec_freq × static per-block counts``
(:func:`profiles_from_frequencies`) instead of one hook call per
instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import telemetry
from ..ir.basicblock import BasicBlock
from ..ir.cdfg import CDFG
from ..ir.operations import Instruction


@dataclass
class BlockProfile:
    """Dynamic statistics for one basic block."""

    bb_id: int
    function: str
    label: str
    exec_freq: int = 0
    dynamic_memory_accesses: int = 0
    dynamic_instructions: int = 0


class BlockProfiler:
    """Interpreter hook accumulating per-block execution counts."""

    def __init__(self) -> None:
        self.profiles: dict[int, BlockProfile] = {}
        self._current: BlockProfile | None = None

    # Interpreter hook interface -----------------------------------------
    def on_block_enter(self, block: BasicBlock, function: str) -> None:
        profile = self.profiles.get(block.bb_id)
        if profile is None:
            profile = BlockProfile(block.bb_id, function, block.label)
            self.profiles[block.bb_id] = profile
        profile.exec_freq += 1
        self._current = profile

    def on_instruction(self, instruction: Instruction, function: str) -> None:
        profile = self._current
        if profile is None:
            return
        profile.dynamic_instructions += 1
        if instruction.opcode.is_memory:
            profile.dynamic_memory_accesses += 1

    # Queries -------------------------------------------------------------
    def exec_freq(self, bb_id: int) -> int:
        profile = self.profiles.get(bb_id)
        return 0 if profile is None else profile.exec_freq

    def frequencies(self) -> dict[int, int]:
        return {bb_id: p.exec_freq for bb_id, p in self.profiles.items()}

    def total_blocks_executed(self) -> int:
        return sum(p.exec_freq for p in self.profiles.values())

    def reset(self) -> None:
        self.profiles.clear()
        self._current = None


def profile_run(
    cdfg: CDFG, function: str, *args, mode: str = "auto"
) -> BlockProfiler:
    """Run ``function`` once under profiling and return the profiler."""
    from .interpreter import Interpreter

    profiler = BlockProfiler()
    with telemetry.span("profile"):
        Interpreter(cdfg, profiler, mode=mode).run(function, *args)
    return profiler


def profiles_from_frequencies(
    cdfg: CDFG, frequencies: dict[int, int]
) -> dict[int, BlockProfile]:
    """Derive full :class:`BlockProfile` records from execution counts.

    ``dynamic_instructions`` and ``dynamic_memory_accesses`` are exact
    static derivations (``freq × per-block instruction / memory-op
    counts``): a block's instructions all execute each time it is entered,
    so no per-instruction observation is needed.  This is what makes the
    content-keyed profile cache possible — frequencies are the only
    dynamic fact worth storing.
    """
    profiles: dict[int, BlockProfile] = {}
    for bb_id, freq in sorted(frequencies.items()):
        if freq == 0:
            continue
        key = cdfg.key_for_id(bb_id)
        block = cdfg.block(key)
        memory_ops = block.memory_access_count()
        profiles[bb_id] = BlockProfile(
            bb_id=bb_id,
            function=key.function,
            label=key.label,
            exec_freq=freq,
            dynamic_memory_accesses=freq * memory_ops,
            dynamic_instructions=freq * len(block.instructions),
        )
    return profiles
