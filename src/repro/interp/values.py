"""Runtime value model for the CFG interpreter.

Scalars are plain Python ``int``/``float`` coerced to their declared type on
every write (C assignment semantics: float-to-int truncates).  Arrays are
flat mutable buffers passed by reference, matching C array parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.ast_nodes import ArrayType, Type

Number = int | float


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program exceeds the configured step budget.

    Lives here (not in :mod:`.interpreter`) so both execution engines —
    the tree walker and the block compiler — can raise the identical
    class without a circular import; :mod:`.interpreter` re-exports it.
    """


def coerce(value: Number, to_type: Type) -> Number:
    """Coerce a number to a declared scalar type (C assignment rules)."""
    if to_type is Type.INT:
        return int(value)
    if to_type is Type.FLOAT:
        return float(value)
    raise TypeError(f"cannot store a value of type {to_type}")


@dataclass
class ArrayStorage:
    """A flat, fixed-size array buffer with element-type coercion."""

    name: str
    element_type: Type
    data: list[Number]

    @classmethod
    def allocate(cls, name: str, array_type: ArrayType) -> "ArrayStorage":
        zero: Number = 0 if array_type.element is Type.INT else 0.0
        return cls(name, array_type.element, [zero] * array_type.size)

    @classmethod
    def from_values(
        cls, name: str, array_type: ArrayType, values: list[Number]
    ) -> "ArrayStorage":
        storage = cls.allocate(name, array_type)
        if len(values) > array_type.size:
            raise ValueError(
                f"{len(values)} initial values exceed array size "
                f"{array_type.size} for {name!r}"
            )
        for index, value in enumerate(values):
            storage.data[index] = coerce(value, array_type.element)
        return storage

    def load(self, index: int) -> Number:
        self._check(index)
        return self.data[index]

    def store(self, index: int, value: Number) -> None:
        self._check(index)
        self.data[index] = coerce(value, self.element_type)

    def _check(self, index: int) -> None:
        if not isinstance(index, int):
            raise TypeError(
                f"array {self.name!r} indexed with non-integer {index!r}"
            )
        if index < 0 or index >= len(self.data):
            raise IndexError(
                f"array {self.name!r} index {index} out of range "
                f"[0, {len(self.data)})"
            )

    def snapshot(self) -> list[Number]:
        return list(self.data)

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class Frame:
    """One activation record: scalar locals, temps and array bindings."""

    function: str
    scalars: dict[str, Number] = field(default_factory=dict)
    temps: dict[int, Number] = field(default_factory=dict)
    arrays: dict[str, ArrayStorage] = field(default_factory=dict)
