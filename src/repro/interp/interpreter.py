"""CFG-level interpreter.

Executes lowered programs directly on their CDFG, which is exactly what the
dynamic-analysis step needs: every basic-block entry fires a hook, giving
per-block execution counts identical to the Lex counter instrumentation the
paper describes (§3.1), but exact instead of relying on modified sources.

Two execution engines share this front door:

* ``mode="walker"`` — the original tree-walking dispatcher below: an
  ``if/elif`` opcode chain with ``isinstance`` operand resolution and two
  hook calls per instruction.  It supports arbitrary
  :class:`InterpreterHook` observers and serves as the differential
  reference implementation.
* ``mode="compiled"`` — the block-compiled fast path
  (:mod:`repro.interp.compiler`): each basic block is translated once into
  a single specialized Python function, and profiling is counter-only
  (block-entry counts; per-instruction statistics derived statically).
  Bit-identical results, ≫5x the throughput.
* ``mode="auto"`` (default) — compiled when the hook is passive (the null
  hook or a plain :class:`~repro.interp.profiler.BlockProfiler`, whose
  statistics the compiled engine reconstructs exactly from block counts),
  walker for any custom hook that needs per-instruction callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..frontend.ast_nodes import ArrayType, Type
from ..ir.basicblock import BasicBlock
from ..ir.cdfg import CDFG
from ..ir.cfg import ControlFlowGraph
from ..ir.operations import (
    ArrayBase,
    Const,
    Instruction,
    Opcode,
    Temp,
    VarRef,
)
from ..ir.opsemantics import evaluate_opcode
from .compiler import CompiledProgram, compile_cdfg
from .values import (
    ArrayStorage,
    ExecutionLimitExceeded,
    Frame,
    Number,
    coerce,
)

__all__ = [
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Interpreter",
    "InterpreterHook",
    "run_function",
]

#: Execution engine selectors accepted by :class:`Interpreter`.
MODES = ("auto", "walker", "compiled")


class InterpreterHook(Protocol):
    """Observer interface for dynamic analysis."""

    def on_block_enter(self, block: BasicBlock, function: str) -> None: ...

    def on_instruction(self, instruction: Instruction, function: str) -> None: ...


@dataclass
class ExecutionResult:
    """Outcome of one top-level call."""

    return_value: Number | None
    steps: int
    blocks_executed: int


@dataclass
class _NullHook:
    def on_block_enter(self, block: BasicBlock, function: str) -> None:
        pass

    def on_instruction(self, instruction: Instruction, function: str) -> None:
        pass


def _is_passive_hook(hook: object) -> bool:
    """Hooks whose observations the compiled engine can reconstruct
    exactly from block-entry counts (no per-instruction side effects)."""
    from .profiler import BlockProfiler

    return type(hook) in (_NullHook, BlockProfiler)


@dataclass
class Interpreter:
    """Executes functions of a CDFG.

    ``max_steps`` bounds total instructions executed across the whole call
    tree so accidentally non-terminating inputs fail fast.  ``mode``
    selects the execution engine (see the module docstring).

    ``compiled_program`` (advanced) supplies a precompiled program —
    it must be ``compile_cdfg(cdfg)`` for this exact CDFG state.  When
    omitted, the first compiled run compiles (or revalidates) the CDFG
    and the result is memoized on this instance; construct a fresh
    ``Interpreter`` after mutating the IR (the walker engine, by
    contrast, always sees mutations immediately).
    """

    cdfg: CDFG
    hook: InterpreterHook = field(default_factory=_NullHook)
    max_steps: int = 200_000_000
    mode: str = "auto"
    compiled_program: CompiledProgram | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown interpreter mode {self.mode!r}; expected one of "
                f"{MODES}"
            )
        if self.mode == "compiled" and not _is_passive_hook(self.hook):
            raise ValueError(
                "compiled mode only supports passive hooks (the null hook "
                "or BlockProfiler); use mode='walker' or 'auto' for custom "
                "per-instruction hooks"
            )
        self._steps = 0
        self._blocks = 0
        self._globals: dict[str, Number] = {}
        self._global_arrays: dict[str, ArrayStorage] = {}
        self._init_globals()

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------
    def _init_globals(self) -> None:
        for decl in self.cdfg.program.globals:
            if isinstance(decl.decl_type, ArrayType):
                values = decl.init_values or []
                self._global_arrays[decl.name] = ArrayStorage.from_values(
                    decl.name, decl.decl_type, list(values)
                )
            else:
                initial = decl.init_values[0] if decl.init_values else 0
                self._globals[decl.name] = coerce(initial, decl.decl_type)

    def global_array(self, name: str) -> ArrayStorage:
        return self._global_arrays[name]

    def global_scalar(self, name: str) -> Number:
        return self._globals[name]

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, function: str, *args: Number | list[Number] | ArrayStorage
    ) -> ExecutionResult:
        """Call ``function`` with positional arguments.

        Array arguments may be Python lists (copied into fresh storage whose
        mutations are visible through the returned storage via
        :meth:`ArrayStorage.snapshot` — pass an :class:`ArrayStorage` to
        observe mutations directly) or existing :class:`ArrayStorage`.
        """
        if self.mode == "compiled" or (
            self.mode == "auto" and _is_passive_hook(self.hook)
        ):
            return self._run_compiled(function, list(args))
        self._steps = 0
        self._blocks = 0
        value = self._call(function, list(args))
        return ExecutionResult(value, self._steps, self._blocks)

    # ------------------------------------------------------------------
    # Compiled engine
    # ------------------------------------------------------------------
    def _run_compiled(self, function: str, args: list) -> ExecutionResult:
        program = self.compiled_program
        if program is None:
            program = self.compiled_program = compile_cdfg(self.cdfg)
        env = program.make_env(
            self._globals, self._global_arrays, self.max_steps
        )
        value = program.call(env, function, args)
        counts = env.counts
        self._feed_passive_hook(program, counts)
        return ExecutionResult(value, env.steps, sum(counts))

    def _feed_passive_hook(
        self, program: CompiledProgram, counts: list[int]
    ) -> None:
        """Reconstruct BlockProfiler statistics from block-entry counts.

        ``dynamic_instructions`` / ``dynamic_memory_accesses`` are derived
        as ``count × static per-block totals``, which attributes every
        instruction to its own block (the walker hook misattributes a
        caller's post-call instructions to the callee's last-entered
        block; execution frequencies and whole-program totals agree
        exactly between the two engines).
        """
        from .profiler import BlockProfile, BlockProfiler

        hook = self.hook
        if type(hook) is not BlockProfiler:
            return
        profiles = hook.profiles
        for info, count in zip(program.slots, counts, strict=True):
            if count == 0:
                continue
            profile = profiles.get(info.bb_id)
            if profile is None:
                profile = BlockProfile(info.bb_id, info.function, info.label)
                profiles[info.bb_id] = profile
            profile.exec_freq += count
            profile.dynamic_instructions += count * info.instruction_count
            profile.dynamic_memory_accesses += (
                count * info.memory_access_count
            )

    # ------------------------------------------------------------------
    # Walker engine
    # ------------------------------------------------------------------
    def _call(self, function: str, args: list) -> Number | None:
        cfg = self.cdfg.cfgs.get(function)
        if cfg is None:
            raise KeyError(f"no function named {function!r}")
        frame = self._make_frame(cfg, args)
        label: str | None = cfg.entry_label
        return_value: Number | None = None
        while label is not None:
            block = cfg.block(label)
            self._blocks += 1
            self.hook.on_block_enter(block, function)
            next_label, return_value, returned = self._execute_block(
                cfg, block, frame
            )
            if returned:
                return return_value
            label = next_label
        return return_value

    def _make_frame(self, cfg: ControlFlowGraph, args: list) -> Frame:
        frame = Frame(cfg.function_name)
        if len(args) != len(cfg.param_names):
            raise TypeError(
                f"{cfg.function_name}() expects {len(cfg.param_names)} "
                f"argument(s), got {len(args)}"
            )
        for name, arg in zip(cfg.param_names, args, strict=True):
            info = cfg.variables[name]
            if info.is_array:
                assert isinstance(info.var_type, ArrayType)
                if isinstance(arg, ArrayStorage):
                    frame.arrays[name] = arg
                elif isinstance(arg, list):
                    frame.arrays[name] = ArrayStorage.from_values(
                        name, info.var_type, arg
                    )
                else:
                    raise TypeError(
                        f"parameter {name!r} expects an array, got "
                        f"{type(arg).__name__}"
                    )
            else:
                if isinstance(arg, (ArrayStorage, list)):
                    raise TypeError(
                        f"parameter {name!r} expects a scalar, got an array"
                    )
                frame.scalars[name] = coerce(arg, info.element_type)
        # Locals are materialized lazily on first write, except arrays which
        # need storage up front.
        for name, info in cfg.variables.items():
            if info.is_global or info.is_param:
                continue
            if info.is_array:
                assert isinstance(info.var_type, ArrayType)
                frame.arrays[name] = ArrayStorage.allocate(name, info.var_type)
        return frame

    def _execute_block(
        self, cfg: ControlFlowGraph, block: BasicBlock, frame: Frame
    ) -> tuple[str | None, Number | None, bool]:
        for instruction in block.instructions:
            self._steps += 1
            if self._steps > self.max_steps:
                raise ExecutionLimitExceeded(
                    f"exceeded {self.max_steps} interpreted instructions"
                )
            self.hook.on_instruction(instruction, cfg.function_name)
            opcode = instruction.opcode
            if opcode is Opcode.BR:
                return instruction.targets[0], None, False
            if opcode is Opcode.CBR:
                cond = self._read(instruction.operands[0], frame)
                target = (
                    instruction.targets[0] if cond else instruction.targets[1]
                )
                return target, None, False
            if opcode is Opcode.RET:
                if instruction.operands:
                    value = self._read(instruction.operands[0], frame)
                    if cfg.return_type is not Type.VOID:
                        value = coerce(value, cfg.return_type)
                    return None, value, True
                return None, None, True
            self._execute_straightline(instruction, frame)
        raise RuntimeError(
            f"block {block.label!r} in {cfg.function_name!r} fell through "
            "without a terminator"
        )

    def _execute_straightline(self, ins: Instruction, frame: Frame) -> None:
        opcode = ins.opcode
        if opcode is Opcode.LOAD:
            base, index = ins.operands
            assert isinstance(base, ArrayBase)
            array = self._array(base.name, frame)
            index_value = int(self._read(index, frame))
            self._write(ins.dest, array.load(index_value), frame, ins.result_type)
            return
        if opcode is Opcode.STORE:
            base, index, value = ins.operands
            assert isinstance(base, ArrayBase)
            array = self._array(base.name, frame)
            index_value = int(self._read(index, frame))
            array.store(index_value, self._read(value, frame))
            return
        if opcode is Opcode.CALL:
            args = []
            for operand in ins.operands:
                if isinstance(operand, ArrayBase):
                    args.append(self._array(operand.name, frame))
                else:
                    args.append(self._read(operand, frame))
            result = self._call(ins.callee or "", args)
            if ins.dest is not None:
                assert result is not None, (
                    f"void call {ins.callee!r} used as a value"
                )
                self._write(ins.dest, result, frame, ins.result_type)
            return
        if opcode is Opcode.COPY:
            value = self._read(ins.operands[0], frame)
            self._write(ins.dest, value, frame, ins.result_type)
            return
        # Pure value operation.
        args = tuple(self._read(op, frame) for op in ins.operands)
        value = evaluate_opcode(opcode, args)
        self._write(ins.dest, value, frame, ins.result_type)

    # ------------------------------------------------------------------
    # Storage access
    # ------------------------------------------------------------------
    def _array(self, name: str, frame: Frame) -> ArrayStorage:
        if name in frame.arrays:
            return frame.arrays[name]
        if name in self._global_arrays:
            return self._global_arrays[name]
        raise KeyError(f"unknown array {name!r}")

    def _read(self, operand, frame: Frame) -> Number:
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, Temp):
            try:
                return frame.temps[operand.index]
            except KeyError as exc:
                raise RuntimeError(
                    f"read of undefined temp {operand} in {frame.function!r}"
                ) from exc
        if isinstance(operand, VarRef):
            if operand.name in frame.scalars:
                return frame.scalars[operand.name]
            if operand.name in self._globals:
                return self._globals[operand.name]
            raise RuntimeError(
                f"read of uninitialized variable {operand.name!r} in "
                f"{frame.function!r}"
            )
        raise TypeError(f"cannot read operand {operand!r}")

    def _write(
        self, dest, value: Number, frame: Frame, result_type: Type
    ) -> None:
        if isinstance(dest, Temp):
            frame.temps[dest.index] = coerce(value, result_type)
            return
        if isinstance(dest, VarRef):
            coerced = coerce(value, dest.vtype)
            if dest.name in self._globals and dest.name not in frame.scalars:
                # Writes to globals hit global storage unless shadowed.
                info = self.cdfg.cfgs[frame.function].variables.get(dest.name)
                if info is not None and info.is_global:
                    self._globals[dest.name] = coerced
                    return
            frame.scalars[dest.name] = coerced
            return
        raise TypeError(f"cannot write to {dest!r}")


def run_function(
    cdfg: CDFG,
    function: str,
    *args,
    hook: InterpreterHook | None = None,
    max_steps: int = 200_000_000,
    mode: str = "auto",
) -> ExecutionResult:
    """One-shot helper: build an interpreter and call ``function``."""
    if hook is None:
        hook = _NullHook()
    return Interpreter(cdfg, hook, max_steps, mode).run(function, *args)
