"""Content-keyed profile/workload cache for dynamic analysis.

Profiling a program on a representative input is deterministic: the same
CDFG, entry point and arguments always produce the same per-block
execution frequencies.  This module keys that computation by content —

    sha256(CDFG fingerprint ‖ entry ‖ argument digest)

— so ``repro.explore`` workers, repeated bench runs and CI stop
re-profiling identical programs.  Frequencies are the only dynamic fact
stored; full :class:`~repro.interp.profiler.BlockProfile` records are
derived statically on the way out
(:func:`~repro.interp.profiler.profiles_from_frequencies`).

Two layers:

* an in-memory dict (always on);
* an opt-in on-disk layer (``ProfileCache(directory=...)``): one small
  JSON file per key, written atomically, shared between processes.  A
  corrupt or unreadable file is treated as a miss.

Because the key includes the CDFG fingerprint, any semantic mutation of
the program (changed constant, added instruction, retargeted branch)
invalidates every cached profile for it automatically.

The cache intentionally does **not** store return values or array
mutations: a cache hit skips execution entirely, so callers that need
outputs (not statistics) should run the interpreter directly.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from .. import telemetry
from ..ir.cdfg import CDFG
from .compiler import cdfg_fingerprint
from .values import ArrayStorage

#: Bump when the stored record layout changes; mismatched files are misses.
_DISK_FORMAT_VERSION = 1


def args_digest(args: tuple) -> str:
    """A stable content hash of a profiling argument tuple.

    Supports the argument kinds the interpreter accepts — numbers, lists
    (nested), and :class:`ArrayStorage` — plus a ``repr`` fallback for
    anything else deterministic.
    """
    digest = hashlib.sha256()

    def feed(value) -> None:
        if isinstance(value, bool):  # bool is an int subclass; disambiguate
            digest.update(f"b:{value}".encode())
        elif isinstance(value, int):
            digest.update(f"i:{value}".encode())
        elif isinstance(value, float):
            digest.update(f"f:{value!r}".encode())
        elif isinstance(value, (list, tuple)):
            digest.update(f"l:{len(value)}[".encode())
            for item in value:
                feed(item)
            digest.update(b"]")
        elif isinstance(value, ArrayStorage):
            digest.update(
                f"a:{value.element_type.name}:{len(value)}[".encode()
            )
            for item in value.data:
                feed(item)
            digest.update(b"]")
        else:
            digest.update(f"r:{value!r}".encode())
        digest.update(b"\x00")

    for arg in args:
        feed(arg)
    return digest.hexdigest()


def profile_key(
    cdfg: CDFG, entry: str, args: tuple, fingerprint: str | None = None
) -> str:
    """The full content key of one profiling run.

    ``fingerprint`` lets batch callers hash the CDFG once and reuse it
    across many (entry, args) keys.
    """
    if fingerprint is None:
        fingerprint = cdfg_fingerprint(cdfg)
    payload = f"{fingerprint}:{entry}:{args_digest(args)}"
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CachedProfile:
    """One stored profiling outcome (frequencies + execution metadata)."""

    frequencies: dict[int, int]
    steps: int
    blocks_executed: int

    def to_json(self) -> dict:
        return {
            "version": _DISK_FORMAT_VERSION,
            "frequencies": {str(k): v for k, v in self.frequencies.items()},
            "steps": self.steps,
            "blocks_executed": self.blocks_executed,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CachedProfile | None":
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != _DISK_FORMAT_VERSION:
            return None
        try:
            frequencies = {
                int(k): int(v) for k, v in payload["frequencies"].items()
            }
            return cls(
                frequencies=frequencies,
                steps=int(payload["steps"]),
                blocks_executed=int(payload["blocks_executed"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


@dataclass
class CacheStats:
    """Hit/miss counters, split by layer."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


@dataclass
class ProfileCache:
    """Content-keyed cache of profiling runs (memory + optional disk).

    ``directory=None`` keeps the cache purely in-memory; passing a path
    enables the shared on-disk layer (created on first write).
    """

    directory: str | Path | None = None
    max_steps: int = 200_000_000
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._memory: dict[str, CachedProfile] = {}
        if self.directory is not None:
            self.directory = Path(self.directory)

    # ------------------------------------------------------------------
    # Core lookup
    # ------------------------------------------------------------------
    def get_or_run(
        self,
        cdfg: CDFG,
        entry: str,
        *args,
        fingerprint: str | None = None,
    ) -> CachedProfile:
        """Return the cached profile for (cdfg, entry, args), executing
        the program under the counter-only compiled profiler on a miss.

        ``fingerprint`` (optional) skips re-hashing the CDFG when the
        caller already computed it for this batch.
        """
        if fingerprint is None:
            fingerprint = cdfg_fingerprint(cdfg)
        key = profile_key(cdfg, entry, args, fingerprint)
        record = self._memory.get(key)
        if record is not None:
            self.stats.memory_hits += 1
            telemetry.count("profile_cache_hits")
            return record
        record = self._load_disk(key)
        if record is not None:
            self.stats.disk_hits += 1
            telemetry.count("profile_cache_hits")
            self._memory[key] = record
            return record
        self.stats.misses += 1
        telemetry.count("profile_cache_misses")
        with telemetry.span("profile"):
            record = self._execute(cdfg, entry, args, fingerprint)
        self._memory[key] = record
        self._store_disk(key, record)
        return record

    def _execute(
        self, cdfg: CDFG, entry: str, args: tuple, fingerprint: str
    ) -> CachedProfile:
        from .compiler import compile_cdfg
        from .interpreter import Interpreter
        from .profiler import BlockProfiler

        # The key's fingerprint is trusted, so compilation (or cached-
        # program revalidation) skips a redundant re-hash.
        program = compile_cdfg(cdfg, fingerprint=fingerprint)
        profiler = BlockProfiler()
        result = Interpreter(
            cdfg,
            profiler,
            max_steps=self.max_steps,
            mode="compiled",
            compiled_program=program,
        ).run(entry, *args)
        return CachedProfile(
            frequencies=profiler.frequencies(),
            steps=result.steps,
            blocks_executed=result.blocks_executed,
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def profile(
        self,
        cdfg: CDFG,
        entry: str,
        *args,
        fingerprint: str | None = None,
    ):
        """A :class:`~repro.analysis.dynamic_analysis.DynamicProfile` for
        one representative input (cached)."""
        from ..analysis.dynamic_analysis import DynamicProfile

        record = self.get_or_run(cdfg, entry, *args, fingerprint=fingerprint)
        return DynamicProfile(frequencies=dict(record.frequencies), runs=1)

    def profile_many(self, cdfg: CDFG, entry: str, input_sets: list[tuple]):
        """Accumulate cached profiles across several representative
        inputs (each input set is cached independently; the CDFG is
        fingerprinted once for the whole batch)."""
        from ..analysis.dynamic_analysis import DynamicProfile

        fingerprint = cdfg_fingerprint(cdfg)
        combined = DynamicProfile()
        for args in input_sets:
            combined.merge(
                self.profile(cdfg, entry, *args, fingerprint=fingerprint)
            )
        return combined

    def block_profiles(self, cdfg: CDFG, entry: str, *args):
        """Full derived ``{bb_id: BlockProfile}`` statistics (cached)."""
        from .profiler import profiles_from_frequencies

        record = self.get_or_run(cdfg, entry, *args)
        return profiles_from_frequencies(cdfg, record.frequencies)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return Path(self.directory) / f"{key}.json"

    def _load_disk(self, key: str) -> CachedProfile | None:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return CachedProfile.from_json(payload)

    def _store_disk(self, key: str, record: CachedProfile) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(record.to_json()))
            os.replace(tmp, path)
        except OSError:
            # The disk layer is best-effort; a read-only or full volume
            # degrades to memory-only caching.
            pass

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)


#: Environment variable naming a shared on-disk profile-cache directory.
#: CI exports it so ``actions/cache`` can persist profiling work between
#: runs; anything building measured workloads without an explicit cache
#: (CLI one-shots, serve workers, benches) picks it up automatically.
PROFILE_CACHE_DIR_ENV = "REPRO_PROFILE_CACHE_DIR"


def default_profile_cache() -> ProfileCache:
    """A fresh cache honouring :data:`PROFILE_CACHE_DIR_ENV`.

    With the variable unset this is a plain in-memory cache — identical
    to what callers got before the hook existed.  The in-memory layer is
    per-instance either way; only the disk layer is shared.
    """
    directory = os.environ.get(PROFILE_CACHE_DIR_ENV)
    return ProfileCache(directory=directory or None)
