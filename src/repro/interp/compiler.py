"""Block-compiled execution engine: the interpreter's fast path.

The tree-walking :class:`~repro.interp.interpreter.Interpreter` resolves
every operand with ``isinstance`` chains and dispatches every opcode
through a long ``if/elif`` ladder, twice per instruction (read + write),
plus two hook calls.  For dynamic analysis (§3.1) that cost dominates
whole ``repro.explore`` sweeps, because each profiling run interprets
hundreds of thousands of instructions.

This module translates each basic block *once* into a single specialized
Python function:

* operand accessors are resolved at compile time — a ``Temp`` becomes a
  list index, a local scalar a dict item, a global a lookup in the shared
  global store, a ``Const`` an inline literal;
* the whole straight-line run of a block is fused into one generated
  function body, so executing a block is one call instead of one dispatch
  per instruction;
* terminators return the successor *block object* directly (resolved at
  link time), so the driver loop never looks labels up;
* scalar-type coercions (``coerce``) are specialized to bare ``int()`` /
  ``float()`` calls chosen at compile time.

Execution is bit-identical to the walker for every valid program: the
same arithmetic helpers (:mod:`repro.ir.opsemantics`), the same
:class:`~repro.interp.values.ArrayStorage` bounds/type-checked accesses,
the same frame-binding rules and error messages.  The walker stays as the
differential reference (``Interpreter(mode="walker")``), exactly like
``EngineConfig.incremental=False`` does for the partitioning engine.

Profiling in compiled mode is counter-only: the driver increments one
integer per *block entry* (``env.counts[slot] += 1``); per-block
``dynamic_instructions`` / ``dynamic_memory_accesses`` are derived after
the run as ``exec_freq × static per-block counts`` instead of firing a
hook per instruction.  (For blocks containing calls the derived
attribution is in fact *more* accurate than the walker's
:class:`~repro.interp.profiler.BlockProfiler`, which attributes a
caller's post-call instructions to the callee's last block; totals agree
exactly either way.)

Compiled programs are cached on the CDFG keyed by a content fingerprint
(:func:`cdfg_fingerprint`), which is also the key of the profile cache in
:mod:`repro.interp.cache` — mutating the CDFG invalidates both.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from ..frontend.ast_nodes import ArrayType, Type
from ..ir.cdfg import CDFG
from ..ir.cfg import ControlFlowGraph
from ..ir.operations import ArrayBase, Const, Instruction, Opcode, Temp, VarRef
from ..ir.opsemantics import c_div, c_mod, c_round, evaluate_opcode
from ..ir.verify import assert_verified, sanitizer_enabled
from .values import ArrayStorage, ExecutionLimitExceeded, coerce


class CompileError(ValueError):
    """Raised when a CDFG contains IR the compiler cannot translate."""


# ----------------------------------------------------------------------
# Content fingerprinting
# ----------------------------------------------------------------------
def cdfg_fingerprint(cdfg: CDFG) -> str:
    """A stable content hash of a CDFG's executable semantics.

    Covers globals (name, type, initializer, constness), every function's
    signature and variable table, and every instruction of every block in
    program order.  Two CDFGs lowered from identical source always agree;
    any semantic mutation (changed constant, added instruction, retargeted
    branch) changes the fingerprint.
    """
    digest = hashlib.sha256()

    def feed(text: str) -> None:
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")

    for decl in cdfg.program.globals:
        feed(
            f"G {decl.name} {decl.decl_type} {decl.init_values!r} "
            f"{decl.is_const}"
        )
    for function in cdfg.program.functions:
        cfg = cdfg.cfgs[function.name]
        feed(f"F {cfg.function_name} {cfg.return_type} {cfg.param_names!r}")
        for name in sorted(cfg.variables):
            info = cfg.variables[name]
            feed(
                f"V {info.name} {info.var_type} {info.is_param} "
                f"{info.is_global} {info.is_const}"
            )
        feed(f"E {cfg.entry_label}")
        for label in cfg.reverse_post_order():
            block = cfg.block(label)
            feed(f"B {label}")
            for ins in block.instructions:
                feed(
                    f"I {ins.opcode.name} {ins.dest!r} {ins.operands!r} "
                    f"{ins.targets!r} {ins.callee!r} {ins.result_type}"
                )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Compiled program structure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlockInfo:
    """Static per-block facts backing derived dynamic statistics."""

    slot: int
    bb_id: int
    function: str
    label: str
    instruction_count: int
    memory_access_count: int


@dataclass(frozen=True)
class _ParamSpec:
    name: str
    is_array: bool
    var_type: Type | ArrayType
    element_type: Type


class CompiledFunction:
    """One function: linked block objects plus frame-binding metadata."""

    __slots__ = (
        "name",
        "entry",
        "params",
        "local_arrays",
        "temp_count",
    )

    def __init__(
        self,
        name: str,
        params: tuple[_ParamSpec, ...],
        local_arrays: tuple[tuple[str, ArrayType], ...],
        temp_count: int,
    ) -> None:
        self.name = name
        self.entry: tuple | None = None  # linked after block codegen
        self.params = params
        self.local_arrays = local_arrays
        self.temp_count = temp_count


class _Env:
    """Shared mutable execution state threaded through block functions."""

    __slots__ = (
        "globals",
        "global_arrays",
        "functions",
        "counts",
        "steps",
        "max_steps",
        "ret",
    )

    def __init__(
        self,
        global_scalars: dict,
        global_arrays: dict,
        functions: dict[str, CompiledFunction],
        slot_count: int,
        max_steps: int,
    ) -> None:
        self.globals = global_scalars
        self.global_arrays = global_arrays
        self.functions = functions
        self.counts = [0] * slot_count
        self.steps = 0
        self.max_steps = max_steps
        self.ret = None


class CompiledProgram:
    """All functions of one CDFG, compiled and linked."""

    def __init__(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.functions: dict[str, CompiledFunction] = {}
        self.slots: list[BlockInfo] = []

    def make_env(
        self,
        global_scalars: dict,
        global_arrays: dict,
        max_steps: int,
    ) -> _Env:
        return _Env(
            global_scalars,
            global_arrays,
            self.functions,
            len(self.slots),
            max_steps,
        )

    def call(self, env: _Env, function: str, args: list):
        cfunc = self.functions.get(function)
        if cfunc is None:
            raise KeyError(f"no function named {function!r}")
        return _run_function(env, cfunc, args)


# ----------------------------------------------------------------------
# Runtime support (referenced from generated code)
# ----------------------------------------------------------------------
_MISSING = object()


def _read_shadowed(s: dict, g: dict, name: str, function: str):
    """Local-scalar read where the name shadows a global (walker rule:
    frame first, then global storage, else error)."""
    value = s.get(name, _MISSING)
    if value is not _MISSING:
        return value
    value = g.get(name, _MISSING)
    if value is not _MISSING:
        return value
    raise RuntimeError(
        f"read of uninitialized variable {name!r} in {function!r}"
    )


def _read_temp(t: list, index: int, function: str):
    """Guarded temp read for temps not provably written earlier in the
    same block: keeps the walker's loud failure on malformed IR instead
    of silently treating an unwritten slot (None) as falsy."""
    value = t[index]
    if value is None:
        raise RuntimeError(
            f"read of undefined temp %t{index} in {function!r}"
        )
    return value


class _PassThroughKeyError(KeyError):
    """A ``KeyError`` (the walker's class for these conditions) that the
    driver's uninitialized-variable conversion must let through."""


class UnknownFunctionError(_PassThroughKeyError):
    """Unknown call target."""


class UnknownArrayError(_PassThroughKeyError):
    """Array name that is neither function-local nor global."""


def _unknown_array(name: str):
    raise UnknownArrayError(f"unknown array {name!r}")


def _fell_through(label: str, function: str):
    raise RuntimeError(
        f"block {label!r} in {function!r} fell through without a terminator"
    )


def _call(env: _Env, name: str, args: list):
    cfunc = env.functions.get(name)
    if cfunc is None:
        raise UnknownFunctionError(f"no function named {name!r}")
    return _run_function(env, cfunc, args)


def _bind_frame(cfunc: CompiledFunction, args: list):
    """Replicates ``Interpreter._make_frame`` (messages included)."""
    params = cfunc.params
    if len(args) != len(params):
        raise TypeError(
            f"{cfunc.name}() expects {len(params)} argument(s), "
            f"got {len(args)}"
        )
    scalars: dict = {}
    arrays: dict[str, ArrayStorage] = {}
    for spec, arg in zip(params, args, strict=True):
        if spec.is_array:
            assert isinstance(spec.var_type, ArrayType)
            if isinstance(arg, ArrayStorage):
                arrays[spec.name] = arg
            elif isinstance(arg, list):
                arrays[spec.name] = ArrayStorage.from_values(
                    spec.name, spec.var_type, arg
                )
            else:
                raise TypeError(
                    f"parameter {spec.name!r} expects an array, got "
                    f"{type(arg).__name__}"
                )
        else:
            if isinstance(arg, (ArrayStorage, list)):
                raise TypeError(
                    f"parameter {spec.name!r} expects a scalar, got an array"
                )
            scalars[spec.name] = coerce(arg, spec.element_type)
    for name, array_type in cfunc.local_arrays:
        arrays[name] = ArrayStorage.allocate(name, array_type)
    temps = [None] * cfunc.temp_count
    return temps, scalars, arrays


def _run_function(env: _Env, cfunc: CompiledFunction, args: list):
    """The compiled driver loop: one iteration per basic-block entry."""
    t, s, fa = _bind_frame(cfunc, args)
    counts = env.counts
    max_steps = env.max_steps
    block = cfunc.entry
    try:
        while block is not None:
            execute, n_steps, slot = block
            counts[slot] += 1
            steps = env.steps + n_steps
            if steps > max_steps:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_steps} interpreted instructions"
                )
            env.steps = steps
            block = execute(env, t, s, fa)
    except _PassThroughKeyError:
        raise
    except KeyError as exc:
        # The only other KeyError generated code can raise on a verified
        # CDFG is a local-scalar read before any write (``s[name]``);
        # convert it to the walker's diagnostic.
        key = exc.args[0] if exc.args else None
        if isinstance(key, str):
            raise RuntimeError(
                f"read of uninitialized variable {key!r} in {cfunc.name!r}"
            ) from exc
        raise
    return env.ret


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
#: Pure value-op expression templates; ``{0}``/``{1}``/``{2}`` are fully
#: parenthesized operand expressions.  Semantics mirror ``evaluate_opcode``.
_PURE_TEMPLATES: dict[Opcode, str] = {
    Opcode.ADD: "({0} + {1})",
    Opcode.SUB: "({0} - {1})",
    Opcode.MUL: "({0} * {1})",
    Opcode.DIV: "_cdiv({0}, {1})",
    Opcode.MOD: "_cmod(int({0}), int({1}))",
    Opcode.SHL: "(int({0}) << int({1}))",
    Opcode.SHR: "(int({0}) >> int({1}))",
    Opcode.AND: "(int({0}) & int({1}))",
    Opcode.OR: "(int({0}) | int({1}))",
    Opcode.XOR: "(int({0}) ^ int({1}))",
    Opcode.NEG: "(-{0})",
    Opcode.BNOT: "(~int({0}))",
    Opcode.LNOT: "(0 if {0} else 1)",
    Opcode.LT: "(1 if {0} < {1} else 0)",
    Opcode.GT: "(1 if {0} > {1} else 0)",
    Opcode.LE: "(1 if {0} <= {1} else 0)",
    Opcode.GE: "(1 if {0} >= {1} else 0)",
    Opcode.EQ: "(1 if {0} == {1} else 0)",
    Opcode.NE: "(1 if {0} != {1} else 0)",
    Opcode.SELECT: "({1} if {0} else {2})",
    Opcode.ABS: "abs({0})",
    Opcode.MIN: "min({0}, {1})",
    Opcode.MAX: "max({0}, {1})",
    Opcode.SQRT: "_sqrt({0})",
    Opcode.SIN: "_sin({0})",
    Opcode.COS: "_cos({0})",
    Opcode.FLOOR: "float(_floor({0}))",
    Opcode.ROUND: "_round({0})",
    Opcode.I2F: "float({0})",
    Opcode.F2I: "int({0})",
    Opcode.COPY: "{0}",
}


class _FunctionCompiler:
    """Generates and links the block functions of one CFG."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        program: CompiledProgram,
        global_scalar_names: frozenset[str],
        global_array_names: frozenset[str],
    ) -> None:
        self.cfg = cfg
        self.program = program
        self.global_scalar_names = global_scalar_names
        self.global_array_names = global_array_names
        # Shared exec namespace: block functions resolve their successor
        # objects (``_blk_<label>``) through it at call time, which makes
        # forward references and loops link without a second pass.
        self.namespace: dict = {
            "_call": _call,
            "_cdiv": c_div,
            "_cmod": c_mod,
            "_round": c_round,
            "_sqrt": math.sqrt,
            "_sin": math.sin,
            "_cos": math.cos,
            "_floor": math.floor,
            "_coerce": coerce,
            "_Type": Type,
            "_eval": evaluate_opcode,
            "_Opcode": Opcode,
            "_shadowed": _read_shadowed,
            "_rt": _read_temp,
            "_unknown_array": _unknown_array,
            "_fell_through": _fell_through,
            "abs": abs,
            "min": min,
            "max": max,
            "int": int,
            "float": float,
        }
        # Per-block state, reset in _compile_block.
        self._lines: list[str] = []
        self._array_vars: dict[str, str] = {}
        self._needs_globals = False
        self._needs_global_arrays = False
        self._written_temps: set[int] = set()

    # -- frame metadata ------------------------------------------------
    def function_spec(self) -> CompiledFunction:
        cfg = self.cfg
        params = []
        for name in cfg.param_names:
            info = cfg.variables[name]
            params.append(
                _ParamSpec(name, info.is_array, info.var_type, info.element_type)
            )
        local_arrays = []
        for name, info in cfg.variables.items():
            if info.is_global or info.is_param:
                continue
            if info.is_array:
                assert isinstance(info.var_type, ArrayType)
                local_arrays.append((name, info.var_type))
        temp_count = 0
        for block in cfg.blocks.values():
            for ins in block.instructions:
                if isinstance(ins.dest, Temp):
                    temp_count = max(temp_count, ins.dest.index + 1)
                for operand in ins.operands:
                    if isinstance(operand, Temp):
                        temp_count = max(temp_count, operand.index + 1)
        return CompiledFunction(
            cfg.function_name, tuple(params), tuple(local_arrays), temp_count
        )

    # -- operand/expression emission -----------------------------------
    def _array_expr(self, name: str) -> str:
        """A hoisted local variable bound to the ArrayStorage for ``name``."""
        var = self._array_vars.get(name)
        if var is not None:
            return var
        info = self.cfg.variables.get(name)
        if info is not None and info.is_array and not info.is_global:
            source = f"fa[{name!r}]"
        elif (info is not None and info.is_global) or (
            name in self.global_array_names
        ):
            source = f"ga[{name!r}]"
            self._needs_global_arrays = True
        else:
            # The walker would only discover this at runtime; preserve
            # its KeyError lazily instead of failing the whole compile.
            source = f"_unknown_array({name!r})"
        var = f"_a{len(self._array_vars)}"
        self._array_vars[name] = var
        self._lines.append(f"    {var} = {source}")
        return var

    def _read_expr(self, operand) -> str:
        if isinstance(operand, Const):
            return f"({operand.value!r})"
        if isinstance(operand, Temp):
            if operand.index in self._written_temps:
                return f"t[{operand.index}]"
            # Not provably written earlier in this block (a cross-block
            # temp or malformed IR): guard the read so undefined temps
            # fail loudly like the walker's.
            return (
                f"_rt(t, {operand.index}, {self.cfg.function_name!r})"
            )
        if isinstance(operand, VarRef):
            name = operand.name
            info = self.cfg.variables.get(name)
            if info is not None and info.is_global:
                self._needs_globals = True
                return f"g[{name!r}]"
            if name in self.global_scalar_names:
                # Shadowing local: the walker falls back to the global
                # value on read-before-write; keep that via a helper.
                self._needs_globals = True
                return (
                    f"_shadowed(s, g, {name!r}, "
                    f"{self.cfg.function_name!r})"
                )
            return f"s[{name!r}]"
        raise CompileError(f"cannot read operand {operand!r}")

    def _emit_write(self, dest, expr: str, result_type: Type) -> None:
        if isinstance(dest, Temp):
            target = f"t[{dest.index}]"
            coerce_type = result_type
            self._written_temps.add(dest.index)
        elif isinstance(dest, VarRef):
            coerce_type = dest.vtype
            info = self.cfg.variables.get(dest.name)
            if info is not None and info.is_global:
                self._needs_globals = True
                target = f"g[{dest.name!r}]"
            else:
                target = f"s[{dest.name!r}]"
        else:
            raise CompileError(f"cannot write to {dest!r}")
        if coerce_type is Type.INT:
            self._lines.append(f"    {target} = int({expr})")
        elif coerce_type is Type.FLOAT:
            self._lines.append(f"    {target} = float({expr})")
        else:
            # coerce() raises the walker's TypeError for anything else.
            self._lines.append(
                f"    {target} = _coerce({expr}, _Type.{coerce_type.name})"
            )

    # -- instruction emission ------------------------------------------
    def _emit_instruction(self, ins: Instruction) -> None:
        opcode = ins.opcode
        if opcode is Opcode.BR:
            self._lines.append(f"    return _blk_{ins.targets[0]}")
            return
        if opcode is Opcode.CBR:
            cond = self._read_expr(ins.operands[0])
            self._lines.append(
                f"    return _blk_{ins.targets[0]} if {cond} "
                f"else _blk_{ins.targets[1]}"
            )
            return
        if opcode is Opcode.RET:
            if ins.operands:
                value = self._read_expr(ins.operands[0])
                return_type = self.cfg.return_type
                if return_type is Type.INT:
                    value = f"int({value})"
                elif return_type is Type.FLOAT:
                    value = f"float({value})"
                self._lines.append(f"    env.ret = {value}")
            else:
                self._lines.append("    env.ret = None")
            self._lines.append("    return None")
            return
        if opcode is Opcode.LOAD:
            base, index = ins.operands
            assert isinstance(base, ArrayBase)
            array = self._array_expr(base.name)
            index_expr = self._read_expr(index)
            self._emit_write(
                ins.dest, f"{array}.load(int({index_expr}))", ins.result_type
            )
            return
        if opcode is Opcode.STORE:
            base, index, value = ins.operands
            assert isinstance(base, ArrayBase)
            array = self._array_expr(base.name)
            index_expr = self._read_expr(index)
            value_expr = self._read_expr(value)
            self._lines.append(
                f"    {array}.store(int({index_expr}), {value_expr})"
            )
            return
        if opcode is Opcode.CALL:
            arg_exprs = []
            for operand in ins.operands:
                if isinstance(operand, ArrayBase):
                    arg_exprs.append(self._array_expr(operand.name))
                else:
                    arg_exprs.append(self._read_expr(operand))
            call = f"_call(env, {ins.callee or ''!r}, [{', '.join(arg_exprs)}])"
            if ins.dest is not None:
                self._lines.append(f"    _r = {call}")
                self._lines.append(
                    f"    assert _r is not None, "
                    f"{f'void call {ins.callee!r} used as a value'!r}"
                )
                self._emit_write(ins.dest, "_r", ins.result_type)
            else:
                self._lines.append(f"    {call}")
            return
        template = _PURE_TEMPLATES.get(opcode)
        if template is not None:
            args = [self._read_expr(op) for op in ins.operands]
            self._emit_write(ins.dest, template.format(*args), ins.result_type)
            return
        # Unknown value opcode: route through the shared evaluator so the
        # compiled path can never disagree with the walker.
        args = ", ".join(self._read_expr(op) for op in ins.operands)
        trailing = "," if len(ins.operands) == 1 else ""
        self._emit_write(
            ins.dest,
            f"_eval(_Opcode.{opcode.name}, ({args}{trailing}))",
            ins.result_type,
        )

    # -- block compilation ---------------------------------------------
    def _compile_block(self, label: str) -> tuple:
        block = self.cfg.block(label)
        self._lines = []
        self._array_vars = {}
        self._needs_globals = False
        self._needs_global_arrays = False
        self._written_temps = set()

        for ins in block.instructions:
            self._emit_instruction(ins)
        if block.terminator is None:
            self._lines.append(
                f"    return _fell_through({label!r}, "
                f"{self.cfg.function_name!r})"
            )

        prelude = []
        if self._needs_globals:
            prelude.append("    g = env.globals")
        if self._needs_global_arrays:
            prelude.append("    ga = env.global_arrays")
        header = "def _block_fn(env, t, s, fa):"
        source = "\n".join([header, *prelude, *self._lines])
        code = compile(source, f"<compiled {self.cfg.function_name}/{label}>", "exec")
        exec(code, self.namespace)
        execute = self.namespace.pop("_block_fn")

        slot = len(self.program.slots)
        self.program.slots.append(
            BlockInfo(
                slot=slot,
                bb_id=block.bb_id,
                function=self.cfg.function_name,
                label=label,
                instruction_count=len(block.instructions),
                memory_access_count=block.memory_access_count(),
            )
        )
        return (execute, len(block.instructions), slot)

    def compile(self) -> CompiledFunction:
        cfunc = self.function_spec()
        order = self.cfg.reverse_post_order()
        for label in order:
            block_obj = self._compile_block(label)
            self.namespace[f"_blk_{label}"] = block_obj
            if label == self.cfg.entry_label:
                cfunc.entry = block_obj
        if cfunc.entry is None:  # entry unreachable from RPO is impossible
            raise CompileError(
                f"function {self.cfg.function_name!r} has no entry block"
            )
        return cfunc


def _compile_program(cdfg: CDFG, fingerprint: str | None = None) -> CompiledProgram:
    program = CompiledProgram(fingerprint or cdfg_fingerprint(cdfg))
    global_scalars = frozenset(
        decl.name
        for decl in cdfg.program.globals
        if not isinstance(decl.decl_type, ArrayType)
    )
    global_arrays = frozenset(
        decl.name
        for decl in cdfg.program.globals
        if isinstance(decl.decl_type, ArrayType)
    )
    # Function declaration order matches CDFG bb_id assignment, so slots
    # come out in ascending bb_id order.
    for function in cdfg.program.functions:
        cfg = cdfg.cfgs[function.name]
        compiler = _FunctionCompiler(
            cfg, program, global_scalars, global_arrays
        )
        program.functions[cfg.function_name] = compiler.compile()
    return program


_COMPILED_ATTR = "_compiled_program_cache"


def compile_cdfg(
    cdfg: CDFG, force: bool = False, fingerprint: str | None = None
) -> CompiledProgram:
    """Compile (or fetch the cached compilation of) a whole CDFG.

    The compiled program is cached on the CDFG instance keyed by its
    content fingerprint, so mutating the IR transparently triggers a
    recompile while repeated ``Interpreter`` constructions stay cheap.
    ``fingerprint`` lets a caller that already hashed this exact CDFG
    state (e.g. the profile cache's key computation) skip re-hashing.
    """
    if fingerprint is None:
        fingerprint = cdfg_fingerprint(cdfg)
    cached: CompiledProgram | None = getattr(cdfg, _COMPILED_ATTR, None)
    if cached is not None and not force:
        if cached.fingerprint == fingerprint:
            return cached
    if sanitizer_enabled():
        # One static verification per compiled fingerprint: malformed IR
        # is rejected with block-level diagnostics before any code is
        # generated from it (the cache means this never runs twice for
        # the same CDFG content).
        assert_verified(cdfg, "block compiler")
    program = _compile_program(cdfg, fingerprint)
    setattr(cdfg, _COMPILED_ATTR, program)
    return program
