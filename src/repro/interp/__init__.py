"""Execution substrate: a CFG interpreter with profiling hooks.

Replaces the paper's Lex-instrumented native execution for dynamic analysis
(§3.1) with exact interpreted per-basic-block counters.
"""

from .interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    Interpreter,
    run_function,
)
from .profiler import BlockProfile, BlockProfiler, profile_run
from .values import ArrayStorage, Frame, coerce

__all__ = [
    "ArrayStorage",
    "BlockProfile",
    "BlockProfiler",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Frame",
    "Interpreter",
    "coerce",
    "profile_run",
    "run_function",
]
