"""Execution substrate: a CFG interpreter with profiling hooks.

Replaces the paper's Lex-instrumented native execution for dynamic analysis
(§3.1) with exact interpreted per-basic-block counters.  Two engines share
one front door: the tree-walking reference interpreter and the
block-compiled fast path (:mod:`repro.interp.compiler`), selected by
``Interpreter(mode=...)``.  Profiling runs are memoized content-keyed by
:class:`ProfileCache` (:mod:`repro.interp.cache`).
"""

from .cache import CachedProfile, CacheStats, ProfileCache, args_digest, profile_key
from .compiler import CompiledProgram, CompileError, cdfg_fingerprint, compile_cdfg
from .interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    Interpreter,
    run_function,
)
from .profiler import (
    BlockProfile,
    BlockProfiler,
    profile_run,
    profiles_from_frequencies,
)
from .values import ArrayStorage, Frame, coerce

__all__ = [
    "ArrayStorage",
    "BlockProfile",
    "BlockProfiler",
    "CachedProfile",
    "CacheStats",
    "CompileError",
    "CompiledProgram",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Frame",
    "Interpreter",
    "ProfileCache",
    "args_digest",
    "cdfg_fingerprint",
    "coerce",
    "compile_cdfg",
    "profile_key",
    "profile_run",
    "profiles_from_frequencies",
    "run_function",
]
