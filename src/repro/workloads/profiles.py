"""Calibrated workload models of the paper's two applications.

Table 1 of the paper publishes, for the 8 computationally heaviest basic
blocks of each application, the exact execution frequency, operation weight
and total weight the analysis step produced.  Those rows are encoded here
*verbatim* (:data:`OFDM_TABLE1`, :data:`JPEG_TABLE1`) and drive synthetic
DFG generation, so the partitioning engine sees blocks with exactly the
paper's statistics.

The applications' remaining blocks (OFDM has 18 BBs in total, JPEG 22) are
below the Table 1 cut-off; we model them with filler profiles whose total
weights sit under the lightest published row.

Shape parameters (DFG width, memory intensity, serial-RMW structure,
live-value counts) are *calibrated*: they were chosen, once, so that the
partitioning engine reproduces the paper's Tables 2/3 kernel selections and
reduction trends on the default platform; see EXPERIMENTS.md for the full
paper-vs-measured record.  The Table 1 statistics themselves are never
altered by calibration.

Units note: the paper reports JPEG cycle counts "(×10^6)" with the timing
constraint 11×10^6; internally we treat the published JPEG table values as
kilocycles (e.g. initial 18434 → 18.434×10^6 cycles), which is the only
reading consistent with the constraint and the published reduction
percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..partition.workload import ApplicationWorkload, BlockWorkload
from .synthetic import SyntheticBlockProfile, generate_dfg


# ----------------------------------------------------------------------
# Table 1 — verbatim rows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PaperKernelRow:
    """One row of the paper's Table 1."""

    bb_id: int
    exec_freq: int
    ops_weight: int
    total_weight: int

    def __post_init__(self) -> None:
        if self.exec_freq * self.ops_weight != self.total_weight:
            raise ValueError(
                f"Table 1 row BB{self.bb_id} inconsistent: "
                f"{self.exec_freq} × {self.ops_weight} != {self.total_weight}"
            )


OFDM_TABLE1: list[PaperKernelRow] = [
    PaperKernelRow(22, 336, 115, 38640),
    PaperKernelRow(12, 1200, 25, 30000),
    PaperKernelRow(3, 864, 6, 5184),
    PaperKernelRow(5, 370, 12, 4440),
    PaperKernelRow(42, 800, 5, 4000),
    PaperKernelRow(32, 560, 6, 3360),
    PaperKernelRow(29, 448, 7, 3136),
    PaperKernelRow(21, 147, 18, 2646),
]

JPEG_TABLE1: list[PaperKernelRow] = [
    PaperKernelRow(6, 355024, 3, 1065072),
    PaperKernelRow(2, 8192, 85, 696320),
    PaperKernelRow(1, 8192, 83, 679936),
    PaperKernelRow(22, 65536, 5, 327680),
    PaperKernelRow(8, 30927, 8, 247416),
    PaperKernelRow(3, 65536, 3, 196608),
    PaperKernelRow(16, 63540, 3, 190620),
    PaperKernelRow(17, 63540, 2, 127080),
]

#: Timing constraints of §4 (FPGA clock cycles).
OFDM_TIMING_CONSTRAINT = 60_000
JPEG_TIMING_CONSTRAINT = 11_000_000

#: Total block counts stated in §4.
OFDM_TOTAL_BLOCKS = 18
JPEG_TOTAL_BLOCKS = 22


# ----------------------------------------------------------------------
# Profile construction helpers
# ----------------------------------------------------------------------
def make_profile(
    bb_id: int,
    exec_freq: int,
    weight: int,
    *,
    mul_fraction: float = 0.3,
    width: float = 2.0,
    mem_factor: float = 0.5,
    serial_mem_ops: int | None = None,
    live: tuple[int, int] = (1, 1),
    name: str = "",
) -> SyntheticBlockProfile:
    """Build a profile whose analysis weight is exactly ``weight``.

    ``mul_fraction`` is the share of the weight carried by multiplications
    (``weight = alu + 2·mul``).  For layered blocks, ``mem_factor`` scales
    memory ops relative to compute ops; passing ``serial_mem_ops`` instead
    builds a serial read-modify-write block with that many buffer accesses.
    """
    mul = max(0, min(int(round(weight * mul_fraction / 2.0)), weight // 2))
    alu = weight - 2 * mul
    if alu == 0 and mul == 0:
        alu = weight
    compute = alu + mul
    serial = serial_mem_ops is not None
    mem_total = serial_mem_ops if serial else int(round(compute * mem_factor))
    assert mem_total is not None
    if serial:
        stores = max(1, mem_total // 3)
        loads = max(0, mem_total - stores)
    else:
        stores = max(1, mem_total // 4) if mem_total else 0
        loads = max(0, mem_total - stores)
    return SyntheticBlockProfile(
        bb_id=bb_id,
        exec_freq=exec_freq,
        alu_ops=alu,
        mul_ops=mul,
        load_ops=loads,
        store_ops=stores,
        width=width,
        live_in_words=live[0],
        live_out_words=live[1],
        serial_memory=serial,
        name=name or f"bb{bb_id}",
    )


def _row_profile(row: PaperKernelRow, prefix: str, **kwargs) -> SyntheticBlockProfile:
    return make_profile(
        row.bb_id,
        row.exec_freq,
        row.ops_weight,
        name=f"{prefix}_bb{row.bb_id}",
        **kwargs,
    )


# ----------------------------------------------------------------------
# OFDM transmitter front-end: QAM -> 64-point IFFT -> cyclic prefix.
# ----------------------------------------------------------------------
#: Calibrated DFG shapes for the Table 1 OFDM rows.
OFDM_ROW_SHAPES: dict[int, dict] = {
    # BB22: IFFT butterfly stage body — multiply-rich, parallel butterflies.
    22: dict(mul_fraction=0.55, width=3.5, mem_factor=0.3, live=(2, 1)),
    # BB12: QAM symbol mapping — ALU-dominated, moderate parallelism.
    12: dict(mul_fraction=0.30, width=2.0, mem_factor=0.2, live=(1, 1)),
    # BB3 and the remaining kernels: small scrambler/interleaver/prefix
    # steps, wide and shallow.
    3: dict(mul_fraction=0.30, width=3.0, mem_factor=0.3, live=(1, 1)),
    5: dict(mul_fraction=0.35, width=3.0, mem_factor=0.3, live=(1, 1)),
    42: dict(mul_fraction=0.40, width=3.0, mem_factor=0.3, live=(1, 1)),
    32: dict(mul_fraction=0.30, width=3.0, mem_factor=0.3, live=(1, 1)),
    29: dict(mul_fraction=0.30, width=3.0, mem_factor=0.3, live=(1, 1)),
    21: dict(mul_fraction=0.45, width=3.0, mem_factor=0.3, live=(1, 1)),
}

#: Filler blocks below the Table 1 cut-off: (bb_id, exec_freq, ops_weight).
OFDM_FILLERS: list[tuple[int, int, int]] = [
    (1, 72, 4),
    (2, 72, 6),
    (4, 144, 5),
    (6, 96, 8),
    (7, 180, 3),
    (9, 252, 4),
    (15, 110, 9),
    (18, 336, 2),
    (27, 168, 6),
    (35, 72, 12),
]


def ofdm_profiles() -> list[SyntheticBlockProfile]:
    """All 18 OFDM basic-block profiles (Table 1 rows + fillers)."""
    profiles = [
        _row_profile(row, "ofdm", **OFDM_ROW_SHAPES[row.bb_id])
        for row in OFDM_TABLE1
    ]
    profiles.extend(
        make_profile(
            bb_id,
            freq,
            weight,
            mul_fraction=0.3,
            width=2.0,
            mem_factor=0.3,
            name=f"ofdm_bb{bb_id}",
        )
        for bb_id, freq, weight in OFDM_FILLERS
    )
    assert len(profiles) == OFDM_TOTAL_BLOCKS
    return profiles


# ----------------------------------------------------------------------
# JPEG encoder: 8x8 DCT -> quantizer -> zig-zag -> Huffman.
# ----------------------------------------------------------------------
#: Calibrated DFG shapes for the Table 1 JPEG rows.
JPEG_ROW_SHAPES: dict[int, dict] = {
    # BB6: innermost Huffman bit-emission — a serial read-modify-write
    # chain through the bit-buffer, barely any arithmetic.
    6: dict(mul_fraction=0.0, width=1.0, serial_mem_ops=12, live=(1, 1)),
    # BB2/BB1: row/column DCT passes — multiply-rich and memory-hungry
    # (pixels in, coefficients out, twiddle table reads).
    2: dict(mul_fraction=0.7, width=2.0, mem_factor=2.5, live=(3, 2)),
    1: dict(mul_fraction=0.7, width=2.0, mem_factor=2.5, live=(3, 2)),
    # BB22: zig-zag scan step — serial in-place buffer walk.
    22: dict(mul_fraction=0.0, width=1.0, serial_mem_ops=6, live=(1, 1)),
    # BB8: quantizer body.
    8: dict(mul_fraction=0.40, width=1.5, mem_factor=0.8, live=(2, 1)),
    3: dict(mul_fraction=0.0, width=1.0, serial_mem_ops=4, live=(1, 1)),
    16: dict(mul_fraction=0.0, width=1.0, serial_mem_ops=4, live=(1, 1)),
    17: dict(mul_fraction=0.0, width=1.0, serial_mem_ops=4, live=(1, 1)),
}

JPEG_FILLERS: list[tuple[int, int, int]] = [
    (4, 12288, 9),
    (5, 12288, 7),
    (7, 30927, 4),
    (9, 20480, 6),
    (10, 6144, 12),
    (11, 6144, 10),
    (12, 1536, 20),
    (13, 1536, 16),
    (14, 12288, 5),
    (15, 12288, 4),
    (18, 18432, 3),
    (19, 18432, 2),
    (20, 1536, 8),
    (21, 96, 30),
]


def jpeg_profiles() -> list[SyntheticBlockProfile]:
    """All 22 JPEG basic-block profiles (Table 1 rows + fillers)."""
    profiles = [
        _row_profile(row, "jpeg", **JPEG_ROW_SHAPES[row.bb_id])
        for row in JPEG_TABLE1
    ]
    profiles.extend(
        make_profile(
            bb_id,
            freq,
            weight,
            mul_fraction=0.2,
            width=1.5,
            mem_factor=0.6,
            name=f"jpeg_bb{bb_id}",
        )
        for bb_id, freq, weight in JPEG_FILLERS
    )
    assert len(profiles) == JPEG_TOTAL_BLOCKS
    return profiles


# ----------------------------------------------------------------------
# Workload assembly
# ----------------------------------------------------------------------
def workload_from_profiles(
    name: str, profiles: list[SyntheticBlockProfile]
) -> ApplicationWorkload:
    """Materialize profiles into an engine-ready workload."""
    blocks = [
        BlockWorkload(
            bb_id=profile.bb_id,
            exec_freq=profile.exec_freq,
            dfg=generate_dfg(profile),
            is_kernel_candidate=True,
            comm_words_in=profile.live_in_words,
            comm_words_out=profile.live_out_words,
            name=profile.name,
        )
        for profile in profiles
    ]
    return ApplicationWorkload(name=name, blocks=blocks)


def ofdm_workload() -> ApplicationWorkload:
    """The OFDM transmitter front-end workload (6 payload symbols)."""
    return workload_from_profiles("ofdm-transmitter", ofdm_profiles())


def jpeg_workload() -> ApplicationWorkload:
    """The JPEG encoder workload (256×256 greyscale image)."""
    return workload_from_profiles("jpeg-encoder", jpeg_profiles())


# ----------------------------------------------------------------------
# Paper results (Tables 2 and 3) for comparison in benches/EXPERIMENTS.md
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PaperPartitionRow:
    """One configuration column of the paper's Table 2/3."""

    afpga: int
    cgc_count: int
    initial_cycles: int
    cycles_in_cgc: int
    moved_bbs: tuple[int, ...]
    final_cycles: int
    reduction_percent: float


PAPER_TABLE2_OFDM: list[PaperPartitionRow] = [
    PaperPartitionRow(1500, 2, 263408, 53184, (22, 12, 3), 57088, 78.3),
    PaperPartitionRow(1500, 3, 263408, 41472, (22, 12), 47856, 81.8),
    PaperPartitionRow(5000, 2, 124080, 53184, (22, 12, 3), 56864, 54.1),
    PaperPartitionRow(5000, 3, 124080, 41472, (22, 12), 46512, 62.5),
]

#: JPEG values converted from the published table units to cycles
#: (see the module docstring units note).  Note: the paper prints 5699 for
#: (A=1500, three CGCs) and 5669 for (A=5000, three CGCs) although the same
#: kernels run on the same data-path — one of the two is a typo in the
#: original table; we record both verbatim.
PAPER_TABLE3_JPEG: list[PaperPartitionRow] = [
    PaperPartitionRow(1500, 2, 18_434_000, 5_817_000, (6, 2, 1), 10_558_000, 42.7),
    PaperPartitionRow(1500, 3, 18_434_000, 5_699_000, (6, 2, 1), 10_411_000, 43.5),
    PaperPartitionRow(5000, 2, 12_399_000, 5_817_000, (6, 2, 1), 10_423_000, 15.9),
    PaperPartitionRow(5000, 3, 12_399_000, 5_669_000, (6, 2, 1), 10_227_000, 17.5),
]
