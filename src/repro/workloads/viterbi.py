"""Viterbi-style trellis decoder workload.

A hard-decision Viterbi decoder for a rate-1/2 convolutional code with
``states`` trellis states over ``stages`` received symbols — the
canonical communications kernel alongside the paper's OFDM transmitter.

The statistics mirror the textbook datapath exactly: the branch-metric
unit costs two XOR/popcount-style ALU ops per distinct branch label, the
add-compare-select (ACS) butterfly costs two adds, one compare and one
select per state per stage (the dominant, embarrassingly parallel
kernel), path-metric renormalization is one subtract per state, and the
survivor traceback is a serial read-modify-write walk over the decision
memory — the same serialized structure as the JPEG Huffman bit-buffer
block, and just as CGC-hostile.  DFG shapes come from the calibrated
synthetic generator so the mapping algorithms run on real layered DFGs.

Fully deterministic for a given parameter set.
"""

from __future__ import annotations

from ..partition.workload import ApplicationWorkload
from .profiles import workload_from_profiles
from .synthetic import SyntheticBlockProfile

#: Default trellis: 16 states (constraint length 5) over 48 stages.
DEFAULT_STATES = 16
DEFAULT_STAGES = 48


def viterbi_workload_name(
    states: int = DEFAULT_STATES, stages: int = DEFAULT_STAGES
) -> str:
    """Canonical name; non-default parameters are encoded so two
    parameterizations never share a report key."""
    name = "viterbi-decoder"
    if states != DEFAULT_STATES or stages != DEFAULT_STAGES:
        name += f"-s{states}-g{stages}"
    return name


def viterbi_profiles(
    states: int = DEFAULT_STATES, stages: int = DEFAULT_STAGES
) -> list[SyntheticBlockProfile]:
    """Per-block profiles of the whole decoder."""
    if states < 2 or states & (states - 1):
        raise ValueError("states must be a power of two >= 2")
    if stages < 1:
        raise ValueError("stages must be >= 1")
    profiles: list[SyntheticBlockProfile] = []

    # BB1: symbol intake / soft-bit slicing per received symbol.
    profiles.append(
        SyntheticBlockProfile(
            bb_id=1,
            exec_freq=stages,
            alu_ops=6,
            mul_ops=2,
            load_ops=2,
            store_ops=1,
            width=2.0,
            live_in_words=2,
            live_out_words=2,
            name="vit_slice",
        )
    )

    # BB2: branch-metric unit — a rate-1/2 code has 4 distinct branch
    # labels; each metric is an XOR plus a popcount-style add (2 ALU ops
    # per label), computed fresh every stage.
    profiles.append(
        SyntheticBlockProfile(
            bb_id=2,
            exec_freq=stages,
            alu_ops=8,
            mul_ops=0,
            load_ops=2,
            store_ops=2,
            width=4.0,
            live_in_words=2,
            live_out_words=4,
            name="vit_branch_metric",
        )
    )

    # BB3: the ACS butterfly — per state: two path-metric adds, one
    # compare, one select, plus a decision-bit pack per butterfly pair.
    # Wide, regular, multiply-free: the showcase CGC kernel.
    profiles.append(
        SyntheticBlockProfile(
            bb_id=3,
            exec_freq=stages,
            alu_ops=4 * states + states // 2,
            mul_ops=0,
            load_ops=states // 2,
            store_ops=states // 4,
            width=6.0,
            live_in_words=4 + states // 4,
            live_out_words=2 + states // 8,
            name="vit_acs",
        )
    )

    # BB4: path-metric renormalization — subtract the running minimum
    # from every state metric (one sub per state, plus the min tree).
    profiles.append(
        SyntheticBlockProfile(
            bb_id=4,
            exec_freq=max(1, stages // 4),
            alu_ops=2 * states - 1,
            mul_ops=0,
            load_ops=states // 4,
            store_ops=states // 8,
            width=5.0,
            live_in_words=2 + states // 8,
            live_out_words=1 + states // 8,
            name="vit_normalize",
        )
    )

    # BB5: survivor traceback — a serial walk back through the decision
    # memory, one read-modify-write per recovered bit.  Runs once per
    # frame; the serialized memory chain keeps it on the FPGA.
    profiles.append(
        SyntheticBlockProfile(
            bb_id=5,
            exec_freq=1,
            alu_ops=3 * stages,
            mul_ops=0,
            load_ops=2 * stages,
            store_ops=stages,
            width=1.0,
            live_in_words=2,
            live_out_words=1,
            serial_memory=True,
            name="vit_traceback",
        )
    )

    # Control/glue blocks (trellis init, frame bookkeeping, CRC tail).
    for index, (freq, alu, mul) in enumerate(
        [(1, states, 0), (stages, 3, 0), (1, 9, 2)]
    ):
        profiles.append(
            SyntheticBlockProfile(
                bb_id=10 + index,
                exec_freq=freq,
                alu_ops=alu,
                mul_ops=mul,
                load_ops=1,
                store_ops=1,
                width=1.5,
                live_in_words=1,
                live_out_words=1,
                name=f"vit_ctrl{index}",
            )
        )
    return profiles


def viterbi_workload(
    states: int = DEFAULT_STATES, stages: int = DEFAULT_STAGES
) -> ApplicationWorkload:
    """The Viterbi trellis decoder as an engine-ready workload."""
    return workload_from_profiles(
        viterbi_workload_name(states, stages),
        viterbi_profiles(states, stages),
    )
