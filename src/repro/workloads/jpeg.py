"""Mini-C implementation of the JPEG encoder front-end.

The paper's second benchmark: "the main parts of the JPEG encoder are the
DCT transformation unit, the quantizer, the zig-zag scanning unit and the
entropy (Huffman) encoder" (§4).  All four stages are implemented in the
project's C subset: an integer separable 8x8 DCT (Q10), divide-free
reciprocal-multiply quantization (the paper notes the DFGs contain no
divisions), table-driven zig-zag scanning, and the run-length/size-category
entropy model whose emitted bit count the hot loop computes.

Constant tables are generated from the NumPy references in
:mod:`repro.workloads.dsp` so tests can demand bit-exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.dynamic_analysis import DynamicProfile, profile_cdfg
from ..interp.cache import ProfileCache
from ..interp.interpreter import Interpreter
from ..ir.cdfg import CDFG, cdfg_from_source
from .dsp.dct import DCT_FRAC_BITS, dct_matrix_fixed
from .dsp.quantize import RECIP_SHIFT, reciprocal_table
from .dsp.zigzag import zigzag_indices

IMAGE_SIZE = 32  # 32x32 test frame = 16 of the 8x8 blocks
BLOCKS_PER_SIDE = IMAGE_SIZE // 8
LEVEL_SHIFT = 128


def _table(values) -> str:
    return ", ".join(str(int(v)) for v in values)


def jpeg_source() -> str:
    """The mini-C source of the encoder."""
    dct_matrix = dct_matrix_fixed().ravel()
    recip = reciprocal_table().ravel()
    zigzag = zigzag_indices()
    return f"""
// JPEG encoder front-end: level shift -> 8x8 integer DCT (Q10) ->
// reciprocal-multiply quantizer -> zig-zag scan -> run-length/size entropy.

const int DCTM[64] = {{{_table(dct_matrix)}}};
const int RECIP[64] = {{{_table(recip)}}};
const int ZZ[64] = {{{_table(zigzag)}}};

// Separable 2-D DCT: row pass then column pass, truncating Q10 shifts.
void dct8x8(int block[64], int coeffs[64]) {{
    int tmp[64];
    for (int r = 0; r < 8; r++) {{
        for (int k = 0; k < 8; k++) {{
            int acc = 0;
            for (int i = 0; i < 8; i++) {{
                acc += DCTM[8 * k + i] * block[8 * r + i];
            }}
            tmp[8 * r + k] = acc >> {DCT_FRAC_BITS};
        }}
    }}
    for (int k = 0; k < 8; k++) {{
        for (int c = 0; c < 8; c++) {{
            int acc = 0;
            for (int r = 0; r < 8; r++) {{
                acc += DCTM[8 * k + r] * tmp[8 * r + c];
            }}
            coeffs[8 * k + c] = acc >> {DCT_FRAC_BITS};
        }}
    }}
}}

// Divide-free quantization: q = (|c| * recip) >> {RECIP_SHIFT}, sign restored.
void quantize(int coeffs[64], int out[64]) {{
    for (int i = 0; i < 64; i++) {{
        int value = coeffs[i];
        int negative = 0;
        if (value < 0) {{
            negative = 1;
            value = 0 - value;
        }}
        int q = (value * RECIP[i]) >> {RECIP_SHIFT};
        if (negative) {{
            q = 0 - q;
        }}
        out[i] = q;
    }}
}}

void zigzag(int quantized[64], int scanned[64]) {{
    for (int i = 0; i < 64; i++) {{
        scanned[i] = quantized[ZZ[i]];
    }}
}}

// JPEG 'SSSS' size category: bits needed for |v|.
int size_category(int value) {{
    int magnitude = value;
    if (magnitude < 0) {{
        magnitude = 0 - magnitude;
    }}
    int size = 0;
    while (magnitude > 0) {{
        size = size + 1;
        magnitude = magnitude >> 1;
    }}
    return size;
}}

// Static code-length book (baseline-shaped): 4 bits for run/EOB classes,
// otherwise 2 + run + size capped at 16.
int code_length(int run, int size) {{
    if (size == 0) {{
        return 4;
    }}
    int length = 2 + run + size;
    if (length > 16) {{
        length = 16;
    }}
    return length;
}}

// Run-length entropy model over one zig-zag block; returns emitted bits.
int entropy_bits(int scanned[64]) {{
    int bits = 0;
    int dc_size = size_category(scanned[0]);
    bits = bits + code_length(0, dc_size) + dc_size;
    int run = 0;
    for (int i = 1; i < 64; i++) {{
        int value = scanned[i];
        if (value == 0) {{
            run = run + 1;
            if (run == 16) {{
                bits = bits + code_length(15, 0);
                run = 0;
            }}
        }} else {{
            int size = size_category(value);
            bits = bits + code_length(run, size) + size;
            run = 0;
        }}
    }}
    if (run > 0) {{
        bits = bits + code_length(0, 0);
    }}
    return bits;
}}

// One 8x8 block through all four stages; returns its bit cost.
int encode_block(int block[64]) {{
    int coeffs[64];
    int quantized[64];
    int scanned[64];
    dct8x8(block, coeffs);
    quantize(coeffs, quantized);
    zigzag(quantized, scanned);
    return entropy_bits(scanned);
}}

// Whole {IMAGE_SIZE}x{IMAGE_SIZE} frame: level-shift, block, encode.
int encode_image(int image[{IMAGE_SIZE * IMAGE_SIZE}]) {{
    int block[64];
    int total_bits = 0;
    for (int by = 0; by < {BLOCKS_PER_SIDE}; by++) {{
        for (int bx = 0; bx < {BLOCKS_PER_SIDE}; bx++) {{
            for (int y = 0; y < 8; y++) {{
                for (int x = 0; x < 8; x++) {{
                    int pixel = image[(8 * by + y) * {IMAGE_SIZE} + 8 * bx + x];
                    block[8 * y + x] = pixel - {LEVEL_SHIFT};
                }}
            }}
            total_bits = total_bits + encode_block(block);
        }}
    }}
    return total_bits;
}}
"""


@dataclass
class JPEGEncodeResult:
    total_bits: int
    steps: int


class JPEGEncoderApp:
    """Runnable wrapper: compile once, encode frames, profile.

    Execution uses the block-compiled interpreter fast path; profiling
    runs are memoized through ``profile_cache`` (a fresh in-memory
    :class:`ProfileCache` by default — pass one with a directory to share
    profiles across processes and runs).
    """

    def __init__(self, profile_cache: ProfileCache | None = None) -> None:
        self.source = jpeg_source()
        self.cdfg: CDFG = cdfg_from_source(self.source, "jpeg_enc.c")
        self.profile_cache = (
            profile_cache if profile_cache is not None else ProfileCache()
        )

    def encode_image(self, image: np.ndarray) -> JPEGEncodeResult:
        """Encode one IMAGE_SIZE×IMAGE_SIZE greyscale frame."""
        pixels = self._flatten(image)
        interpreter = Interpreter(self.cdfg)
        result = interpreter.run("encode_image", pixels)
        assert result.return_value is not None
        return JPEGEncodeResult(
            total_bits=int(result.return_value), steps=result.steps
        )

    def encode_block(self, block: np.ndarray) -> int:
        """Encode one level-shifted 8x8 block; returns its bit cost."""
        block = np.asarray(block, dtype=np.int64)
        if block.shape != (8, 8):
            raise ValueError("expected an 8x8 block")
        interpreter = Interpreter(self.cdfg)
        result = interpreter.run(
            "encode_block", [int(v) for v in block.ravel()]
        )
        assert result.return_value is not None
        return int(result.return_value)

    def profile_image(self, image: np.ndarray) -> DynamicProfile:
        """Dynamic analysis over one frame (cached, counter-only)."""
        pixels = self._flatten(image)
        return profile_cdfg(
            self.cdfg, "encode_image", pixels, cache=self.profile_cache
        )

    @staticmethod
    def _flatten(image: np.ndarray) -> list[int]:
        image = np.asarray(image, dtype=np.int64)
        if image.shape != (IMAGE_SIZE, IMAGE_SIZE):
            raise ValueError(
                f"expected a {IMAGE_SIZE}x{IMAGE_SIZE} greyscale image"
            )
        if image.min() < 0 or image.max() > 255:
            raise ValueError("pixel values must be 8-bit")
        return [int(p) for p in image.ravel()]


def test_image(seed: int = 1994) -> np.ndarray:
    """A deterministic smooth-plus-noise greyscale test frame."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:IMAGE_SIZE, 0:IMAGE_SIZE]
    smooth = 128 + 60 * np.sin(x / 5.0) * np.cos(y / 7.0)
    noisy = smooth + rng.normal(0, 8, size=smooth.shape)
    return np.clip(np.round(noisy), 0, 255).astype(np.int64)
