"""Reference run-length + size-category entropy model for the JPEG path.

The mini-C encoder implements the JPEG entropy front half: zig-zag
coefficients become (zero-run, size-category, amplitude) triples, and each
triple is charged a code length from a static table (a simplified baseline
Huffman book).  We model the symbol stream and the emitted bit count — the
quantities the encoder's hot loop actually computes — rather than a full
standards-compliant bitstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def size_category(value: int) -> int:
    """JPEG 'SSSS' size category: bits needed for |value| (0 for 0)."""
    magnitude = abs(int(value))
    return int(magnitude).bit_length()


#: Simplified static code-length book: code length for (run, size) grows
#: with both, mirroring the shape of the Annex K luminance AC table.
def code_length(run: int, size: int) -> int:
    if size == 0:
        return 4  # ZRL / EOB class codes
    return min(16, 2 + run + size)


@dataclass(frozen=True)
class RunLengthSymbol:
    run: int
    size: int
    amplitude: int


def encode_block(zigzag_coeffs: np.ndarray) -> tuple[list[RunLengthSymbol], int]:
    """Run-length encode one block's zig-zag AC sequence.

    Returns the symbol list (DC handled as the first symbol with run 0)
    and the total emitted bit count (code length + amplitude bits).
    """
    coeffs = np.asarray(zigzag_coeffs, dtype=np.int64)
    if coeffs.size != 64:
        raise ValueError("expected 64 zig-zag coefficients")
    symbols: list[RunLengthSymbol] = []
    bits = 0

    dc = int(coeffs[0])
    dc_size = size_category(dc)
    symbols.append(RunLengthSymbol(0, dc_size, dc))
    bits += code_length(0, dc_size) + dc_size

    run = 0
    for value in coeffs[1:]:
        value = int(value)
        if value == 0:
            run += 1
            if run == 16:
                symbols.append(RunLengthSymbol(15, 0, 0))  # ZRL
                bits += code_length(15, 0)
                run = 0
            continue
        size = size_category(value)
        symbols.append(RunLengthSymbol(run, size, value))
        bits += code_length(run, size) + size
        run = 0
    if run > 0:
        symbols.append(RunLengthSymbol(0, 0, 0))  # EOB
        bits += code_length(0, 0)
    return symbols, bits


def encode_image_bits(zigzag_blocks: list[np.ndarray]) -> int:
    """Total bit count over a sequence of blocks."""
    return sum(encode_block(block)[1] for block in zigzag_blocks)
