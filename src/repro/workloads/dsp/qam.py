"""Reference 16-QAM mapper (IEEE 802.11a style), used to validate the
mini-C OFDM transmitter against an independent implementation."""

from __future__ import annotations

import numpy as np

#: Gray-coded 16-QAM level map for two bits (802.11a Table 88 ordering).
_LEVELS = {0b00: -3, 0b01: -1, 0b11: 1, 0b10: 3}

#: Fixed-point scale used by the mini-C implementation (Q8).
QAM_SCALE = 256


def qam16_map_bits(bits: np.ndarray) -> np.ndarray:
    """Map a bit array (multiple of 4) to complex 16-QAM symbols.

    Normalization 1/sqrt(10) is folded into the fixed-point scale the
    mini-C code uses, so here we return raw ±1/±3 lattice points.
    """
    bits = np.asarray(bits, dtype=np.int64).ravel()
    if bits.size % 4 != 0:
        raise ValueError("16-QAM needs a multiple of 4 bits")
    if np.any((bits != 0) & (bits != 1)):
        raise ValueError("bits must be 0/1")
    pairs = bits.reshape(-1, 2)
    symbols_i = np.array(
        [_LEVELS[(a << 1) | b] for a, b in pairs[0::2]], dtype=np.int64
    )
    symbols_q = np.array(
        [_LEVELS[(a << 1) | b] for a, b in pairs[1::2]], dtype=np.int64
    )
    return symbols_i + 1j * symbols_q


def qam16_map_bits_fixed(bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-point (Q8) I/Q integer outputs matching the mini-C code."""
    symbols = qam16_map_bits(bits)
    return (
        (symbols.real * QAM_SCALE).astype(np.int64),
        (symbols.imag * QAM_SCALE).astype(np.int64),
    )
