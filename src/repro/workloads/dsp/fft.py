"""Reference fixed-point radix-2 IFFT, matching the mini-C implementation.

The mini-C OFDM transmitter computes a 64-point IFFT in Q12 fixed point
with per-stage scaling by 1/2 (so the result is the textbook IFFT including
its 1/N factor).  This module computes the same thing with NumPy integers
so tests can require exact equality with the interpreter, plus a floating
reference against ``numpy.fft.ifft`` with tolerance.
"""

from __future__ import annotations

import numpy as np

#: Fixed-point fraction bits for twiddles.
TWIDDLE_FRAC_BITS = 12
TWIDDLE_SCALE = 1 << TWIDDLE_FRAC_BITS


def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation for a power-of-two n."""
    if n & (n - 1):
        raise ValueError("n must be a power of two")
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def twiddle_tables(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Q12 cos/sin tables for the *inverse* FFT (positive exponent)."""
    angles = 2.0 * np.pi * np.arange(n // 2) / n
    cos_table = np.round(np.cos(angles) * TWIDDLE_SCALE).astype(np.int64)
    sin_table = np.round(np.sin(angles) * TWIDDLE_SCALE).astype(np.int64)
    return cos_table, sin_table


def ifft_fixed(real: np.ndarray, imag: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-point radix-2 DIT IFFT with per-stage 1/2 scaling.

    Bit-exact model of the mini-C ``ifft64`` routine (C truncating shifts).
    """
    real = np.asarray(real, dtype=np.int64).copy()
    imag = np.asarray(imag, dtype=np.int64).copy()
    n = real.size
    if n & (n - 1):
        raise ValueError("size must be a power of two")
    order = bit_reverse_indices(n)
    real, imag = real[order], imag[order]
    cos_table, sin_table = twiddle_tables(n)

    size = 2
    while size <= n:
        half = size // 2
        step = n // size
        for start in range(0, n, size):
            for k in range(half):
                w_cos = int(cos_table[k * step])
                w_sin = int(sin_table[k * step])
                top = start + k
                bottom = start + k + half
                tr = (int(real[bottom]) * w_cos - int(imag[bottom]) * w_sin)
                ti = (int(real[bottom]) * w_sin + int(imag[bottom]) * w_cos)
                tr >>= TWIDDLE_FRAC_BITS
                ti >>= TWIDDLE_FRAC_BITS
                # Per-stage scaling by 1/2 keeps magnitudes bounded and
                # accumulates to the IFFT's 1/N factor.
                real_top, imag_top = int(real[top]), int(imag[top])
                real[top] = (real_top + tr) >> 1
                imag[top] = (imag_top + ti) >> 1
                real[bottom] = (real_top - tr) >> 1
                imag[bottom] = (imag_top - ti) >> 1
        size *= 2
    return real, imag


def ifft_reference(real: np.ndarray, imag: np.ndarray) -> np.ndarray:
    """Floating-point IFFT (includes 1/N) for tolerance comparison."""
    spectrum = np.asarray(real, dtype=np.float64) + 1j * np.asarray(
        imag, dtype=np.float64
    )
    return np.fft.ifft(spectrum)
