"""NumPy reference implementations of the applications' DSP stages.

Used by the test suite to validate the interpreter-executed mini-C
applications against independent implementations.
"""

from .dct import DCT_FRAC_BITS, dct2d_fixed, dct2d_reference, dct_matrix_fixed
from .fft import (
    TWIDDLE_FRAC_BITS,
    bit_reverse_indices,
    ifft_fixed,
    ifft_reference,
    twiddle_tables,
)
from .huffman import (
    RunLengthSymbol,
    code_length,
    encode_block,
    encode_image_bits,
    size_category,
)
from .qam import QAM_SCALE, qam16_map_bits, qam16_map_bits_fixed
from .quantize import (
    LUMA_QUANT_TABLE,
    RECIP_SHIFT,
    quantize_fixed,
    quantize_reference,
    reciprocal_table,
)
from .zigzag import inverse_zigzag, zigzag_indices, zigzag_scan

__all__ = [
    "DCT_FRAC_BITS",
    "LUMA_QUANT_TABLE",
    "QAM_SCALE",
    "RECIP_SHIFT",
    "RunLengthSymbol",
    "TWIDDLE_FRAC_BITS",
    "bit_reverse_indices",
    "code_length",
    "dct2d_fixed",
    "dct2d_reference",
    "dct_matrix_fixed",
    "encode_block",
    "encode_image_bits",
    "ifft_fixed",
    "ifft_reference",
    "inverse_zigzag",
    "qam16_map_bits",
    "qam16_map_bits_fixed",
    "quantize_fixed",
    "quantize_reference",
    "reciprocal_table",
    "size_category",
    "twiddle_tables",
    "zigzag_indices",
    "zigzag_scan",
]
