"""Zig-zag scan order for 8x8 JPEG blocks (reference implementation)."""

from __future__ import annotations

import numpy as np


def zigzag_indices() -> np.ndarray:
    """The 64 (row-major) positions in JPEG zig-zag order."""
    order = []
    for diagonal in range(15):
        cells = [
            (r, diagonal - r)
            for r in range(8)
            if 0 <= diagonal - r < 8
        ]
        if diagonal % 2 == 0:
            cells.reverse()  # even diagonals run bottom-left to top-right
        order.extend(r * 8 + c for r, c in cells)
    return np.array(order, dtype=np.int64)


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block into its 64-element zig-zag sequence."""
    block = np.asarray(block)
    if block.shape != (8, 8):
        raise ValueError("zig-zag operates on 8x8 blocks")
    return block.ravel()[zigzag_indices()]


def inverse_zigzag(sequence: np.ndarray) -> np.ndarray:
    """Rebuild the 8x8 block from a zig-zag sequence."""
    sequence = np.asarray(sequence)
    if sequence.size != 64:
        raise ValueError("zig-zag sequence has 64 entries")
    block = np.zeros(64, dtype=sequence.dtype)
    block[zigzag_indices()] = sequence
    return block.reshape(8, 8)
