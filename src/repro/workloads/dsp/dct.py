"""Reference integer 8x8 DCT-II matching the mini-C JPEG encoder.

The mini-C encoder uses a separable matrix DCT in Q10 fixed point
(row pass then column pass, truncating shifts), the standard
divide-free integer formulation.  ``dct2d_fixed`` is the bit-exact model;
``dct2d_reference`` is the orthonormal floating DCT for tolerance checks.
"""

from __future__ import annotations

import numpy as np

DCT_FRAC_BITS = 10
DCT_SCALE = 1 << DCT_FRAC_BITS


def dct_matrix_fixed() -> np.ndarray:
    """Q10 integer 8x8 DCT-II (orthonormal) coefficient matrix."""
    n = 8
    matrix = np.zeros((n, n), dtype=np.float64)
    for k in range(n):
        for i in range(n):
            alpha = np.sqrt(1.0 / n) if k == 0 else np.sqrt(2.0 / n)
            matrix[k, i] = alpha * np.cos((2 * i + 1) * k * np.pi / (2 * n))
    return np.round(matrix * DCT_SCALE).astype(np.int64)


def _shift_round_toward_zero(value: np.ndarray, bits: int) -> np.ndarray:
    """C-style ``>>`` on possibly negative ints is implementation lore; the
    mini-C code uses arithmetic shifts, which floor — model exactly that."""
    return value >> bits


def dct2d_fixed(block: np.ndarray) -> np.ndarray:
    """Bit-exact model of the mini-C separable integer DCT.

    Row pass: ``tmp = (C · blockᵀ-ish) >> 10``; column pass likewise.
    """
    block = np.asarray(block, dtype=np.int64)
    if block.shape != (8, 8):
        raise ValueError("DCT operates on 8x8 blocks")
    c = dct_matrix_fixed()
    # Row pass: for each row r of the image block, coefficients over i.
    tmp = np.zeros((8, 8), dtype=np.int64)
    for r in range(8):
        for k in range(8):
            acc = np.int64(0)
            for i in range(8):
                acc += c[k, i] * block[r, i]
            tmp[r, k] = _shift_round_toward_zero(acc, DCT_FRAC_BITS)
    out = np.zeros((8, 8), dtype=np.int64)
    for k in range(8):
        for col in range(8):
            acc = np.int64(0)
            for r in range(8):
                acc += c[k, r] * tmp[r, col]
            out[k, col] = _shift_round_toward_zero(acc, DCT_FRAC_BITS)
    return out


def dct2d_reference(block: np.ndarray) -> np.ndarray:
    """Floating orthonormal 2-D DCT-II (for tolerance comparisons)."""
    from scipy.fftpack import dct

    block = np.asarray(block, dtype=np.float64)
    return dct(dct(block.T, norm="ortho").T, norm="ortho")
