"""Reference JPEG quantizer (divide-free, reciprocal-multiply form).

The paper notes the application DFGs contain no divisions (§4); real
embedded JPEG encoders quantize with precomputed fixed-point reciprocals:
``q = (coeff * recip[i]) >> SHIFT`` with symmetric handling of negatives.
This module is the NumPy model the mini-C code is tested against.
"""

from __future__ import annotations

import numpy as np

#: The ISO/IEC 10918-1 Annex K luminance quantization table.
LUMA_QUANT_TABLE = np.array(
    [
        16, 11, 10, 16, 24, 40, 51, 61,
        12, 12, 14, 19, 26, 58, 60, 55,
        14, 13, 16, 24, 40, 57, 69, 56,
        14, 17, 22, 29, 51, 87, 80, 62,
        18, 22, 37, 56, 68, 109, 103, 77,
        24, 35, 55, 64, 81, 104, 113, 92,
        49, 64, 78, 87, 103, 121, 120, 101,
        72, 92, 95, 98, 112, 100, 103, 99,
    ],
    dtype=np.int64,
).reshape(8, 8)

RECIP_SHIFT = 16


def reciprocal_table(quant: np.ndarray | None = None) -> np.ndarray:
    """Fixed-point reciprocals ``round(2^16 / q)`` of a quant table."""
    table = LUMA_QUANT_TABLE if quant is None else np.asarray(quant)
    return np.round((1 << RECIP_SHIFT) / table).astype(np.int64)


def quantize_fixed(
    coeffs: np.ndarray, quant: np.ndarray | None = None
) -> np.ndarray:
    """Divide-free quantization, bit-exact vs the mini-C implementation.

    Negative coefficients are negated, quantized, and re-negated so the
    truncating shift rounds toward zero like integer division would.
    """
    coeffs = np.asarray(coeffs, dtype=np.int64)
    recip = reciprocal_table(quant).reshape(coeffs.shape)
    magnitude = np.abs(coeffs)
    quantized = (magnitude * recip) >> RECIP_SHIFT
    return np.where(coeffs < 0, -quantized, quantized)


def quantize_reference(
    coeffs: np.ndarray, quant: np.ndarray | None = None
) -> np.ndarray:
    """True rounding-division quantization for tolerance comparison."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    table = (LUMA_QUANT_TABLE if quant is None else np.asarray(quant)).reshape(
        coeffs.shape
    )
    return np.trunc(coeffs / table).astype(np.int64)
