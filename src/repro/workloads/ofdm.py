"""Mini-C implementation of the IEEE 802.11a OFDM transmitter front-end.

The paper's first benchmark: "the front-end consists of the Quadrature
Amplitude Modulation (QAM) unit, the IFFT block and the cyclic prefix
unit" (§4).  This is a complete, runnable implementation in the project's
C subset — 16-QAM mapping, a 64-point Q12 fixed-point radix-2 IFFT and the
16-sample cyclic prefix — exercising the whole pipeline: frontend, CDFG,
interpreter profiling, analysis and partitioning.

The constant tables (bit-reversal permutation, Q12 twiddles) are generated
from the NumPy reference (:mod:`repro.workloads.dsp.fft`) so the test suite
can require bit-exact agreement between the interpreted mini-C program and
the reference model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.dynamic_analysis import DynamicProfile, profile_cdfg_many
from ..interp.cache import ProfileCache
from ..interp.interpreter import Interpreter
from ..interp.values import ArrayStorage
from ..ir.cdfg import CDFG, cdfg_from_source
from .dsp.fft import bit_reverse_indices, twiddle_tables
from .dsp.qam import QAM_SCALE

FFT_SIZE = 64
CP_LEN = 16
BITS_PER_SYMBOL = FFT_SIZE * 4  # 16-QAM: 4 bits per subcarrier


def _table(values) -> str:
    return ", ".join(str(int(v)) for v in values)


def ofdm_source() -> str:
    """The mini-C source of the transmitter front-end."""
    bitrev = bit_reverse_indices(FFT_SIZE)
    cos_table, sin_table = twiddle_tables(FFT_SIZE)
    return f"""
// IEEE 802.11a OFDM transmitter front-end: 16-QAM -> IFFT64 -> cyclic prefix.
// Fixed point: QAM outputs Q8, twiddles Q12, per-stage IFFT scaling by 1/2.

const int QAM_LEVELS[4] = {{-3, -1, 3, 1}};
const int BITREV[{FFT_SIZE}] = {{{_table(bitrev)}}};
const int WCOS[{FFT_SIZE // 2}] = {{{_table(cos_table)}}};
const int WSIN[{FFT_SIZE // 2}] = {{{_table(sin_table)}}};

// Map 4 bits (Gray-coded I/Q pairs) to one 16-QAM symbol, Q8 scale.
void qam16_map(int bits[{BITS_PER_SYMBOL}], int sym_re[{FFT_SIZE}], int sym_im[{FFT_SIZE}]) {{
    for (int s = 0; s < {FFT_SIZE}; s++) {{
        int b0 = bits[4 * s];
        int b1 = bits[4 * s + 1];
        int b2 = bits[4 * s + 2];
        int b3 = bits[4 * s + 3];
        int level_i = QAM_LEVELS[(b0 << 1) | b1];
        int level_q = QAM_LEVELS[(b2 << 1) | b3];
        sym_re[s] = level_i * {QAM_SCALE};
        sym_im[s] = level_q * {QAM_SCALE};
    }}
}}

// In-place 64-point radix-2 DIT IFFT, Q12 twiddles, 1/2 scaling per stage.
void ifft64(int re[{FFT_SIZE}], int im[{FFT_SIZE}]) {{
    int tr[{FFT_SIZE}];
    int ti[{FFT_SIZE}];
    for (int i = 0; i < {FFT_SIZE}; i++) {{
        tr[i] = re[BITREV[i]];
        ti[i] = im[BITREV[i]];
    }}
    for (int i = 0; i < {FFT_SIZE}; i++) {{
        re[i] = tr[i];
        im[i] = ti[i];
    }}
    int size = 2;
    int step = {FFT_SIZE // 2};
    while (size <= {FFT_SIZE}) {{
        int half = size >> 1;
        for (int start = 0; start < {FFT_SIZE}; start += size) {{
            for (int k = 0; k < half; k++) {{
                int wc = WCOS[k * step];
                int ws = WSIN[k * step];
                int bot = start + k + half;
                int top = start + k;
                int br = re[bot];
                int bi = im[bot];
                int prod_r = (br * wc - bi * ws) >> 12;
                int prod_i = (br * ws + bi * wc) >> 12;
                int ar = re[top];
                int ai = im[top];
                re[top] = (ar + prod_r) >> 1;
                im[top] = (ai + prod_i) >> 1;
                re[bot] = (ar - prod_r) >> 1;
                im[bot] = (ai - prod_i) >> 1;
            }}
        }}
        size = size << 1;
        step = step >> 1;
    }}
}}

// Prepend the last CP_LEN time-domain samples (802.11a guard interval).
void cyclic_prefix(int re[{FFT_SIZE}], int im[{FFT_SIZE}],
                   int out_re[{FFT_SIZE + CP_LEN}], int out_im[{FFT_SIZE + CP_LEN}]) {{
    for (int i = 0; i < {CP_LEN}; i++) {{
        out_re[i] = re[{FFT_SIZE - CP_LEN} + i];
        out_im[i] = im[{FFT_SIZE - CP_LEN} + i];
    }}
    for (int i = 0; i < {FFT_SIZE}; i++) {{
        out_re[{CP_LEN} + i] = re[i];
        out_im[{CP_LEN} + i] = im[i];
    }}
}}

// One payload symbol through the whole front-end.
void ofdm_symbol(int bits[{BITS_PER_SYMBOL}],
                 int out_re[{FFT_SIZE + CP_LEN}], int out_im[{FFT_SIZE + CP_LEN}]) {{
    int re[{FFT_SIZE}];
    int im[{FFT_SIZE}];
    qam16_map(bits, re, im);
    ifft64(re, im);
    cyclic_prefix(re, im, out_re, out_im);
}}
"""


@dataclass
class OFDMSymbolResult:
    """Output of one transmitted symbol plus execution metadata."""

    out_re: np.ndarray
    out_im: np.ndarray
    steps: int


class OFDMTransmitterApp:
    """Runnable wrapper: compile once, transmit symbols, profile.

    Execution uses the block-compiled interpreter fast path; profiling
    runs are memoized through ``profile_cache`` (content-keyed per
    symbol, so re-profiling a superset of symbols only executes the new
    ones).
    """

    def __init__(self, profile_cache: ProfileCache | None = None) -> None:
        self.source = ofdm_source()
        self.cdfg: CDFG = cdfg_from_source(self.source, "ofdm_tx.c")
        self.profile_cache = (
            profile_cache if profile_cache is not None else ProfileCache()
        )

    def transmit_symbol(self, bits: np.ndarray) -> OFDMSymbolResult:
        """Run one 256-bit payload symbol through the interpreted design."""
        bits = np.asarray(bits, dtype=np.int64).ravel()
        if bits.size != BITS_PER_SYMBOL:
            raise ValueError(f"need {BITS_PER_SYMBOL} bits per symbol")
        interpreter = Interpreter(self.cdfg)
        out_re = ArrayStorage.allocate("out_re", _int_array(FFT_SIZE + CP_LEN))
        out_im = ArrayStorage.allocate("out_im", _int_array(FFT_SIZE + CP_LEN))
        result = interpreter.run(
            "ofdm_symbol", [int(b) for b in bits], out_re, out_im
        )
        return OFDMSymbolResult(
            out_re=np.array(out_re.data, dtype=np.int64),
            out_im=np.array(out_im.data, dtype=np.int64),
            steps=result.steps,
        )

    def profile_symbols(self, symbol_bits: list[np.ndarray]) -> DynamicProfile:
        """Dynamic analysis over several payload symbols (paper: 6)."""
        out_len = FFT_SIZE + CP_LEN
        input_sets = []
        for bits in symbol_bits:
            bits = np.asarray(bits, dtype=np.int64).ravel()
            input_sets.append(
                ([int(b) for b in bits], [0] * out_len, [0] * out_len)
            )
        return profile_cdfg_many(
            self.cdfg, "ofdm_symbol", input_sets, cache=self.profile_cache
        )


def _int_array(size: int):
    from ..frontend.ast_nodes import ArrayType, Type

    return ArrayType(Type.INT, (size,))


def random_bits(count: int, seed: int = 2004) -> np.ndarray:
    """Deterministic pseudo-random payload bits."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=count, dtype=np.int64)
