"""FIR/IIR filter-bank pipeline workload.

A kernel-rich multi-channel filter bank in the style of the paper's DSP
applications: a windowing stage feeds ``channels`` parallel FIR band
filters, each band is smoothed by an IIR biquad cascade (a serial
recurrence — the classic structure the CGC handles poorly), the bands are
decimated and recombined polyphase-style, and a final energy
normalization closes the frame.

The per-block statistics are *derived*, not guessed: the FIR blocks carry
exactly the multiply/accumulate counts of a ``taps``-tap direct-form
filter, the biquad blocks the 5-multiply/4-add per-section cost of a
Direct Form II section, and the decimator the adder-tree cost of a
``channels``-way polyphase recombination — the same operation mixes as
the NumPy references in :mod:`repro.workloads.dsp` (a ``taps``-tap dot
product per output sample, etc.).  DFG *shapes* reuse the calibrated
synthetic generator, so every block is a real layered DFG the mapping
algorithms schedule unmodified.

Fully deterministic for a given parameter set.
"""

from __future__ import annotations

from ..partition.workload import ApplicationWorkload
from .profiles import workload_from_profiles
from .synthetic import SyntheticBlockProfile

#: Default shape of the pipeline (8 bands of a 16-tap analysis bank,
#: 3 biquad sections of smoothing, 64 frames per invocation).
DEFAULT_CHANNELS = 8
DEFAULT_TAPS = 16
DEFAULT_SECTIONS = 3
DEFAULT_FRAMES = 64


def filterbank_workload_name(
    channels: int = DEFAULT_CHANNELS,
    taps: int = DEFAULT_TAPS,
    sections: int = DEFAULT_SECTIONS,
    frames: int = DEFAULT_FRAMES,
) -> str:
    """Canonical name; parameters deviating from the defaults are
    encoded so two parameterizations never share a report key."""
    name = "filterbank-pipeline"
    for tag, value, default in (
        ("c", channels, DEFAULT_CHANNELS),
        ("t", taps, DEFAULT_TAPS),
        ("x", sections, DEFAULT_SECTIONS),
        ("f", frames, DEFAULT_FRAMES),
    ):
        if value != default:
            name += f"-{tag}{value}"
    return name


def filterbank_profiles(
    channels: int = DEFAULT_CHANNELS,
    taps: int = DEFAULT_TAPS,
    sections: int = DEFAULT_SECTIONS,
    frames: int = DEFAULT_FRAMES,
) -> list[SyntheticBlockProfile]:
    """Per-block profiles of the whole pipeline."""
    if channels < 1 or taps < 2 or sections < 1 or frames < 1:
        raise ValueError(
            "filterbank needs channels/sections/frames >= 1 and taps >= 2"
        )
    profiles: list[SyntheticBlockProfile] = []

    # BB1: input windowing/DMA — one multiply (window coefficient) and a
    # couple of address adds per fetched sample burst.
    profiles.append(
        SyntheticBlockProfile(
            bb_id=1,
            exec_freq=frames,
            alu_ops=8,
            mul_ops=4,
            load_ops=6,
            store_ops=2,
            width=3.0,
            live_in_words=2,
            live_out_words=2,
            name="fb_window",
        )
    )

    # BB10..: one FIR band filter per channel.  A taps-tap direct-form
    # filter costs exactly `taps` multiplies and `taps - 1` accumulator
    # adds per output sample, plus delay-line index updates; wide MAC
    # trees parallelize well (the kernels the CGC exists for).
    for channel in range(channels):
        profiles.append(
            SyntheticBlockProfile(
                bb_id=10 + channel,
                exec_freq=frames,
                alu_ops=taps - 1 + 4,
                mul_ops=taps,
                load_ops=max(2, taps // 2),
                store_ops=2,
                width=4.0,
                live_in_words=2 + taps // 8,
                live_out_words=2,
                name=f"fb_fir_ch{channel}",
            )
        )

    # BB40..: IIR biquad smoothing per channel pair.  Direct Form II:
    # 5 multiplies + 4 adds per section, but the recurrence serializes
    # the whole chain (width 1.0) — these blocks regress on the slow
    # CGC clock and exercise the engine's revert path.
    biquad_blocks = max(1, channels // 2)
    for index in range(biquad_blocks):
        profiles.append(
            SyntheticBlockProfile(
                bb_id=40 + index,
                exec_freq=frames * 2,
                alu_ops=4 * sections,
                mul_ops=5 * sections,
                load_ops=2 * sections,
                store_ops=sections,
                width=1.0,
                live_in_words=2 * sections,
                live_out_words=2,
                name=f"fb_biquad{index}",
            )
        )

    # BB60: polyphase decimator/recombiner — a channels-way adder tree
    # per retained sample (channels - 1 adds) plus phase rotation muls.
    profiles.append(
        SyntheticBlockProfile(
            bb_id=60,
            exec_freq=frames,
            alu_ops=4 * (channels - 1) + 4,
            mul_ops=channels,
            load_ops=channels,
            store_ops=max(1, channels // 4),
            width=3.5,
            live_in_words=channels,
            live_out_words=2,
            name="fb_decimate",
        )
    )

    # BB61: output energy normalization — square/accumulate then scale.
    profiles.append(
        SyntheticBlockProfile(
            bb_id=61,
            exec_freq=frames,
            alu_ops=6,
            mul_ops=6,
            load_ops=4,
            store_ops=2,
            width=2.0,
            live_in_words=2,
            live_out_words=1,
            name="fb_normalize",
        )
    )

    # Control/glue blocks below the kernel cut-off (loop headers,
    # parameter reloads) — light, like the paper apps' filler blocks.
    for index, (freq, alu) in enumerate(
        [(frames, 3), (frames, 2), (channels, 5), (1, 7)]
    ):
        profiles.append(
            SyntheticBlockProfile(
                bb_id=80 + index,
                exec_freq=freq,
                alu_ops=alu,
                mul_ops=0,
                load_ops=1,
                store_ops=1,
                width=1.5,
                live_in_words=1,
                live_out_words=1,
                name=f"fb_ctrl{index}",
            )
        )
    return profiles


def filterbank_workload(
    channels: int = DEFAULT_CHANNELS,
    taps: int = DEFAULT_TAPS,
    sections: int = DEFAULT_SECTIONS,
    frames: int = DEFAULT_FRAMES,
) -> ApplicationWorkload:
    """The FIR/IIR filter-bank pipeline as an engine-ready workload."""
    return workload_from_profiles(
        filterbank_workload_name(channels, taps, sections, frames),
        filterbank_profiles(channels, taps, sections, frames),
    )
