"""Calibrated synthetic basic blocks.

The paper's applications were written by the AMDREL industrial partners and
are not public; what *is* public (Table 1) are the per-block execution
frequencies and operation weights the partitioning decisions depend on.
This module turns such per-block statistics into real IR basic blocks —
layered DFGs with an exact ALU/MUL/memory mix and a controlled parallelism
profile — so the genuine mapping algorithms (Figure 3 temporal partitioning
and the CGC list scheduler) run on them unmodified.

Generation is fully deterministic: the same profile always produces the
same block, keyed by the block id.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass

from ..frontend.ast_nodes import Type
from ..ir.basicblock import BasicBlock
from ..ir.dfg import DataFlowGraph
from ..ir.operations import (
    ArrayBase,
    Const,
    Instruction,
    Opcode,
    Temp,
)

#: ALU opcodes the generator draws from (all weight-1, delay-1 operations).
_ALU_MIX = (Opcode.ADD, Opcode.SUB, Opcode.ADD, Opcode.SHR, Opcode.AND)

#: Input/output arrays are rotated so independent stores do not serialize
#: through write-after-write memory edges.
_INPUT_ARRAYS = ("in0", "in1", "in2", "in3")
_OUTPUT_ARRAYS = ("out0", "out1", "out2", "out3")


@dataclass(frozen=True)
class SyntheticBlockProfile:
    """Statistical description of one basic block.

    ``alu_ops``/``mul_ops`` fix the block's analysis weight
    (``weight = alu_ops + 2·mul_ops`` under the paper's model).
    ``load_ops``/``store_ops`` add shared-memory traffic.
    ``width`` is the average data parallelism: how many compute ops share
    one ASAP level (1.0 = a fully serial recurrence, like an accumulator
    chain; 4.0 = wide butterfly-style parallelism).
    ``live_in_words``/``live_out_words`` size the t_comm transfer if the
    block moves to the coarse-grain data-path.
    """

    bb_id: int
    exec_freq: int
    alu_ops: int
    mul_ops: int
    load_ops: int = 0
    store_ops: int = 0
    width: float = 2.0
    live_in_words: int = 2
    live_out_words: int = 1
    #: Read-modify-write blocks (Huffman bit-buffer emission, zig-zag
    #: scans) access one buffer whose loads and stores alternate, so memory
    #: ordering serializes the whole block.  When set, the generator builds
    #: ``store_ops`` sequential phases (load → compute → store on a single
    #: array) instead of the parallel load/compute/store layering.
    serial_memory: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.alu_ops < 0 or self.mul_ops < 0:
            raise ValueError("operation counts cannot be negative")
        if self.alu_ops + self.mul_ops == 0:
            raise ValueError("a block needs at least one compute op")
        if self.load_ops < 0 or self.store_ops < 0:
            raise ValueError("memory op counts cannot be negative")
        if self.width < 1.0:
            raise ValueError("width must be >= 1.0")

    @property
    def weight(self) -> int:
        """Analysis weight under the paper's model (ALU=1, MUL=2)."""
        return self.alu_ops + 2 * self.mul_ops

    @property
    def total_weight(self) -> int:
        return self.exec_freq * self.weight

    @property
    def compute_ops(self) -> int:
        return self.alu_ops + self.mul_ops


def generate_block(profile: SyntheticBlockProfile) -> BasicBlock:
    """Materialize one profile as an IR basic block.

    Default structure: a layer of LOADs feeds ``depth`` compute levels of
    roughly ``width`` operations each (every op consumes one value from the
    level directly above it, pinning its ASAP level), and the final level's
    values are STOREd.  ALU and MUL ops are interleaved deterministically
    through the levels, giving the chains a multiply-add flavour.

    With ``serial_memory=True`` the block is built as sequential
    read-modify-write phases over a single buffer array instead (see
    :class:`SyntheticBlockProfile`).
    """
    if profile.serial_memory:
        return _generate_serial_memory_block(profile)
    rng = random.Random(0xA3D7 ^ (profile.bb_id * 2654435761))
    block = BasicBlock(label=f"synth{profile.bb_id}", bb_id=profile.bb_id)
    next_temp = 0

    def fresh() -> Temp:
        nonlocal next_temp
        temp = Temp(next_temp, Type.INT)
        next_temp += 1
        return temp

    # ------------------------------------------------------------------
    # Level 1: loads (sources).  At least one constant source always
    # exists so blocks with zero loads still have operands.
    # ------------------------------------------------------------------
    sources: list[Temp] = []
    for index in range(profile.load_ops):
        dest = fresh()
        array = ArrayBase(_INPUT_ARRAYS[index % len(_INPUT_ARRAYS)], Type.INT)
        block.append(
            Instruction(
                Opcode.LOAD,
                dest=dest,
                operands=(array, Const(index)),
                result_type=Type.INT,
            )
        )
        sources.append(dest)
    if not sources:
        dest = fresh()
        block.append(
            Instruction(
                Opcode.COPY,
                dest=dest,
                operands=(Const(1),),
                result_type=Type.INT,
            )
        )
        sources.append(dest)

    # ------------------------------------------------------------------
    # Compute levels.
    # ------------------------------------------------------------------
    total_compute = profile.compute_ops
    ops_bag = [Opcode.MUL] * profile.mul_ops + [
        _ALU_MIX[i % len(_ALU_MIX)] for i in range(profile.alu_ops)
    ]
    rng.shuffle(ops_bag)

    depth = max(1, round(total_compute / profile.width))
    # Distribute ops over levels as evenly as possible.
    base, extra = divmod(total_compute, depth)
    level_sizes = [base + (1 if i < extra else 0) for i in range(depth)]
    level_sizes = [size for size in level_sizes if size > 0]

    previous_level: list[Temp] = list(sources)
    all_values: list[Temp] = list(sources)
    op_index = 0
    for size in level_sizes:
        current_level: list[Temp] = []
        for position in range(size):
            opcode = ops_bag[op_index]
            op_index += 1
            # First operand from the previous level pins the ASAP level.
            first = previous_level[position % len(previous_level)]
            # Second operand from anywhere earlier adds graph diversity.
            second = all_values[rng.randrange(len(all_values))]
            shift_safe = opcode in (Opcode.SHL, Opcode.SHR)
            operands = (
                (first, Const(1 + (position % 7)))
                if shift_safe
                else (first, second)
            )
            dest = fresh()
            block.append(
                Instruction(
                    opcode,
                    dest=dest,
                    operands=operands,
                    result_type=Type.INT,
                )
            )
            current_level.append(dest)
        all_values.extend(current_level)
        previous_level = current_level

    # ------------------------------------------------------------------
    # Stores consume the final level (round-robin) and close the block.
    # ------------------------------------------------------------------
    for index in range(profile.store_ops):
        value = previous_level[index % len(previous_level)]
        array = ArrayBase(
            _OUTPUT_ARRAYS[index % len(_OUTPUT_ARRAYS)], Type.INT
        )
        block.append(
            Instruction(
                Opcode.STORE,
                operands=(array, Const(index), value),
            )
        )
    block.append(Instruction(Opcode.RET))
    return block


def _generate_serial_memory_block(profile: SyntheticBlockProfile) -> BasicBlock:
    """Phase-structured read-modify-write block over one buffer array.

    ``store_ops`` phases, each: load(s) from ``buf`` → a short compute
    chain → one store back to ``buf``.  Because every phase reads and
    writes the same array, memory-ordering edges serialize the phases —
    the DFG shape of bit-buffer emission or in-place scan kernels.
    """
    if profile.store_ops < 1:
        raise ValueError("serial_memory blocks need at least one store")
    block = BasicBlock(label=f"synth{profile.bb_id}", bb_id=profile.bb_id)
    next_temp = 0

    def fresh() -> Temp:
        nonlocal next_temp
        temp = Temp(next_temp, Type.INT)
        next_temp += 1
        return temp

    # The RMW buffer is a kernel-local scratch (bit buffer, scan window):
    # it lives in FPGA BRAM / the CGC register bank, not shared memory.
    buf = ArrayBase("buf", Type.INT, local=True)
    phases = profile.store_ops
    total_compute = profile.compute_ops
    ops_bag = [Opcode.MUL] * profile.mul_ops + [
        _ALU_MIX[i % len(_ALU_MIX)] for i in range(profile.alu_ops)
    ]
    # Distribute loads and compute ops across phases as evenly as possible.
    base_l, extra_l = divmod(profile.load_ops, phases)
    base_c, extra_c = divmod(total_compute, phases)
    op_index = 0
    previous_value: Temp | None = None
    for phase in range(phases):
        loads_here = base_l + (1 if phase < extra_l else 0)
        compute_here = base_c + (1 if phase < extra_c else 0)
        loaded: list[Temp] = []
        for i in range(loads_here):
            dest = fresh()
            block.append(
                Instruction(
                    Opcode.LOAD,
                    dest=dest,
                    operands=(buf, Const(phase * 8 + i)),
                    result_type=Type.INT,
                )
            )
            loaded.append(dest)
        value: Temp | None = loaded[0] if loaded else previous_value
        if value is None:
            value = fresh()
            block.append(
                Instruction(
                    Opcode.COPY,
                    dest=value,
                    operands=(Const(phase + 1),),
                    result_type=Type.INT,
                )
            )
        # Serial compute chain within the phase.
        for i in range(compute_here):
            opcode = ops_bag[op_index]
            op_index += 1
            other = loaded[i % len(loaded)] if loaded else Const(phase + 3)
            operands = (
                (value, Const(1 + (i % 7)))
                if opcode in (Opcode.SHL, Opcode.SHR)
                else (value, other)
            )
            dest = fresh()
            block.append(
                Instruction(
                    opcode, dest=dest, operands=operands, result_type=Type.INT
                )
            )
            value = dest
        block.append(
            Instruction(Opcode.STORE, operands=(buf, Const(phase * 8), value))
        )
        previous_value = value
    block.append(Instruction(Opcode.RET))
    return block


def generate_dfg(profile: SyntheticBlockProfile) -> DataFlowGraph:
    """Generate the block and wrap it in a DFG."""
    return DataFlowGraph(generate_block(profile))


def synthetic_workload_name(
    block_count: int,
    seed: int = 0,
    **shape_params: object,
) -> str:
    """The canonical default name for a synthetic parameter set.

    Only parameters deviating from :func:`synthetic_application`'s
    defaults appear in the name, so two different parameterizations can
    never share a default name (``_SYNTHETIC_DEFAULTS`` below is derived
    from the signature and cannot drift from it).
    """
    name = f"synthetic-{block_count}b-s{seed}"
    for key, default in _SYNTHETIC_DEFAULTS.items():
        value = shape_params.get(key, default)
        if value != default:
            name += f"-{key[0]}{key.split('_')[1][0]}{value:g}"
    return name


def synthetic_application(
    block_count: int,
    *,
    seed: int = 0,
    kernel_fraction: float = 0.4,
    weight_skew: float = 2.0,
    max_weight: int = 100,
    max_exec_freq: int = 1500,
    comm_intensity: float = 0.3,
    name: str | None = None,
):
    """A whole synthetic application for scale and exploration studies.

    The paper's applications top out at 22 basic blocks; this generator
    produces arbitrarily large workloads with the same statistical shape
    so the engine and the :mod:`repro.explore` grid sweeps have inputs of
    any size.  Fully deterministic for a given parameter set.

    ``weight_skew`` shapes the weight/frequency distributions: draws are
    ``max · u^skew`` with ``u`` uniform, so ``skew > 1`` yields the
    Table 1 profile of a few heavy kernels over many light blocks.
    ``kernel_fraction`` is the share of blocks inside loops (kernel
    candidates); ``comm_intensity`` scales the live-in/live-out words a
    move must transfer, so high values make some kernels regress on the
    CGC (communication dominates) and exercise the engine's revert path.
    """
    from ..partition.workload import ApplicationWorkload, BlockWorkload

    if block_count < 1:
        raise ValueError("block_count must be >= 1")
    if not 0.0 <= kernel_fraction <= 1.0:
        raise ValueError("kernel_fraction must be in [0, 1]")
    if weight_skew <= 0.0 or comm_intensity < 0.0:
        raise ValueError("weight_skew must be > 0 and comm_intensity >= 0")
    if max_weight < 1 or max_exec_freq < 1:
        raise ValueError("max_weight and max_exec_freq must be >= 1")

    rng = random.Random(0x5EED ^ (seed * 0x9E3779B1) ^ (block_count << 20))
    # kernel_fraction=0.0 is honoured literally (a no-kernel workload for
    # edge-case studies); any positive fraction yields at least one.
    kernel_count = (
        max(1, round(block_count * kernel_fraction))
        if kernel_fraction > 0.0
        else 0
    )
    kernel_ids = set(rng.sample(range(1, block_count + 1), kernel_count))

    blocks = []
    for bb_id in range(1, block_count + 1):
        weight = max(1, round(max_weight * rng.random() ** weight_skew))
        exec_freq = max(1, round(max_exec_freq * rng.random() ** weight_skew))
        mul = min(weight // 2, round(weight * rng.uniform(0.0, 0.6) / 2.0))
        alu = weight - 2 * mul
        compute = alu + mul
        mem_total = round(compute * rng.uniform(0.1, 0.6))
        stores = max(1, mem_total // 4) if mem_total else 0
        loads = max(0, mem_total - stores)
        scale = comm_intensity * rng.uniform(0.5, 1.5)
        profile = SyntheticBlockProfile(
            bb_id=bb_id,
            exec_freq=exec_freq,
            alu_ops=alu,
            mul_ops=mul,
            load_ops=loads,
            store_ops=stores,
            width=1.0 + rng.random() * 3.0,
            live_in_words=max(1, round(scale * (2 + weight / 8.0))),
            live_out_words=max(1, round(scale * (1 + weight / 12.0))),
            name=f"synth_bb{bb_id}",
        )
        blocks.append(
            BlockWorkload(
                bb_id=bb_id,
                exec_freq=exec_freq,
                dfg=generate_dfg(profile),
                is_kernel_candidate=bb_id in kernel_ids,
                comm_words_in=profile.live_in_words,
                comm_words_out=profile.live_out_words,
                name=profile.name,
            )
        )
    return ApplicationWorkload(
        name=name
        or synthetic_workload_name(
            block_count,
            seed,
            kernel_fraction=kernel_fraction,
            weight_skew=weight_skew,
            max_weight=max_weight,
            max_exec_freq=max_exec_freq,
            comm_intensity=comm_intensity,
        ),
        blocks=blocks,
    )


#: Shape-parameter defaults consulted by :func:`synthetic_workload_name`,
#: extracted from :func:`synthetic_application`'s own signature so the
#: naming scheme cannot drift when a default changes.
_SYNTHETIC_DEFAULTS = {
    parameter.name: parameter.default
    for parameter in inspect.signature(synthetic_application).parameters.values()
    if parameter.name
    in ("kernel_fraction", "weight_skew", "max_weight", "max_exec_freq",
        "comm_intensity")
}


def verify_profile_realization(profile: SyntheticBlockProfile) -> None:
    """Check the generated block matches its profile exactly.

    Raises ``AssertionError`` on any mismatch (used by tests and by the
    workload definitions as a self-check).
    """
    from ..analysis.weights import WeightModel
    from ..ir.operations import OpClass

    dfg = generate_dfg(profile)
    histogram = dfg.op_class_histogram()
    mul = histogram.get(OpClass.MUL, 0)
    alu = histogram.get(OpClass.ALU, 0)
    mem = histogram.get(OpClass.MEM, 0)
    if mul != profile.mul_ops:
        raise AssertionError(
            f"BB {profile.bb_id}: generated {mul} MULs, wanted "
            f"{profile.mul_ops}"
        )
    if alu != profile.alu_ops:
        raise AssertionError(
            f"BB {profile.bb_id}: generated {alu} ALU ops, wanted "
            f"{profile.alu_ops}"
        )
    if mem != profile.load_ops + profile.store_ops:
        raise AssertionError(
            f"BB {profile.bb_id}: generated {mem} memory ops, wanted "
            f"{profile.load_ops + profile.store_ops}"
        )
    weight = WeightModel().dfg_weight(dfg)
    if weight != profile.weight:
        raise AssertionError(
            f"BB {profile.bb_id}: weight {weight} != profile "
            f"{profile.weight}"
        )


# ----------------------------------------------------------------------
# Randomized runnable programs (differential-test fodder)
# ----------------------------------------------------------------------
def synthetic_program_source(
    seed: int = 0,
    mixers: int = 3,
    rounds: int = 4,
) -> str:
    """A deterministic pseudo-random mini-C program.

    Unlike :func:`synthetic_application` (which synthesizes engine-ready
    DFG statistics), this emits *runnable source* exercising the whole
    language surface — nested loops, branches, ``break``/``continue``,
    global const tables, a mutated global scalar, chained calls, a float
    path with casts, and C division/modulo on mixed-sign values — so the
    two interpreter engines (walker and block-compiled) can be compared
    differentially on arbitrary programs, not just the paper workloads.

    The same ``seed`` always produces the same program; all loops are
    statically bounded and every division has a non-zero constant
    denominator, so generated programs always terminate and never fault.
    """
    rng = random.Random(0xC0FFEE ^ seed)
    lut = [rng.randint(-128, 127) for _ in range(16)]

    def terminal(names: list[str]) -> str:
        if rng.random() < 0.4:
            return str(rng.randint(-9, 9))
        return rng.choice(names)

    def expr(names: list[str], depth: int) -> str:
        if depth <= 0 or rng.random() < 0.25:
            return terminal(names)
        kind = rng.choice(
            ["+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%",
             "min", "max", "abs", "cmp", "sel"]
        )
        a = expr(names, depth - 1)
        b = expr(names, depth - 1)
        if kind == "*":
            return f"(({a}) * (({b}) & 31))"
        if kind == "<<":
            return f"(({a}) << {rng.randint(0, 4)})"
        if kind == ">>":
            return f"(({a}) >> {rng.randint(0, 4)})"
        if kind == "/":
            return f"(({a}) / {rng.choice([3, 5, 7, 11])})"
        if kind == "%":
            return f"(({a}) % {rng.choice([13, 64, 255, 9973])})"
        if kind == "min":
            return f"min(({a}), ({b}))"
        if kind == "max":
            return f"max(({a}), ({b}))"
        if kind == "abs":
            return f"abs({a})"
        if kind == "cmp":
            op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
            return f"(({a}) {op} ({b}))"
        if kind == "sel":
            return f"((({a}) > 0) ? ({a}) : ({b}))"
        return f"(({a}) {kind} ({b}))"

    parts = [
        "// Randomized differential-test program "
        f"(seed={seed}, mixers={mixers}, rounds={rounds}).",
        f"const int LUT[16] = {{{', '.join(str(v) for v in lut)}}};",
        f"int g_acc = {rng.randint(0, 99)};",
        "",
        "float fscale(float x) {",
        f"    return sqrt(abs(x) + {rng.randint(1, 5)}.5) * 0.75;",
        "}",
    ]
    for index in range(max(1, mixers)):
        body = expr(["a", "b"], 3)
        then_branch = expr(["r", "a"], 2)
        else_branch = expr(["r", "b"], 2)
        cond = expr(["a", "b"], 1)
        parts.extend(
            [
                "",
                f"int mix{index}(int a, int b) {{",
                f"    int r = {body};",
                f"    if (({cond}) > 0) {{ r = {then_branch}; }}",
                f"    else {{ r = {else_branch}; }}",
                f"    while (r > {rng.randint(4000, 60000)}) "
                "{ r = r >> 3; }",
                "    return r & 65535;",
                "}",
            ]
        )
    calls = [
        f"mix{rng.randrange(max(1, mixers))}(v, u + i)"
        for _ in range(2)
    ]
    parts.extend(
        [
            "",
            "int kernel(int data[32], int n) {",
            "    int s = 0;",
            "    for (int i = 0; i < n; i++) {",
            "        int v = data[i & 31];",
            f"        int u = LUT[(v ^ i) & 15];",
            f"        s = s + {calls[0]};",
            f"        if (s % {rng.choice([5, 7, 11])} == 0) "
            f"{{ s = s + {calls[1]}; }}",
            f"        if (i % {rng.choice([4, 5, 6])} == 3) {{ continue; }}",
            f"        data[(i * {rng.choice([3, 5, 7])}) & 31] = "
            "(s + v) & 255;",
            "        s = s & 1048575;",
            "    }",
            "    g_acc = g_acc + (s & 255);",
            "    return s;",
            "}",
            "",
            "int entry(int data[32]) {",
            "    int total = 0;",
            f"    int r = {rng.randint(1, 3)};",
            "    do {",
            f"        total = total + kernel(data, {rng.randint(8, 14)} "
            "+ r * 5);",
            "        total = total + (int) fscale((float) (total & 63));",
            "        r = r + 1;",
            f"        if (total > {rng.randint(10, 40) * 100000}) "
            "{ break; }",
            f"    }} while (r < {rounds + 2});",
            "    return total + g_acc;",
            "}",
        ]
    )
    return "\n".join(parts) + "\n"


# ----------------------------------------------------------------------
# Measured mini-C workloads ("minic"): the full frontend→profiling flow
# over generated programs
# ----------------------------------------------------------------------
def minic_workload_name(seed: int = 0) -> str:
    """The workload name a minic spec builds (the report query key)."""
    return f"minic-s{seed}"


def minic_input(seed: int = 0, size: int = 32) -> list[int]:
    """The deterministic representative input for one minic program."""
    return [((seed * 37 + index * 13) % 256) - 128 for index in range(size)]


def minic_cdfg(seed: int = 0, optimize: bool = True):
    """Lower (and by default optimize) one generated mini-C program.

    Generated programs — unlike the hand-written OFDM/JPEG sources,
    which lower clean — contain real dead code: assignments whose value
    no path reads, conditions that fold to constants, branches whose
    never-taken side becomes unreachable.  With ``optimize=True`` the
    full local+global pass pipeline runs (and, with the sanitizer on,
    re-verifies the IR after each iteration) before the CDFG is used.
    """
    from ..ir.cdfg import cdfg_from_source
    from ..ir.passes import optimize_cdfg

    cdfg = cdfg_from_source(
        synthetic_program_source(seed), f"minic_s{seed}.c"
    )
    if optimize:
        optimize_cdfg(cdfg)
    return cdfg


def minic_application(seed: int = 0, optimize: bool = True):
    """An engine workload measured from a generated mini-C program.

    The program is lowered, optimized (see :func:`minic_cdfg`), executed
    on its deterministic representative input under the block-compiled
    interpreter, and turned into an :class:`ApplicationWorkload` exactly
    like the measured OFDM/JPEG flows — a cheap way to grow the suite
    beyond the paper's two applications with workloads whose frequencies
    are genuinely profiled rather than synthesized.
    """
    from ..analysis.dynamic_analysis import DynamicProfile
    from ..frontend.ast_nodes import ArrayType
    from ..interp.interpreter import Interpreter
    from ..interp.profiler import BlockProfiler
    from ..interp.values import ArrayStorage
    from ..partition.workload import workload_from_cdfg

    cdfg = minic_cdfg(seed, optimize=optimize)
    storage = ArrayStorage.allocate("data", ArrayType(Type.INT, (32,)))
    for index, value in enumerate(minic_input(seed)):
        storage.store(index, value)
    profiler = BlockProfiler()
    Interpreter(cdfg, profiler, mode="compiled").run("entry", storage)
    profile = DynamicProfile(frequencies=profiler.frequencies(), runs=1)
    return workload_from_cdfg(
        cdfg, profile, name=minic_workload_name(seed)
    )
