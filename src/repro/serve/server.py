"""The in-process partitioning server.

A :class:`Server` is the whole service minus the sockets: submit
:class:`~repro.serve.jobs.JobRequest`\\ s (or raw JSON payloads), poll
or await the results, and let a single dispatcher thread batch the
queue.  The HTTP daemon (:mod:`repro.serve.daemon`) is a thin shell
over this class, so tests and the load bench drive the identical code
path without a port.

**Batching.**  The dispatcher drains the queue in gulps (after a short
``batch_window_seconds`` accumulation pause), groups the drained jobs
by their (workload spec × platform spec) pair fingerprint, and resolves
each group against the shared LRU caches — so N concurrent jobs on one
pair cost **one** workload build and **one** priced
:class:`~repro.partition.packed.PackedCostTable`
(``cost_table_builds`` rises once), however the jobs interleaved at
submission.  Each group then fans out over the existing
:func:`repro.parallel.map_tasks` process pool when ``workers > 1``
(tables are picklable, so workers price nothing), or runs in the
dispatcher thread when ``workers == 1``.

**Determinism.**  A job's result depends only on its own request plus
the deterministic table, never on its neighbours in a batch, so cycle
counts are bit-identical to a serial ``python -m repro partition`` run
regardless of arrival order, batch boundaries, or worker count.

**Backpressure.**  The queue is bounded; a submission over capacity is
rejected with :class:`~repro.serve.jobs.QueueFullError` carrying a
``retry_after_seconds`` estimate (queue depth × a recent-job-seconds
EMA ÷ workers).  Nothing is silently dropped.

**Timeouts.**  A job's ``timeout_seconds`` bounds its *queue* time: a
job whose deadline passes before dispatch is cancelled with a
structured ``timeout`` error and never runs.  Dispatch is the
cancellation granularity — a job that already started runs to
completion (partitioning runs are short; the queue is where a loaded
server makes jobs wait).

**Shutdown.**  ``shutdown(drain=True)`` stops intake, lets the
dispatcher finish everything queued, and joins it; ``drain=False``
cancels the queue instead.  Both leave every job in a terminal state.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from .. import telemetry
from ..faults import Deadline, FaultPlan, RetryPolicy, TaskFailure
from ..parallel import map_tasks
from ..partition.engine import EngineConfig
from ..partition.packed import PackedCostTable
from ..partition.result import PartitionResult
from ..partition.workload import ApplicationWorkload
from ..explore.space import PlatformSpec, WorkloadSpec
from ..interp.cache import ProfileCache, default_profile_cache
from ..search import make_partitioner
from ..search.base import AlgorithmSpec
from .cache import PricedTableCache
from .jobs import (
    JobError,
    JobRecord,
    JobRequest,
    QueueFullError,
    UnknownJobError,
)

__all__ = ["Server", "ServerConfig", "ServerStoppedError"]


class ServerStoppedError(JobError):
    """A submission arrived after shutdown began."""

    code = "server-stopped"


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one server instance (all bounded and explicit)."""

    #: Process fan-out per batch group; 1 runs jobs in the dispatcher
    #: thread (no pools, fully deterministic scheduling).
    workers: int = 1
    #: Bounded-queue capacity; submissions beyond it are rejected with
    #: a retry-after estimate rather than buffered without limit.
    queue_capacity: int = 256
    #: How long the dispatcher pauses after waking to let concurrent
    #: submissions pile into one batch.  0 disables the pause.
    batch_window_seconds: float = 0.005
    #: LRU capacity of the workload/table caches (entries per cache).
    cache_capacity: int = 8
    #: Default per-job queue timeout when a request carries none;
    #: ``None`` means queued jobs wait indefinitely.
    default_timeout_seconds: float | None = None
    #: On-disk directory for the shared profile cache (measured
    #: workloads); ``None`` keeps profiling results in memory only.
    profile_cache_dir: str | None = None
    #: Extra executions allowed per crashed/errored job task (0 = fail
    #: on the first counted failure, the historical behaviour).
    task_retries: int = 0
    #: First-retry backoff for job-task retries (doubles per retry).
    retry_backoff_seconds: float = 0.05
    #: Cooperative per-job search budget (seconds); an expired budget
    #: returns the engine's best-so-far flagged uncertified (or the
    #: greedy fallback, with ``degrade_under_deadline``).  ``None``
    #: leaves searches unbounded.
    search_deadline_seconds: float | None = None
    #: Consecutive infrastructure-failure *group* events per (workload ×
    #: platform) pair before its circuit breaker opens and jobs on that
    #: pair fail fast; 0 disables the breaker.
    breaker_threshold: int = 0
    #: How long an open breaker rejects before going half-open.
    breaker_cooldown_seconds: float = 30.0
    #: Opt-in graceful degradation: when the search deadline expires on
    #: a non-greedy algorithm, rerun with greedy (fast, complete) and
    #: mark the job ``degraded`` instead of shipping a partial result.
    degrade_under_deadline: bool = False
    #: Deterministic chaos injection threaded into every group fan-out
    #: (tests / ``benchmarks/bench_chaos.py``); ``None`` in production.
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.batch_window_seconds < 0:
            raise ValueError("batch_window_seconds must be >= 0")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds < 0
        ):
            raise ValueError("default_timeout_seconds must be >= 0")
        if self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if self.retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        if (
            self.search_deadline_seconds is not None
            and self.search_deadline_seconds <= 0
        ):
            raise ValueError("search_deadline_seconds must be positive")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0")
        if self.breaker_cooldown_seconds < 0:
            raise ValueError("breaker_cooldown_seconds must be >= 0")


@dataclass(frozen=True)
class _JobTask:
    """One job's picklable work unit (what a pool worker receives)."""

    workload: WorkloadSpec
    platform: PlatformSpec
    algorithm: "object"  # AlgorithmSpec; typed loosely to stay picklable-simple
    constraint: int
    table: PackedCostTable
    #: Cooperative search budget per attempt; None = unbounded.
    deadline_seconds: float | None = None
    #: Exact -> greedy fallback when the budget expires mid-search.
    degrade: bool = False


#: Per-process workload cache for pool workers (grown lazily, exactly
#: like the suite runner's).
_WORKER_WORKLOADS: dict[WorkloadSpec, ApplicationWorkload] = {}


def _partition_once(
    task: _JobTask,
    workload: ApplicationWorkload,
    platform,
) -> tuple[str, object]:
    """The deadline/degrade-aware partitioning core (shared by the pool
    worker entry point and the dispatcher's serial runner).

    Statuses: ``"ok"`` (result, possibly ``partial``), ``"degraded"``
    (the deadline expired and the greedy fallback answered instead),
    ``"error"`` (the job's own failure, structured, never raising).
    """
    try:
        deadline = (
            None
            if task.deadline_seconds is None
            else Deadline.after(task.deadline_seconds)
        )
        partitioner = make_partitioner(
            task.algorithm,  # type: ignore[arg-type]
            workload,
            platform,
            config=EngineConfig(),
            packed_table=task.table,
        )
        result = partitioner.run(task.constraint, deadline)
        if (
            result.partial
            and task.degrade
            and getattr(task.algorithm, "name", None) != "greedy"
        ):
            # Graceful degradation: greedy is O(n) and always completes;
            # its certified answer beats an uncertified partial one.
            fallback = make_partitioner(
                AlgorithmSpec.greedy(),
                workload,
                platform,
                config=EngineConfig(),
                packed_table=task.table,
            )
            return "degraded", fallback.run(task.constraint)
        return "ok", result
    except Exception as error:  # noqa: BLE001 - a job must not kill the batch
        return "error", f"{type(error).__name__}: {error}"


def _execute_task(task: _JobTask) -> tuple[str, object]:
    """Run one job; never raises (errors come back structured).

    Used by pool workers (hence top-level and picklable).  The injected
    table means a worker prices nothing — ``cost_table_builds`` stays
    with the dispatcher's cache.
    """
    try:
        workload = _WORKER_WORKLOADS.get(task.workload)
        if workload is None:
            workload = task.workload.build()
            _WORKER_WORKLOADS[task.workload] = workload
        platform = task.platform.build()
    except Exception as error:  # noqa: BLE001
        return "error", f"{type(error).__name__}: {error}"
    return _partition_once(task, workload, platform)


class Server:
    """The long-running batching server (in-process API).

    Use as a context manager for the start/drain lifecycle::

        with Server(ServerConfig(workers=1)) as server:
            job_id = server.submit(request)
            record = server.await_result(job_id)

    Thread-safe: any number of threads may submit/poll concurrently;
    one dispatcher thread owns execution and the caches.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        # An explicit directory wins; otherwise honour the shared
        # REPRO_PROFILE_CACHE_DIR hook (memory-only when unset).
        profile_cache = (
            ProfileCache(directory=self.config.profile_cache_dir)
            if self.config.profile_cache_dir is not None
            else default_profile_cache()
        )
        self.caches = PricedTableCache(
            capacity=self.config.cache_capacity,
            profile_cache=profile_cache,
        )
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: deque[JobRecord] = deque()
        self._jobs: dict[int, JobRecord] = {}
        self._next_id = 1
        self._started = False
        self._stopping = False
        self._drain_on_stop = True
        self._thread: threading.Thread | None = None
        #: EMA of per-job run seconds, feeding the retry-after estimate.
        self._job_seconds_ema = 0.05
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "timeouts": 0,
            "cancelled": 0,
            "rejected": 0,
            "batches": 0,
        }
        #: Supervision counters (fed by map_tasks' counters sink plus
        #: the breaker/degrade events); surfaced under /stats
        #: "robustness".  Written only by the dispatcher thread.
        self._robust_counts: dict[str, int] = {
            "task_retries": 0,
            "pool_rebuilds": 0,
            "task_timeouts": 0,
            "tasks_failed": 0,
            "tasks_recovered": 0,
            "breaker_trips": 0,
            "breaker_rejections": 0,
            "degraded_jobs": 0,
        }
        #: Per-(workload × platform) circuit breakers:
        #: pair -> {"failures": consecutive infra-failure group events,
        #:          "open_until": monotonic fail-fast horizon}.
        self._breakers: dict[
            tuple[WorkloadSpec, PlatformSpec], dict[str, float]
        ] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Server":
        """Launch the dispatcher thread (idempotent)."""
        with self._lock:
            if self._stopping:
                raise ServerStoppedError("server already shut down")
            if self._started:
                return self
            self._started = True
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> None:
        """Stop intake; finish (``drain=True``) or cancel the queue.

        Joins the dispatcher, so on return every accepted job is in a
        terminal state.  ``timeout`` is a hard drain deadline: if the
        dispatcher has not finished by then (a stuck job), every job
        still pending is failed with a structured ``server-stopped``
        error and shutdown returns anyway — the dispatcher thread is a
        daemon, so a wedged job cannot block process exit.  Idempotent.
        """
        with self._wakeup:
            self._stopping = True
            self._drain_on_stop = drain and self._started
            self._wakeup.notify_all()
            if not self._started:
                # No dispatcher exists to run the queue: everything
                # still queued resolves as cancelled right here.
                pending = list(self._queue)
                self._queue.clear()
            else:
                pending = []
        for record in pending:
            self._finish_error(
                record, "cancelled", "server shut down before dispatch"
            )
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                # Drain deadline hit with the dispatcher still running:
                # resolve everything pending so no caller blocks on a
                # job that will never be delivered.
                with self._wakeup:
                    self._queue.clear()
                    stuck = [
                        record
                        for record in self._jobs.values()
                        if not record.finished
                    ]
                for record in stuck:
                    self._finish_error(
                        record,
                        "failed",
                        f"drain deadline ({timeout:g}s) expired before "
                        "the job finished",
                        code="server-stopped",
                    )

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(drain=True)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> int:
        """Enqueue a job; returns its id.

        Raises :class:`QueueFullError` (with a retry-after estimate)
        over capacity and :class:`ServerStoppedError` after shutdown
        began.
        """
        now = time.monotonic()
        with self._wakeup:
            if self._stopping:
                raise ServerStoppedError(
                    "server is shutting down; no new jobs accepted"
                )
            if len(self._queue) >= self.config.queue_capacity:
                self._counts["rejected"] += 1
                telemetry.count("serve_jobs_rejected")
                raise QueueFullError(
                    f"queue full ({self.config.queue_capacity} jobs "
                    "pending); retry later",
                    retry_after_seconds=self._retry_after_locked(),
                )
            timeout = request.timeout_seconds
            if timeout is None:
                timeout = self.config.default_timeout_seconds
            record = JobRecord(
                job_id=self._next_id,
                request=request,
                submitted_at=now,
                deadline=None if timeout is None else now + timeout,
            )
            self._next_id += 1
            self._jobs[record.job_id] = record
            self._queue.append(record)
            self._counts["submitted"] += 1
            telemetry.count("serve_jobs_submitted")
            self._wakeup.notify_all()
            return record.job_id

    def submit_payload(self, payload: object) -> int:
        """Decode one JSON job payload and enqueue it."""
        return self.submit(JobRequest.from_payload(payload))

    def record(self, job_id: int) -> JobRecord:
        """The live record of a job (raises :class:`UnknownJobError`)."""
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise UnknownJobError(f"unknown job id {job_id}")
        return record

    def poll(self, job_id: int) -> dict[str, object]:
        """One JSON-ready status/result snapshot of a job."""
        return self.record(job_id).to_payload()

    def await_result(
        self, job_id: int, timeout: float | None = None
    ) -> JobRecord:
        """Block until the job reaches a terminal state.

        Raises :class:`TimeoutError` when the *wait* (not the job's own
        queue timeout) expires first, and :class:`ServerStoppedError`
        when the dispatcher thread has died with the job still pending —
        a dead dispatcher can never finish it, so callers are failed
        fast instead of blocking forever.
        """
        record = self.record(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {record.state} after waiting "
                    f"{timeout}s"
                )
            wait_for = 0.1 if remaining is None else min(0.1, remaining)
            if record.done_event.wait(wait_for):
                return record
            thread = self._thread
            if (
                self._started
                and (thread is None or not thread.is_alive())
                and not record.finished
            ):
                raise ServerStoppedError(
                    f"dispatcher thread died with job {job_id} still "
                    f"{record.state}"
                )

    def cancel(self, job_id: int) -> bool:
        """Cancel a still-queued job; False if it already left the queue."""
        record = self.record(job_id)
        with self._wakeup:
            try:
                self._queue.remove(record)
            except ValueError:
                return False
        self._finish_error(record, "cancelled", "cancelled by client")
        return True

    def stats(self) -> dict[str, object]:
        """A JSON-ready snapshot of counters, caches, and queue state."""
        now = time.monotonic()
        with self._lock:
            queued = len(self._queue)
            counts = dict(self._counts)
            robust: dict[str, object] = dict(self._robust_counts)
            robust["open_breakers"] = sum(
                1
                for state in self._breakers.values()
                if state["failures"] >= self.config.breaker_threshold
                and now < state["open_until"]
            )
        return {
            "state": (
                "stopped" if self._stopping
                else "running" if self._started
                else "idle"
            ),
            "queued": queued,
            "queue_capacity": self.config.queue_capacity,
            "workers": self.config.workers,
            "jobs": counts,
            "robustness": robust,
            "caches": self.caches.stats(),
            "retry_after_seconds": round(self._retry_after_locked(), 3),
        }

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _retry_after_locked(self) -> float:
        """Backpressure hint: how long until the queue likely drains."""
        depth = max(1, len(self._queue))
        return max(
            0.05, depth * self._job_seconds_ema / self.config.workers
        )

    def _dispatch_loop(self) -> None:
        """Dispatcher thread body: the loop, plus a crash boundary.

        An exception escaping the loop means the dispatcher is gone for
        good; every pending job is failed with a structured
        ``server-stopped`` error so pollers and ``await_result`` callers
        see a terminal state instead of hanging forever.
        """
        try:
            self._dispatch_forever()
        except BaseException as error:
            with self._wakeup:
                self._stopping = True
                self._queue.clear()
                pending = [
                    record
                    for record in self._jobs.values()
                    if not record.finished
                ]
            for record in pending:
                self._finish_error(
                    record,
                    "failed",
                    f"dispatcher died: {type(error).__name__}: {error}",
                    code="server-stopped",
                )
            raise

    def _dispatch_forever(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._stopping:
                    self._wakeup.wait()
                stopping = self._stopping
                if stopping and not self._drain_on_stop:
                    cancelled = list(self._queue)
                    self._queue.clear()
                elif stopping and not self._queue:
                    return
                else:
                    cancelled = []
            if stopping and not self._drain_on_stop:
                for record in cancelled:
                    self._finish_error(
                        record, "cancelled", "server shut down without drain"
                    )
                return
            # Let concurrent submitters pile into this gulp; skipped
            # while draining (latency no longer matters, finish fast).
            if self.config.batch_window_seconds > 0 and not stopping:
                time.sleep(self.config.batch_window_seconds)
            with self._wakeup:
                batch = list(self._queue)
                self._queue.clear()
            if batch:
                self._run_batch(batch)

    def _run_batch(self, batch: list[JobRecord]) -> None:
        self._counts["batches"] += 1
        telemetry.count("serve_batches")
        now = time.monotonic()
        groups: dict[
            tuple[WorkloadSpec, PlatformSpec], list[JobRecord]
        ] = {}
        for record in batch:
            if record.deadline is not None and now >= record.deadline:
                self._finish_error(
                    record,
                    "timeout",
                    f"queued past its {_timeout_of(record):g}s timeout",
                    extra={"timeout_seconds": _timeout_of(record)},
                )
                continue
            groups.setdefault(record.request.pair_key, []).append(record)
        # Group order follows first arrival within the gulp, so a batch
        # is processed deterministically given its contents.
        for pair, records in groups.items():
            self._run_group(pair, records)

    def _breaker_check(
        self, pair: tuple[WorkloadSpec, PlatformSpec]
    ) -> dict[str, float] | None:
        """The pair's breaker state, or None when breakers are off.

        Raises nothing; an *open* breaker is reported by the caller via
        the returned state (``open_until`` in the future).
        """
        if self.config.breaker_threshold <= 0:
            return None
        return self._breakers.setdefault(
            pair, {"failures": 0, "open_until": 0.0}
        )

    def _run_group(
        self,
        pair: tuple[WorkloadSpec, PlatformSpec],
        records: list[JobRecord],
    ) -> None:
        breaker = self._breaker_check(pair)
        if breaker is not None:
            now = time.monotonic()
            if (
                breaker["failures"] >= self.config.breaker_threshold
                and now < breaker["open_until"]
            ):
                # Open: fail fast, protect the pool from a pair that
                # keeps taking workers down.
                retry_after = round(breaker["open_until"] - now, 3)
                self._robust_counts["breaker_rejections"] += len(records)
                telemetry.count("serve_breaker_rejections", len(records))
                for record in records:
                    self._finish_error(
                        record,
                        "failed",
                        f"circuit breaker open for {pair[0].label!r} on "
                        f"{pair[1].label!r} after repeated failures; "
                        f"retry in {retry_after:g}s",
                        extra={"retry_after_seconds": retry_after},
                        code="circuit-open",
                    )
                return
        try:
            workload, platform, table = self.caches.resolve(pair)
        except Exception as error:  # noqa: BLE001 - bad spec, not a crash
            for record in records:
                self._finish_error(
                    record, "failed",
                    f"cannot build {pair[0].label!r} on "
                    f"{pair[1].label!r}: {error}",
                )
            return
        started = time.monotonic()
        tasks = []
        for record in records:
            record.state = "running"
            record.started_at = started
            request = record.request
            constraint = request.constraint
            if constraint is None:
                assert request.fraction is not None
                constraint = max(
                    1, round(table.initial_cycles() * request.fraction)
                )
            tasks.append(
                _JobTask(
                    workload=request.workload,
                    platform=request.platform,
                    algorithm=request.algorithm,
                    constraint=constraint,
                    table=table,
                    deadline_seconds=self.config.search_deadline_seconds,
                    degrade=self.config.degrade_under_deadline,
                )
            )

        def run_serially(serial_tasks) -> list[tuple[str, object]]:
            # The dispatcher already holds the built objects: no
            # per-task rebuild, no pickling.
            return [
                _partition_once(task, workload, platform)
                for task in serial_tasks
            ]

        policy = RetryPolicy(
            max_attempts=self.config.task_retries + 1,
            backoff_seconds=self.config.retry_backoff_seconds,
        )
        outcomes, _ = map_tasks(
            _execute_task,
            tasks,
            self.config.workers if len(tasks) > 1 else 1,
            what=f"serve batch ({pair[0].label})",
            serial_runner=run_serially,
            policy=policy,
            fault_plan=self.config.fault_plan,
            failure_mode="report",
            counters=self._robust_counts,
        )
        finished = time.monotonic()
        per_job = (finished - started) / max(1, len(records))
        self._job_seconds_ema = (
            0.8 * self._job_seconds_ema + 0.2 * per_job
        )
        infra_failures = 0
        for record, outcome in zip(records, outcomes, strict=True):
            if isinstance(outcome, TaskFailure):
                # Supervision exhausted the task's attempts: crashed /
                # timed out / kept raising even after retries.
                if outcome.kind in ("crashed", "timeout"):
                    infra_failures += 1
                self._finish_error(
                    record,
                    "failed",
                    outcome.describe(),
                    extra={
                        "failure_kind": outcome.kind,
                        "attempts": outcome.attempts,
                    },
                )
                continue
            status, value = outcome
            if status in ("ok", "degraded"):
                assert isinstance(value, PartitionResult)
                self._finish_ok(
                    record, value, finished, degraded=status == "degraded"
                )
            else:
                self._finish_error(record, "failed", str(value))
        if breaker is not None:
            if infra_failures:
                breaker["failures"] += 1
                if breaker["failures"] >= self.config.breaker_threshold:
                    breaker["open_until"] = (
                        time.monotonic()
                        + self.config.breaker_cooldown_seconds
                    )
                    self._robust_counts["breaker_trips"] += 1
                    telemetry.count("serve_breaker_trips")
            else:
                # A clean group closes the breaker (half-open probe
                # succeeded, or the pair recovered on its own).
                breaker["failures"] = 0
                breaker["open_until"] = 0.0

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finish_ok(
        self,
        record: JobRecord,
        result: PartitionResult,
        finished_at: float,
        degraded: bool = False,
    ) -> None:
        if record.done_event.is_set():
            # Already resolved (e.g. force-failed at the drain
            # deadline while the stuck dispatcher kept running).
            return
        record.result = result
        record.finished_at = finished_at
        record.state = "done"
        record.degraded = degraded
        self._counts["completed"] += 1
        telemetry.count("serve_jobs_completed")
        if degraded:
            self._robust_counts["degraded_jobs"] += 1
            telemetry.count("serve_jobs_degraded")
        record.done_event.set()

    def _finish_error(
        self,
        record: JobRecord,
        state: str,
        message: str,
        extra: dict[str, object] | None = None,
        code: str | None = None,
    ) -> None:
        if record.done_event.is_set():
            return
        error: dict[str, object] = {"code": code or state, "message": message}
        if extra:
            error.update(extra)
        record.error = error
        record.finished_at = time.monotonic()
        record.state = state
        key = {"timeout": "timeouts", "cancelled": "cancelled"}.get(
            state, "failed"
        )
        self._counts[key] += 1
        telemetry.count(f"serve_jobs_{key}")
        record.done_event.set()


def _timeout_of(record: JobRecord) -> float:
    assert record.deadline is not None
    return record.deadline - record.submitted_at
