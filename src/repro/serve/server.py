"""The in-process partitioning server.

A :class:`Server` is the whole service minus the sockets: submit
:class:`~repro.serve.jobs.JobRequest`\\ s (or raw JSON payloads), poll
or await the results, and let a single dispatcher thread batch the
queue.  The HTTP daemon (:mod:`repro.serve.daemon`) is a thin shell
over this class, so tests and the load bench drive the identical code
path without a port.

**Batching.**  The dispatcher drains the queue in gulps (after a short
``batch_window_seconds`` accumulation pause), groups the drained jobs
by their (workload spec × platform spec) pair fingerprint, and resolves
each group against the shared LRU caches — so N concurrent jobs on one
pair cost **one** workload build and **one** priced
:class:`~repro.partition.packed.PackedCostTable`
(``cost_table_builds`` rises once), however the jobs interleaved at
submission.  Each group then fans out over the existing
:func:`repro.parallel.map_tasks` process pool when ``workers > 1``
(tables are picklable, so workers price nothing), or runs in the
dispatcher thread when ``workers == 1``.

**Determinism.**  A job's result depends only on its own request plus
the deterministic table, never on its neighbours in a batch, so cycle
counts are bit-identical to a serial ``python -m repro partition`` run
regardless of arrival order, batch boundaries, or worker count.

**Backpressure.**  The queue is bounded; a submission over capacity is
rejected with :class:`~repro.serve.jobs.QueueFullError` carrying a
``retry_after_seconds`` estimate (queue depth × a recent-job-seconds
EMA ÷ workers).  Nothing is silently dropped.

**Timeouts.**  A job's ``timeout_seconds`` bounds its *queue* time: a
job whose deadline passes before dispatch is cancelled with a
structured ``timeout`` error and never runs.  Dispatch is the
cancellation granularity — a job that already started runs to
completion (partitioning runs are short; the queue is where a loaded
server makes jobs wait).

**Shutdown.**  ``shutdown(drain=True)`` stops intake, lets the
dispatcher finish everything queued, and joins it; ``drain=False``
cancels the queue instead.  Both leave every job in a terminal state.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from .. import telemetry
from ..parallel import map_tasks
from ..partition.engine import EngineConfig
from ..partition.packed import PackedCostTable
from ..partition.result import PartitionResult
from ..partition.workload import ApplicationWorkload
from ..explore.space import PlatformSpec, WorkloadSpec
from ..interp.cache import ProfileCache, default_profile_cache
from ..search import make_partitioner
from .cache import PricedTableCache
from .jobs import (
    JobError,
    JobRecord,
    JobRequest,
    QueueFullError,
    UnknownJobError,
)

__all__ = ["Server", "ServerConfig", "ServerStoppedError"]


class ServerStoppedError(JobError):
    """A submission arrived after shutdown began."""

    code = "server-stopped"


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one server instance (all bounded and explicit)."""

    #: Process fan-out per batch group; 1 runs jobs in the dispatcher
    #: thread (no pools, fully deterministic scheduling).
    workers: int = 1
    #: Bounded-queue capacity; submissions beyond it are rejected with
    #: a retry-after estimate rather than buffered without limit.
    queue_capacity: int = 256
    #: How long the dispatcher pauses after waking to let concurrent
    #: submissions pile into one batch.  0 disables the pause.
    batch_window_seconds: float = 0.005
    #: LRU capacity of the workload/table caches (entries per cache).
    cache_capacity: int = 8
    #: Default per-job queue timeout when a request carries none;
    #: ``None`` means queued jobs wait indefinitely.
    default_timeout_seconds: float | None = None
    #: On-disk directory for the shared profile cache (measured
    #: workloads); ``None`` keeps profiling results in memory only.
    profile_cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.batch_window_seconds < 0:
            raise ValueError("batch_window_seconds must be >= 0")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds < 0
        ):
            raise ValueError("default_timeout_seconds must be >= 0")


@dataclass(frozen=True)
class _JobTask:
    """One job's picklable work unit (what a pool worker receives)."""

    workload: WorkloadSpec
    platform: PlatformSpec
    algorithm: "object"  # AlgorithmSpec; typed loosely to stay picklable-simple
    constraint: int
    table: PackedCostTable


#: Per-process workload cache for pool workers (grown lazily, exactly
#: like the suite runner's).
_WORKER_WORKLOADS: dict[WorkloadSpec, ApplicationWorkload] = {}


def _execute_task(task: _JobTask) -> tuple[str, object]:
    """Run one job; never raises (errors come back structured).

    Used both by pool workers (hence top-level and picklable) and, via
    the serial runner, in the dispatcher thread.  The injected table
    means a worker prices nothing — ``cost_table_builds`` stays with
    the dispatcher's cache.
    """
    try:
        workload = _WORKER_WORKLOADS.get(task.workload)
        if workload is None:
            workload = task.workload.build()
            _WORKER_WORKLOADS[task.workload] = workload
        platform = task.platform.build()
        partitioner = make_partitioner(
            task.algorithm,  # type: ignore[arg-type]
            workload,
            platform,
            config=EngineConfig(),
            packed_table=task.table,
        )
        return "ok", partitioner.run(task.constraint)
    except Exception as error:  # noqa: BLE001 - a job must not kill the batch
        return "error", f"{type(error).__name__}: {error}"


class Server:
    """The long-running batching server (in-process API).

    Use as a context manager for the start/drain lifecycle::

        with Server(ServerConfig(workers=1)) as server:
            job_id = server.submit(request)
            record = server.await_result(job_id)

    Thread-safe: any number of threads may submit/poll concurrently;
    one dispatcher thread owns execution and the caches.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        # An explicit directory wins; otherwise honour the shared
        # REPRO_PROFILE_CACHE_DIR hook (memory-only when unset).
        profile_cache = (
            ProfileCache(directory=self.config.profile_cache_dir)
            if self.config.profile_cache_dir is not None
            else default_profile_cache()
        )
        self.caches = PricedTableCache(
            capacity=self.config.cache_capacity,
            profile_cache=profile_cache,
        )
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: deque[JobRecord] = deque()
        self._jobs: dict[int, JobRecord] = {}
        self._next_id = 1
        self._started = False
        self._stopping = False
        self._drain_on_stop = True
        self._thread: threading.Thread | None = None
        #: EMA of per-job run seconds, feeding the retry-after estimate.
        self._job_seconds_ema = 0.05
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "timeouts": 0,
            "cancelled": 0,
            "rejected": 0,
            "batches": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Server":
        """Launch the dispatcher thread (idempotent)."""
        with self._lock:
            if self._stopping:
                raise ServerStoppedError("server already shut down")
            if self._started:
                return self
            self._started = True
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> None:
        """Stop intake; finish (``drain=True``) or cancel the queue.

        Joins the dispatcher, so on return every accepted job is in a
        terminal state.  Idempotent.
        """
        with self._wakeup:
            self._stopping = True
            self._drain_on_stop = drain and self._started
            self._wakeup.notify_all()
            if not self._started:
                # No dispatcher exists to run the queue: everything
                # still queued resolves as cancelled right here.
                pending = list(self._queue)
                self._queue.clear()
            else:
                pending = []
        for record in pending:
            self._finish_error(
                record, "cancelled", "server shut down before dispatch"
            )
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(drain=True)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> int:
        """Enqueue a job; returns its id.

        Raises :class:`QueueFullError` (with a retry-after estimate)
        over capacity and :class:`ServerStoppedError` after shutdown
        began.
        """
        now = time.monotonic()
        with self._wakeup:
            if self._stopping:
                raise ServerStoppedError(
                    "server is shutting down; no new jobs accepted"
                )
            if len(self._queue) >= self.config.queue_capacity:
                self._counts["rejected"] += 1
                telemetry.count("serve_jobs_rejected")
                raise QueueFullError(
                    f"queue full ({self.config.queue_capacity} jobs "
                    "pending); retry later",
                    retry_after_seconds=self._retry_after_locked(),
                )
            timeout = request.timeout_seconds
            if timeout is None:
                timeout = self.config.default_timeout_seconds
            record = JobRecord(
                job_id=self._next_id,
                request=request,
                submitted_at=now,
                deadline=None if timeout is None else now + timeout,
            )
            self._next_id += 1
            self._jobs[record.job_id] = record
            self._queue.append(record)
            self._counts["submitted"] += 1
            telemetry.count("serve_jobs_submitted")
            self._wakeup.notify_all()
            return record.job_id

    def submit_payload(self, payload: object) -> int:
        """Decode one JSON job payload and enqueue it."""
        return self.submit(JobRequest.from_payload(payload))

    def record(self, job_id: int) -> JobRecord:
        """The live record of a job (raises :class:`UnknownJobError`)."""
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise UnknownJobError(f"unknown job id {job_id}")
        return record

    def poll(self, job_id: int) -> dict[str, object]:
        """One JSON-ready status/result snapshot of a job."""
        return self.record(job_id).to_payload()

    def await_result(
        self, job_id: int, timeout: float | None = None
    ) -> JobRecord:
        """Block until the job reaches a terminal state.

        Raises :class:`TimeoutError` when the *wait* (not the job's own
        queue timeout) expires first.
        """
        record = self.record(job_id)
        if not record.done_event.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {record.state} after waiting "
                f"{timeout}s"
            )
        return record

    def cancel(self, job_id: int) -> bool:
        """Cancel a still-queued job; False if it already left the queue."""
        record = self.record(job_id)
        with self._wakeup:
            try:
                self._queue.remove(record)
            except ValueError:
                return False
        self._finish_error(record, "cancelled", "cancelled by client")
        return True

    def stats(self) -> dict[str, object]:
        """A JSON-ready snapshot of counters, caches, and queue state."""
        with self._lock:
            queued = len(self._queue)
            counts = dict(self._counts)
        return {
            "state": (
                "stopped" if self._stopping
                else "running" if self._started
                else "idle"
            ),
            "queued": queued,
            "queue_capacity": self.config.queue_capacity,
            "workers": self.config.workers,
            "jobs": counts,
            "caches": self.caches.stats(),
            "retry_after_seconds": round(self._retry_after_locked(), 3),
        }

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _retry_after_locked(self) -> float:
        """Backpressure hint: how long until the queue likely drains."""
        depth = max(1, len(self._queue))
        return max(
            0.05, depth * self._job_seconds_ema / self.config.workers
        )

    def _dispatch_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._stopping:
                    self._wakeup.wait()
                stopping = self._stopping
                if stopping and not self._drain_on_stop:
                    cancelled = list(self._queue)
                    self._queue.clear()
                elif stopping and not self._queue:
                    return
                else:
                    cancelled = []
            if stopping and not self._drain_on_stop:
                for record in cancelled:
                    self._finish_error(
                        record, "cancelled", "server shut down without drain"
                    )
                return
            # Let concurrent submitters pile into this gulp; skipped
            # while draining (latency no longer matters, finish fast).
            if self.config.batch_window_seconds > 0 and not stopping:
                time.sleep(self.config.batch_window_seconds)
            with self._wakeup:
                batch = list(self._queue)
                self._queue.clear()
            if batch:
                self._run_batch(batch)

    def _run_batch(self, batch: list[JobRecord]) -> None:
        self._counts["batches"] += 1
        telemetry.count("serve_batches")
        now = time.monotonic()
        groups: dict[
            tuple[WorkloadSpec, PlatformSpec], list[JobRecord]
        ] = {}
        for record in batch:
            if record.deadline is not None and now >= record.deadline:
                self._finish_error(
                    record,
                    "timeout",
                    f"queued past its {_timeout_of(record):g}s timeout",
                    extra={"timeout_seconds": _timeout_of(record)},
                )
                continue
            groups.setdefault(record.request.pair_key, []).append(record)
        # Group order follows first arrival within the gulp, so a batch
        # is processed deterministically given its contents.
        for pair, records in groups.items():
            self._run_group(pair, records)

    def _run_group(
        self,
        pair: tuple[WorkloadSpec, PlatformSpec],
        records: list[JobRecord],
    ) -> None:
        try:
            workload, platform, table = self.caches.resolve(pair)
        except Exception as error:  # noqa: BLE001 - bad spec, not a crash
            for record in records:
                self._finish_error(
                    record, "failed",
                    f"cannot build {pair[0].label!r} on "
                    f"{pair[1].label!r}: {error}",
                )
            return
        started = time.monotonic()
        tasks = []
        for record in records:
            record.state = "running"
            record.started_at = started
            request = record.request
            constraint = request.constraint
            if constraint is None:
                assert request.fraction is not None
                constraint = max(
                    1, round(table.initial_cycles() * request.fraction)
                )
            tasks.append(
                _JobTask(
                    workload=request.workload,
                    platform=request.platform,
                    algorithm=request.algorithm,
                    constraint=constraint,
                    table=table,
                )
            )

        def run_serially(serial_tasks) -> list[tuple[str, object]]:
            # The dispatcher already holds the built objects: no
            # per-task rebuild, no pickling.
            outcomes = []
            for task in serial_tasks:
                try:
                    partitioner = make_partitioner(
                        task.algorithm,
                        workload,
                        platform,
                        config=EngineConfig(),
                        packed_table=table,
                    )
                    outcomes.append(("ok", partitioner.run(task.constraint)))
                except Exception as error:  # noqa: BLE001
                    outcomes.append(
                        ("error", f"{type(error).__name__}: {error}")
                    )
            return outcomes

        outcomes, _ = map_tasks(
            _execute_task,
            tasks,
            self.config.workers if len(tasks) > 1 else 1,
            what=f"serve batch ({pair[0].label})",
            serial_runner=run_serially,
        )
        finished = time.monotonic()
        per_job = (finished - started) / max(1, len(records))
        self._job_seconds_ema = (
            0.8 * self._job_seconds_ema + 0.2 * per_job
        )
        for record, (status, value) in zip(records, outcomes, strict=True):
            if status == "ok":
                assert isinstance(value, PartitionResult)
                self._finish_ok(record, value, finished)
            else:
                self._finish_error(record, "failed", str(value))

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finish_ok(
        self,
        record: JobRecord,
        result: PartitionResult,
        finished_at: float,
    ) -> None:
        record.result = result
        record.finished_at = finished_at
        record.state = "done"
        self._counts["completed"] += 1
        telemetry.count("serve_jobs_completed")
        record.done_event.set()

    def _finish_error(
        self,
        record: JobRecord,
        state: str,
        message: str,
        extra: dict[str, object] | None = None,
    ) -> None:
        error: dict[str, object] = {"code": state, "message": message}
        if extra:
            error.update(extra)
        record.error = error
        record.finished_at = time.monotonic()
        record.state = state
        key = {"timeout": "timeouts", "cancelled": "cancelled"}.get(
            state, "failed"
        )
        self._counts[key] += 1
        telemetry.count(f"serve_jobs_{key}")
        record.done_event.set()


def _timeout_of(record: JobRecord) -> float:
    assert record.deadline is not None
    return record.deadline - record.submitted_at
