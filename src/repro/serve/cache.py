"""Capacity-bounded caches the server shares across requests.

Two LRU layers sit between incoming jobs and the pricing substrate:

* a **workload cache** (spec -> built :class:`ApplicationWorkload`), so
  the same workload requested on several platforms builds its DFGs —
  and, for the measured kinds, runs the profiler — once;
* a **table cache** ((workload, platform) -> priced
  :class:`~repro.partition.packed.PackedCostTable`), so every job of a
  batch sharing the pair partitions against one pricing pass.

Both are plain LRU dicts bounded by entry count (priced tables are a
few tuples of ints per kernel — the bound is about unbounded-workload
hygiene on a long-running daemon, not memory pressure per entry), and
both export their hit/miss counters through :mod:`repro.telemetry`
(``serve_workload_cache_hits/misses``, ``serve_table_cache_hits/
misses``) next to the ``cost_table_builds`` counter the table build
itself bumps.  Measured workload specs profile through the server's
shared :class:`~repro.interp.cache.ProfileCache`, so repeated profiling
of an identical program is also collapsed (and survives restarts when
the cache directory is on disk).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, TypeVar

from .. import telemetry
from ..explore.space import PlatformSpec, WorkloadSpec
from ..interp.cache import ProfileCache
from ..partition.costs import CostModel
from ..partition.packed import PackedCostTable
from ..partition.workload import ApplicationWorkload

__all__ = ["LruCache", "PricedTableCache"]

_Key = TypeVar("_Key")
_Value = TypeVar("_Value")


@dataclass
class CacheCounters:
    hits: int = 0
    misses: int = 0
    evictions: int = 0


class LruCache(Generic[_Key, _Value]):
    """A small least-recently-used mapping with telemetry counters.

    ``counter_prefix`` names the telemetry counters this cache bumps
    (``<prefix>_hits`` / ``<prefix>_misses``).  Not thread-safe on its
    own; the server serializes access from its dispatcher thread.
    """

    def __init__(self, capacity: int, counter_prefix: str) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.counter_prefix = counter_prefix
        self.counters = CacheCounters()
        self._entries: OrderedDict[_Key, _Value] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: _Key) -> bool:
        return key in self._entries

    def get(self, key: _Key) -> _Value | None:
        """The cached value (refreshed to most-recent), or ``None``."""
        value = self._entries.get(key)
        if value is None:
            self.counters.misses += 1
            telemetry.count(f"{self.counter_prefix}_misses")
            return None
        self._entries.move_to_end(key)
        self.counters.hits += 1
        telemetry.count(f"{self.counter_prefix}_hits")
        return value

    def put(self, key: _Key, value: _Value) -> None:
        """Insert (or refresh) an entry, evicting the least recent."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.counters.evictions += 1

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.counters.hits,
            "misses": self.counters.misses,
            "evictions": self.counters.evictions,
        }


class PricedTableCache:
    """The server's shared pricing state: workloads, tables, profiles.

    ``resolve(pair)`` returns the built ``(workload, platform, table)``
    triple for a (workload-spec, platform-spec) pair, building and
    caching whatever is missing.  One resolve per *batch*, so N queued
    jobs sharing a pair cost one ``cost_table_builds`` however they
    arrived.
    """

    def __init__(
        self,
        capacity: int = 8,
        profile_cache: ProfileCache | None = None,
    ) -> None:
        self.workloads: LruCache[WorkloadSpec, ApplicationWorkload] = (
            LruCache(capacity, "serve_workload_cache")
        )
        self.tables: LruCache[
            tuple[WorkloadSpec, PlatformSpec], PackedCostTable
        ] = LruCache(capacity, "serve_table_cache")
        self.profile_cache = (
            profile_cache if profile_cache is not None else ProfileCache()
        )

    def resolve(
        self, pair: tuple[WorkloadSpec, PlatformSpec]
    ) -> tuple[ApplicationWorkload, "object", PackedCostTable]:
        workload_spec, platform_spec = pair
        workload = self.workloads.get(workload_spec)
        if workload is None:
            with telemetry.span("build_workload"):
                workload = workload_spec.build(
                    profile_cache=self.profile_cache
                )
            self.workloads.put(workload_spec, workload)
        platform = platform_spec.build()
        table = self.tables.get(pair)
        if table is None:
            # from_model() bumps the cost_table_builds counter — the
            # batching-collapse metric the load bench gates on.
            table = PackedCostTable.from_model(CostModel(workload, platform))
            self.tables.put(pair, table)
        return workload, platform, table

    def stats(self) -> dict[str, object]:
        return {
            "workloads": self.workloads.stats(),
            "tables": self.tables.stats(),
            "profile_hits": self.profile_cache.stats.hits,
            "profile_misses": self.profile_cache.stats.misses,
        }
