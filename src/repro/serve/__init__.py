"""Partitioning-as-a-service: the async batch server.

The paper partitions one workload once; this subsystem serves
partitioning decisions as infrastructure.  Jobs (workload spec ×
platform spec × constraint × algorithm) queue into a bounded queue,
batch by their (workload × platform) fingerprint onto one priced
:class:`~repro.partition.packed.PackedCostTable` held in a
capacity-bounded LRU, and fan out over the shared
:func:`repro.parallel.map_tasks` pool — with structured backpressure,
per-job queue timeouts, and graceful drain.

Two entry points:

* :class:`Server` — the in-process API (tests, benches, embedding);
* :mod:`repro.serve.daemon` / ``python -m repro serve`` — the same
  server behind a stdlib JSON-over-HTTP front.
"""

from .cache import LruCache, PricedTableCache
from .daemon import ServeDaemon, run_daemon
from .jobs import (
    JobError,
    JobRecord,
    JobRequest,
    JobValidationError,
    QueueFullError,
    UnknownJobError,
)
from .server import Server, ServerConfig, ServerStoppedError

__all__ = [
    "JobError",
    "JobRecord",
    "JobRequest",
    "JobValidationError",
    "LruCache",
    "PricedTableCache",
    "QueueFullError",
    "ServeDaemon",
    "Server",
    "ServerConfig",
    "ServerStoppedError",
    "UnknownJobError",
    "run_daemon",
]
