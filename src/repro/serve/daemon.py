"""The socket shell: ``python -m repro serve`` as a JSON-over-HTTP daemon.

Stdlib-only (:class:`http.server.ThreadingHTTPServer`); every endpoint
is a thin translation onto the in-process :class:`~repro.serve.server.
Server`, so anything the daemon can do a test can do without a port.

Endpoints::

    POST /jobs        submit one job (JSON body)  -> 202 {"job_id": N}
                      malformed/invalid           -> 400 {"error": ...}
                      queue full                  -> 429 + Retry-After
    GET  /jobs/<id>   poll one job                -> 200 payload | 404
    GET  /stats       server counters and caches  -> 200
    GET  /healthz     liveness                    -> 200 {"ok": true}
    POST /shutdown    begin a graceful drain      -> 202

``SIGTERM``/``SIGINT`` trigger the same graceful drain the endpoint
does: intake stops, queued jobs finish, the HTTP loop exits.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .jobs import JobError, JobValidationError, QueueFullError
from .server import Server, ServerConfig, ServerStoppedError

__all__ = ["ServeDaemon", "run_daemon"]

#: Bodies over this size are rejected outright (jobs are tiny).
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    daemon: "ServeDaemon"  # injected by ServeDaemon via class attribute
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        if self.daemon.verbose:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        payload: dict[str, object],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise JobValidationError(
                f"request body too large ({length} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobValidationError("empty request body; expected JSON")
        try:
            return json.loads(raw)
        except ValueError as error:
            raise JobValidationError(
                f"malformed JSON body: {error}"
            ) from None

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/jobs":
            try:
                payload = self._read_json()
                job_id = self.daemon.server.submit_payload(payload)
            except QueueFullError as error:
                self._reply(
                    429,
                    {"error": error.to_payload()},
                    headers={
                        "Retry-After": f"{error.retry_after_seconds:.3f}"
                    },
                )
                return
            except ServerStoppedError as error:
                # Shutting down: this instance will not take the job,
                # but another (post-restart) one will — 503 with a
                # Retry-After, not a 400 that blames the request.
                self._reply(
                    503,
                    {"error": error.to_payload()},
                    headers={"Retry-After": "1"},
                )
                return
            except JobError as error:
                self._reply(400, {"error": error.to_payload()})
                return
            self._reply(202, {"job_id": job_id})
            return
        if self.path == "/shutdown":
            self._reply(202, {"draining": True})
            self.daemon.request_shutdown()
            return
        self._reply(404, {"error": {"code": "not-found", "message": self.path}})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._reply(200, {"ok": True})
            return
        if self.path == "/stats":
            self._reply(200, self.daemon.server.stats())
            return
        if self.path.startswith("/jobs/"):
            tail = self.path[len("/jobs/"):]
            if not tail.isdigit():
                self._reply(
                    400,
                    {"error": {
                        "code": "invalid-request",
                        "message": f"job id must be an integer, got {tail!r}",
                    }},
                )
                return
            try:
                payload = self.daemon.server.poll(int(tail))
            except JobError as error:
                self._reply(404, {"error": error.to_payload()})
                return
            self._reply(200, payload)
            return
        self._reply(404, {"error": {"code": "not-found", "message": self.path}})


class ServeDaemon:
    """One daemon: an HTTP front plus the in-process server behind it.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    what was actually bound.  The daemon owns the server lifecycle:
    :meth:`serve_forever` starts it, and any shutdown route —
    the endpoint, ``SIGTERM``, ``SIGINT``, or :meth:`request_shutdown`
    — drains it gracefully before the loop returns.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        drain_deadline_seconds: float | None = None,
    ) -> None:
        if (
            drain_deadline_seconds is not None
            and drain_deadline_seconds <= 0
        ):
            raise ValueError("drain_deadline_seconds must be positive")
        self.server = Server(config)
        self.verbose = verbose
        #: Hard cap on the SIGTERM/shutdown drain: after this many
        #: seconds any still-pending job is failed (``server-stopped``)
        #: and the process exits anyway — a stuck job cannot wedge it.
        #: ``None`` drains without limit.
        self.drain_deadline_seconds = drain_deadline_seconds
        self._stop_event = threading.Event()
        handler = type("_BoundHandler", (_Handler,), {"daemon": self})
        self._http = ThreadingHTTPServer((host, port), handler)
        self._http_thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeDaemon":
        """Start the dispatcher and the HTTP loop (non-blocking)."""
        self.server.start()
        if self._http_thread is None:
            self._http_thread = threading.Thread(
                target=self._http.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._http_thread.start()
        return self

    def request_shutdown(self) -> None:
        """Begin the graceful drain (returns immediately)."""
        self._stop_event.set()

    def handle_signal(self, signum: int, frame: object = None) -> None:
        """Signal-handler entry point: SIGTERM/SIGINT -> graceful drain."""
        self.request_shutdown()

    def install_signal_handlers(self) -> None:
        signal.signal(signal.SIGTERM, self.handle_signal)
        signal.signal(signal.SIGINT, self.handle_signal)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a shutdown was requested; then drain and stop.

        Returns ``False`` when ``timeout`` expired with the daemon still
        running (nothing is torn down in that case).
        """
        if not self._stop_event.wait(timeout):
            return False
        self.close()
        return True

    def close(self) -> None:
        """Stop intake, drain the queue, stop the HTTP loop.

        The drain is bounded by :attr:`drain_deadline_seconds`; past it,
        pending jobs are failed fast and teardown proceeds.
        """
        self._stop_event.set()
        self.server.shutdown(
            drain=True, timeout=self.drain_deadline_seconds
        )
        self._http.shutdown()
        self._http.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5)

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def run_daemon(
    config: ServerConfig,
    host: str,
    port: int,
    verbose: bool = False,
    drain_deadline_seconds: float | None = None,
) -> int:
    """The blocking ``python -m repro serve`` body."""
    daemon = ServeDaemon(
        config,
        host=host,
        port=port,
        verbose=verbose,
        drain_deadline_seconds=drain_deadline_seconds,
    )
    daemon.install_signal_handlers()
    daemon.start()
    bound_host, bound_port = daemon.address
    print(
        f"serving partitioning jobs on http://{bound_host}:{bound_port} "
        f"({config.workers} worker(s), queue capacity "
        f"{config.queue_capacity}); SIGTERM drains gracefully"
    )
    daemon.wait()
    print("drained; bye")
    return 0
