"""Job model of the partitioning service.

A *job* is one partitioning request — workload spec × platform spec ×
timing constraint × algorithm — submitted to a
:class:`~repro.serve.server.Server`, tracked through a small state
machine::

    queued -> running -> done | failed
    queued -> timeout            (deadline passed before dispatch)
    queued -> cancelled          (client cancel / non-drain shutdown)
    queued -> rejected           (never recorded: the submit raised)

Requests arrive either as Python objects (:class:`JobRequest`) or as
the JSON payload the daemon accepts (:meth:`JobRequest.from_payload`);
outcomes leave as plain-dict payloads (:meth:`JobRecord.to_payload`) so
the in-process API and the HTTP API serve byte-identical answers.
Failures are *structured*: every terminal error carries a stable
``code`` (``timeout``, ``cancelled``, ``queue-full``, ``invalid-request``,
``job-failed``) next to its human-readable message.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..explore.space import PlatformSpec, WorkloadSpec
from ..partition.result import PartitionResult
from ..search.base import AlgorithmSpec
from ..specs import algorithm_spec_from_text, workload_spec_from_text

__all__ = [
    "JobError",
    "JobRecord",
    "JobRequest",
    "JobValidationError",
    "QueueFullError",
    "TERMINAL_STATES",
    "UnknownJobError",
]

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "timeout", "cancelled")

_PLATFORM_FIELDS = (
    "afpga",
    "cgc_count",
    "clock_ratio",
    "reconfig_cycles",
    "rows",
    "cols",
)


class JobError(Exception):
    """Base of every structured serving error; carries a stable code."""

    code = "job-error"

    def to_payload(self) -> dict[str, object]:
        return {"code": self.code, "message": str(self)}


class JobValidationError(JobError):
    """The request itself is malformed (bad spec text, missing field)."""

    code = "invalid-request"


class UnknownJobError(JobError):
    """A poll/await named a job id the server never issued."""

    code = "unknown-job"


class QueueFullError(JobError):
    """Backpressure: the bounded queue rejected the submission.

    ``retry_after_seconds`` estimates when capacity will free up (queue
    depth × recent per-job seconds over the worker count); the daemon
    surfaces it as an HTTP 429 ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_seconds: float) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds

    code = "queue-full"

    def to_payload(self) -> dict[str, object]:
        payload = super().to_payload()
        payload["retry_after_seconds"] = round(self.retry_after_seconds, 3)
        return payload


@dataclass(frozen=True)
class JobRequest:
    """One partitioning request, fully described by picklable specs.

    Exactly one of ``constraint`` (absolute FPGA cycles) or ``fraction``
    (of the pair's all-FPGA cycle count) must be set; the server
    resolves fractions against the priced table at dispatch, exactly as
    ``python -m repro partition --fraction`` does.
    """

    workload: WorkloadSpec
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    constraint: int | None = None
    fraction: float | None = None
    algorithm: AlgorithmSpec = field(default_factory=AlgorithmSpec.greedy)
    #: Seconds from submission until the job is abandoned if it has not
    #: *started*; ``None`` uses the server default (which may be no
    #: timeout at all).
    timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if (self.constraint is None) == (self.fraction is None):
            raise JobValidationError(
                "a job needs exactly one of 'constraint' or 'fraction'"
            )
        if self.constraint is not None and self.constraint <= 0:
            raise JobValidationError("'constraint' must be a positive int")
        if self.fraction is not None and self.fraction <= 0:
            raise JobValidationError("'fraction' must be positive")
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise JobValidationError("'timeout_seconds' must be >= 0")

    @property
    def pair_key(self) -> tuple[WorkloadSpec, PlatformSpec]:
        """The batching fingerprint: jobs sharing it price one table."""
        return (self.workload, self.platform)

    @classmethod
    def from_payload(cls, payload: object) -> "JobRequest":
        """Decode the JSON job format (raises :class:`JobValidationError`).

        ::

            {"workload": "synthetic:32:seed=1",
             "platform": {"afpga": 1500, "cgc_count": 2},   # optional
             "fraction": 0.5,            # or "constraint": 123456
             "algorithm": "greedy",       # optional
             "timeout_seconds": 30.0}     # optional
        """
        if not isinstance(payload, dict):
            raise JobValidationError(
                f"job payload must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "workload", "platform", "constraint", "fraction", "algorithm",
            "timeout_seconds",
        }
        if unknown:
            raise JobValidationError(
                f"unknown job field(s): {', '.join(sorted(unknown))}"
            )
        workload_text = payload.get("workload")
        if not isinstance(workload_text, str):
            raise JobValidationError("'workload' (a spec string) is required")
        try:
            workload = workload_spec_from_text(workload_text)
        except ValueError as error:
            raise JobValidationError(str(error)) from None
        algorithm_text = payload.get("algorithm", "greedy")
        if not isinstance(algorithm_text, str):
            raise JobValidationError("'algorithm' must be a spec string")
        try:
            algorithm = algorithm_spec_from_text(algorithm_text)
        except ValueError as error:
            raise JobValidationError(str(error)) from None
        platform = _platform_from_payload(payload.get("platform"))
        constraint = payload.get("constraint")
        if constraint is not None and not isinstance(constraint, int):
            raise JobValidationError("'constraint' must be an integer")
        fraction = payload.get("fraction")
        if fraction is not None:
            if isinstance(fraction, bool) or not isinstance(
                fraction, (int, float)
            ):
                raise JobValidationError("'fraction' must be a number")
            fraction = float(fraction)
        timeout = payload.get("timeout_seconds")
        if timeout is not None:
            if isinstance(timeout, bool) or not isinstance(
                timeout, (int, float)
            ):
                raise JobValidationError("'timeout_seconds' must be a number")
            timeout = float(timeout)
        return cls(
            workload=workload,
            platform=platform,
            constraint=constraint,
            fraction=fraction,
            algorithm=algorithm,
            timeout_seconds=timeout,
        )

    def describe(self) -> str:
        target = (
            f"{self.constraint} cycles"
            if self.constraint is not None
            else f"{self.fraction:g}·initial"
        )
        return (
            f"{self.workload.label} on {self.platform.label} @ {target} "
            f"via {self.algorithm.label}"
        )


def _platform_from_payload(payload: object) -> PlatformSpec:
    if payload is None:
        return PlatformSpec()
    if not isinstance(payload, dict):
        raise JobValidationError("'platform' must be a JSON object")
    unknown = set(payload) - set(_PLATFORM_FIELDS)
    if unknown:
        raise JobValidationError(
            f"unknown platform field(s): {', '.join(sorted(unknown))}"
        )
    kwargs: dict[str, int] = {}
    for name in _PLATFORM_FIELDS:
        if name in payload:
            value = payload[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise JobValidationError(
                    f"platform field {name!r} must be an integer"
                )
            kwargs[name] = value
    try:
        return PlatformSpec(**kwargs)
    except ValueError as error:
        raise JobValidationError(str(error)) from None


class JobRecord:
    """One job's lifecycle inside the server (thread-safe via the
    server's lock; the record itself only owns its completion event)."""

    __slots__ = (
        "job_id",
        "request",
        "state",
        "submitted_at",
        "started_at",
        "finished_at",
        "deadline",
        "result",
        "error",
        "done_event",
        "degraded",
    )

    def __init__(
        self,
        job_id: int,
        request: JobRequest,
        submitted_at: float,
        deadline: float | None,
    ) -> None:
        self.job_id = job_id
        self.request = request
        self.state = "queued"
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.deadline = deadline
        self.result: PartitionResult | None = None
        self.error: dict[str, object] | None = None
        self.done_event = threading.Event()
        #: True when the search deadline expired and the greedy fallback
        #: answered instead of the requested algorithm.
        self.degraded = False

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def latency_seconds(self) -> float | None:
        """Submission-to-completion wall seconds (None while pending)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_payload(self) -> dict[str, object]:
        """The JSON answer for one poll of this job."""
        payload: dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state,
            "request": self.request.describe(),
        }
        if self.finished_at is not None:
            payload["latency_seconds"] = round(
                self.finished_at - self.submitted_at, 6
            )
        if self.result is not None:
            payload["result"] = _result_payload(self.result)
        if self.degraded:
            payload["degraded"] = True
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _result_payload(result: PartitionResult) -> dict[str, object]:
    """A :class:`PartitionResult` as the service's JSON result format.

    Carries every field a client needs to check bit-identity with a
    serial ``python -m repro partition`` run, including the per-step
    cycle splits.
    """
    return {
        "workload": result.workload_name,
        "platform": result.platform_name,
        "timing_constraint": result.timing_constraint,
        "initial_cycles": result.initial_cycles,
        "final_cycles": result.final_cycles,
        "fpga_cycles": result.fpga_cycles,
        "cycles_in_cgc": result.cycles_in_cgc,
        "comm_cycles": result.comm_cycles,
        "reduction_percent": round(result.reduction_percent, 3),
        "kernels_moved": result.kernels_moved,
        "moved_bb_ids": list(result.moved_bb_ids),
        "skipped_bb_ids": list(result.skipped_bb_ids),
        "reverted_bb_ids": list(result.reverted_bb_ids),
        "constraint_met": result.constraint_met,
        "partial": result.partial,
        "certified": result.certified,
        "steps": [
            {
                "moved_bb_id": step.moved_bb_id,
                "total_cycles": step.total_cycles,
                "fpga_cycles": step.fpga_cycles,
                "cgc_fpga_cycles": step.cgc_fpga_cycles,
                "comm_cycles": step.comm_cycles,
                "constraint_met": step.constraint_met,
            }
            for step in result.steps
        ],
    }
