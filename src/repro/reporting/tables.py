"""ASCII table rendering in the paper's row layout.

The benchmark harness prints the regenerated tables with the same rows the
paper reports (initial cycles, CGCs, cycles in CGC, BB numbers, final
cycles, % reduction) side by side with the published values.
"""

from __future__ import annotations

from .experiments import (
    PartitionComparison,
    Table1Comparison,
    TableReproduction,
)


def format_grid(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal fixed-width grid formatter (no external dependencies)."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(row[index]))
    parts = []
    divider = "-+-".join("-" * w for w in widths)
    parts.append(
        " | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True))
    )
    parts.append(divider)
    for row in rows:
        parts.append(
            " | ".join(c.ljust(w) for c, w in zip(row, widths, strict=False))
        )
    return "\n".join(parts)


def render_table1(
    comparisons: list[Table1Comparison], title: str
) -> str:
    """Table 1 layout: BB no. / exec freq / ops weight / total weight."""
    headers = [
        "BB no.",
        "exec freq",
        "ops weight",
        "total weight",
        "paper total",
        "match",
    ]
    rows = [
        [
            str(c.bb_id),
            str(c.exec_freq),
            str(c.ops_weight),
            str(c.total_weight),
            str(c.paper.total_weight),
            "yes" if c.matches else "NO",
        ]
        for c in comparisons
    ]
    return f"{title}\n{format_grid(headers, rows)}"


def _partition_cells(row: PartitionComparison) -> list[str]:
    result = row.result
    paper = row.paper
    moved = ",".join(str(b) for b in result.moved_bb_ids) or "-"
    paper_moved = ",".join(str(b) for b in paper.moved_bbs)
    return [
        str(paper.afpga),
        f"{paper.cgc_count}x2x2",
        str(result.initial_cycles),
        str(paper.initial_cycles),
        str(result.cycles_in_cgc),
        str(paper.cycles_in_cgc),
        moved,
        paper_moved,
        str(result.final_cycles),
        str(paper.final_cycles),
        f"{result.reduction_percent:.1f}",
        f"{paper.reduction_percent:.1f}",
        "yes" if result.constraint_met else "NO",
    ]


def render_partition_table(table: TableReproduction) -> str:
    """Table 2/3 layout, ours and the paper's values interleaved."""
    headers = [
        "A_FPGA",
        "CGCs",
        "initial",
        "(paper)",
        "in CGC",
        "(paper)",
        "BB no.",
        "(paper)",
        "final",
        "(paper)",
        "red %",
        "(paper)",
        "met",
    ]
    rows = [_partition_cells(row) for row in table.rows]
    summary = (
        f"kernel sets match paper: {table.all_sets_match}; "
        f"constraints met: {table.all_constraints_met}; "
        f"scale factor: {table.scale:.3f}"
    )
    return f"{table.name}\n{format_grid(headers, rows)}\n{summary}"
