"""Longitudinal trend analytics over the suite result store.

The SQLite :class:`~repro.suite.store.ResultStore` records every suite
run with a code fingerprint; this module reads it *longitudinally*: one
trajectory per scenario across runs, for the three gated metrics
(total cycles, wall seconds, configs/second) plus the per-phase
breakdowns schema v4 stores from the telemetry traces.

On each trajectory a simple step detector flags the **first** run where
a metric moved beyond a noise threshold in the bad direction (cycles or
wall up, throughput down), comparing each value against the median of
all prior values — the median is robust to one-off spikes, so a step
is a *sustained* change, and the flag names the first offending run's
fingerprint, which is exactly the commit a perf regression hunt starts
from.  Noise floors keep micro-scenarios (sub-ms walls, tiny searches)
from flagging timer jitter.

Legacy runs with an empty ``created_at`` (a pre-fix bench artifact) are
handled throughout by ordering on run id — which the store's queries do
inherently — and displaying ``-`` for the missing timestamp.

Outputs: an ASCII report (:func:`render_trends`), a CSV of every
(scenario × run) row (:func:`write_trends_csv`) and a self-contained
HTML artifact (:func:`write_trends_html`) for CI uploads.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..suite.store import ResultStore, ScenarioTrendPoint
from .tables import format_grid

#: (metric key, attribute on ScenarioTrendPoint, worse direction).
_METRICS: tuple[tuple[str, str, str], ...] = (
    ("total_cycles", "total_cycles", "up"),
    ("wall_time_seconds", "wall_time_seconds", "up"),
    ("configs_per_second", "configs_per_second", "down"),
)


@dataclass(frozen=True)
class StepThresholds:
    """Noise thresholds of the step detector, per metric.

    ``*_percent`` is the minimum deviation from the median of prior
    values (in the worse direction) that counts as a step.  Cycles are
    deterministic on this codebase, so their threshold is tight; wall
    time and throughput are timer-noisy, so theirs are wide.  The
    ``min_*`` floors exempt values too small to time reliably.
    """

    cycle_percent: float = 10.0
    wall_percent: float = 75.0
    throughput_percent: float = 60.0
    #: Wall values below this (seconds) never flag — timer jitter.
    min_wall_seconds: float = 0.05
    #: Throughput values below this (cfg/s) never flag.
    min_configs_per_second: float = 1000.0

    def percent_for(self, metric: str) -> float:
        return {
            "total_cycles": self.cycle_percent,
            "wall_time_seconds": self.wall_percent,
            "configs_per_second": self.throughput_percent,
        }[metric]

    def floor_for(self, metric: str) -> float:
        return {
            "total_cycles": 0.0,
            "wall_time_seconds": self.min_wall_seconds,
            "configs_per_second": self.min_configs_per_second,
        }[metric]


@dataclass(frozen=True)
class MetricStep:
    """The first run where one scenario metric stepped."""

    scenario: str
    metric: str
    run_id: int
    fingerprint: str
    created_at: str
    baseline_value: float
    value: float
    delta_percent: float

    def describe(self) -> str:
        when = self.created_at or "-"
        return (
            f"{self.scenario}: {self.metric} stepped "
            f"{self.delta_percent:+.1f}% at run {self.run_id} "
            f"(fingerprint {self.fingerprint}, {when}) — "
            f"{self.baseline_value:g} -> {self.value:g}"
        )


@dataclass
class ScenarioTrend:
    """One scenario's trajectory plus any detected steps."""

    name: str
    points: list[ScenarioTrendPoint] = field(default_factory=list)
    steps: list[MetricStep] = field(default_factory=list)

    @property
    def latest(self) -> ScenarioTrendPoint | None:
        return self.points[-1] if self.points else None

    def phase_names(self) -> list[str]:
        names: set[str] = set()
        for point in self.points:
            names.update(name for name, _ in point.phases)
        return sorted(names)


@dataclass
class TrendsReport:
    """Every requested scenario's trend in one report."""

    trends: list[ScenarioTrend] = field(default_factory=list)
    thresholds: StepThresholds = field(default_factory=StepThresholds)

    @property
    def steps(self) -> list[MetricStep]:
        return [step for trend in self.trends for step in trend.steps]

    def phase_names(self) -> list[str]:
        names: set[str] = set()
        for trend in self.trends:
            names.update(trend.phase_names())
        return sorted(names)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_first_step(
    values: Sequence[float],
    threshold_percent: float,
    worse_direction: str = "up",
    floor: float = 0.0,
) -> tuple[int, float, float] | None:
    """The first index where a series stepped beyond the threshold.

    Each value is compared against the **median of all prior values**
    (so a detected step survives earlier one-off outliers); the first
    deviation beyond ``threshold_percent`` in ``worse_direction``
    (``"up"`` or ``"down"``) is returned as
    ``(index, baseline_median, delta_percent)``.  A comparison is
    skipped while both sides sit below ``floor`` (too small to measure)
    or the baseline is zero.  ``None`` means the series never stepped.
    """
    if worse_direction not in ("up", "down"):
        raise ValueError("worse_direction must be 'up' or 'down'")
    for index in range(1, len(values)):
        baseline = _median(values[:index])
        value = values[index]
        if baseline <= 0:
            continue
        if value < floor and baseline < floor:
            continue
        delta_percent = (value - baseline) / baseline * 100.0
        if worse_direction == "up" and delta_percent > threshold_percent:
            return index, baseline, delta_percent
        if worse_direction == "down" and delta_percent < -threshold_percent:
            return index, baseline, delta_percent
    return None


def _detect_steps(
    trend: ScenarioTrend, thresholds: StepThresholds
) -> list[MetricStep]:
    steps: list[MetricStep] = []
    for metric, attribute, direction in _METRICS:
        series = [
            float(getattr(point, attribute)) for point in trend.points
        ]
        hit = detect_first_step(
            series,
            thresholds.percent_for(metric),
            direction,
            thresholds.floor_for(metric),
        )
        if hit is None:
            continue
        index, baseline, delta_percent = hit
        point = trend.points[index]
        steps.append(
            MetricStep(
                scenario=trend.name,
                metric=metric,
                run_id=point.run_id,
                fingerprint=point.fingerprint,
                created_at=point.created_at,
                baseline_value=baseline,
                value=series[index],
                delta_percent=delta_percent,
            )
        )
    return steps


def compute_trends(
    store: ResultStore,
    scenarios: Iterable[str] | None = None,
    thresholds: StepThresholds | None = None,
) -> TrendsReport:
    """Trend + step detection for each scenario in the store.

    ``scenarios=None`` covers every scenario with recorded results;
    passing names keeps them in the given order (unknown names yield an
    empty trend rather than an error, so a report over a fixed scenario
    list tolerates stores that have not run all of them yet).
    """
    thresholds = thresholds or StepThresholds()
    names = (
        store.scenario_names_recorded()
        if scenarios is None
        else list(scenarios)
    )
    report = TrendsReport(thresholds=thresholds)
    for name in names:
        trend = ScenarioTrend(
            name=name, points=store.scenario_trend_points(name)
        )
        trend.steps = _detect_steps(trend, thresholds)
        report.trends.append(trend)
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_when(created_at: str) -> str:
    return created_at or "-"


def render_trends(report: TrendsReport) -> str:
    """The report as ASCII tables: one summary grid (latest values and
    phase-breakdown columns) plus one line per flagged step."""
    phase_names = report.phase_names()
    headers = [
        "scenario",
        "runs",
        "cycles",
        "cycles Δ%",
        "wall s",
        "cfg/s",
    ] + [f"{name} s" for name in phase_names]
    rows = []
    for trend in report.trends:
        latest = trend.latest
        if latest is None:
            rows.append(
                [trend.name, "0", "-", "-", "-", "-"]
                + ["-"] * len(phase_names)
            )
            continue
        first_cycles = trend.points[0].total_cycles
        drift = (
            (latest.total_cycles - first_cycles) / first_cycles * 100.0
            if first_cycles
            else 0.0
        )
        phases = latest.phases_dict()
        rows.append(
            [
                trend.name,
                str(len(trend.points)),
                str(latest.total_cycles),
                f"{drift:+.1f}",
                f"{latest.wall_time_seconds:.3f}",
                f"{latest.configs_per_second:.0f}",
            ]
            + [
                f"{phases[name]:.3f}" if name in phases else "-"
                for name in phase_names
            ]
        )
    table = format_grid(headers, rows)
    if not report.steps:
        return f"{table}\nno metric steps detected"
    lines = [table, f"{len(report.steps)} metric step(s) detected:"]
    lines.extend(f"  {step.describe()}" for step in report.steps)
    return "\n".join(lines)


def write_trends_csv(report: TrendsReport, path: str | Path) -> Path:
    """One row per (scenario × run), with per-phase columns and a
    ``stepped_metrics`` marker naming any metric that first stepped at
    that run."""
    import csv

    phase_names = report.phase_names()
    path = Path(path)
    fields = [
        "scenario",
        "run_id",
        "created_at",
        "fingerprint",
        "label",
        "total_cycles",
        "wall_time_seconds",
        "configs_per_second",
        "stepped_metrics",
    ] + [f"phase_{name}" for name in phase_names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for trend in report.trends:
            stepped_at = {}
            for step in trend.steps:
                stepped_at.setdefault(step.run_id, []).append(step.metric)
            for point in trend.points:
                phases = point.phases_dict()
                writer.writerow(
                    [
                        trend.name,
                        point.run_id,
                        _fmt_when(point.created_at),
                        point.fingerprint,
                        point.label,
                        point.total_cycles,
                        f"{point.wall_time_seconds:.6f}",
                        f"{point.configs_per_second:.1f}",
                        ";".join(stepped_at.get(point.run_id, [])),
                    ]
                    + [
                        f"{phases[name]:.6f}" if name in phases else ""
                        for name in phase_names
                    ]
                )
    return path


_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem;
         font-size: 0.85rem; text-align: right; }
th { background: #f0f0f0; } td.name { text-align: left; }
tr.stepped td { background: #ffe4e1; }
p.step { color: #a00; margin: 0.2rem 0; }
p.ok { color: #070; }
""".strip()


def write_trends_html(report: TrendsReport, path: str | Path) -> Path:
    """A self-contained HTML artifact: the flagged steps up top, then
    one longitudinal table per scenario (rows where a metric first
    stepped are highlighted).  Tables only — no scripts, no external
    assets — so the file renders anywhere CI archives it."""
    def esc(value: object) -> str:
        return html.escape(str(value))

    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>suite trends</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        "<h1>Suite trends</h1>",
    ]
    if report.steps:
        parts.append(f"<p>{len(report.steps)} metric step(s) detected:</p>")
        parts.extend(
            f"<p class='step'>{esc(step.describe())}</p>"
            for step in report.steps
        )
    else:
        parts.append("<p class='ok'>No metric steps detected.</p>")
    for trend in report.trends:
        parts.append(f"<h2>{esc(trend.name)}</h2>")
        if not trend.points:
            parts.append("<p>No recorded runs.</p>")
            continue
        phase_names = trend.phase_names()
        stepped_runs = {step.run_id for step in trend.steps}
        header_cells = "".join(
            f"<th>{esc(column)}</th>"
            for column in (
                ["run", "when", "fingerprint", "label", "cycles",
                 "wall s", "cfg/s"]
                + [f"{name} s" for name in phase_names]
            )
        )
        parts.append(f"<table><tr>{header_cells}</tr>")
        for point in trend.points:
            phases = point.phases_dict()
            cells = [
                str(point.run_id),
                _fmt_when(point.created_at),
                point.fingerprint,
                point.label or "-",
                str(point.total_cycles),
                f"{point.wall_time_seconds:.4f}",
                f"{point.configs_per_second:.0f}",
            ] + [
                f"{phases[name]:.4f}" if name in phases else "-"
                for name in phase_names
            ]
            row_class = (
                " class='stepped'" if point.run_id in stepped_runs else ""
            )
            row = "".join(f"<td>{esc(cell)}</td>" for cell in cells)
            parts.append(f"<tr{row_class}>{row}</tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    path = Path(path)
    path.write_text("\n".join(parts) + "\n")
    return path


def trends_json_dict(report: TrendsReport) -> dict[str, object]:
    """The report as a JSON-ready dict (machine consumers / tests)."""
    return {
        "scenarios": [
            {
                "name": trend.name,
                "runs": len(trend.points),
                "steps": [
                    {
                        "metric": step.metric,
                        "run_id": step.run_id,
                        "fingerprint": step.fingerprint,
                        "delta_percent": round(step.delta_percent, 2),
                    }
                    for step in trend.steps
                ],
            }
            for trend in report.trends
        ],
    }


def render_trends_json(report: TrendsReport) -> str:
    return json.dumps(trends_json_dict(report), indent=2, sort_keys=True)
