"""Rendering and export of design-space exploration reports.

The :mod:`repro.explore` runner produces structured
:class:`~repro.explore.results.ExplorationResult` records; this module
turns them into the ASCII grid the benchmarks print and into CSV/JSON
files downstream tooling can ingest.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from ..explore.results import ExplorationReport, ExplorationResult
from ..search.pareto import VisitedConfiguration
from .tables import format_grid

#: Column order of the CSV export (a superset of the printed table).
CSV_FIELDS = (
    "workload",
    "algorithm",
    "platform",
    "afpga",
    "cgc_count",
    "clock_ratio",
    "reconfig_cycles",
    "constraint_fraction",
    "timing_constraint",
    "initial_cycles",
    "final_cycles",
    "reduction_percent",
    "kernels_moved",
    "moved_bb_ids",
    "reverted_bb_ids",
    "skipped_bb_ids",
    "constraint_met",
)


def exploration_rows(
    results: Iterable[ExplorationResult],
) -> list[list[str]]:
    rows = []
    for result in results:
        moved = ",".join(str(b) for b in result.moved_bb_ids) or "-"
        rows.append(
            [
                result.workload,
                result.algorithm,
                str(result.afpga),
                f"{result.cgc_count}x CGC",
                str(result.clock_ratio),
                str(result.reconfig_cycles),
                f"{result.constraint_fraction:.2f}",
                str(result.initial_cycles),
                str(result.final_cycles),
                f"{result.reduction_percent:.1f}",
                moved,
                str(len(result.reverted_bb_ids)),
                "yes" if result.constraint_met else "no",
            ]
        )
    return rows


def render_exploration(report: ExplorationReport) -> str:
    """The exploration grid as an ASCII table plus the run summary."""
    headers = [
        "workload",
        "algorithm",
        "A_FPGA",
        "CGCs",
        "T-ratio",
        "rcfg",
        "C/initial",
        "initial",
        "final",
        "red %",
        "BBs moved",
        "reverted",
        "met",
    ]
    table = format_grid(headers, exploration_rows(report.results))
    return f"{table}\n{report.summary()}"


def write_exploration_csv(
    results: Iterable[ExplorationResult], path: str | Path
) -> Path:
    """One row per grid point; BB id lists are ';'-joined."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for result in results:
            row = result.to_dict()
            for key in ("moved_bb_ids", "reverted_bb_ids", "skipped_bb_ids"):
                row[key] = ";".join(str(b) for b in row[key])
            writer.writerow(row)
    return path


def write_exploration_json(
    report: ExplorationReport, path: str | Path
) -> Path:
    """The full report (run metadata + every record) as one JSON object."""
    path = Path(path)
    payload = {
        "summary": {
            "points": report.size,
            "tasks_run": report.tasks_run,
            "workers_used": report.workers_used,
            "elapsed_seconds": round(report.elapsed_seconds, 6),
            "block_cost_evaluations": report.block_cost_evaluations,
            "contribution_lookups": report.contribution_lookups,
            "blocks_mapped": report.blocks_mapped,
            "constraints_met": len(report.met()),
        },
        "results": [result.to_dict() for result in report.results],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Pareto fronts (multi-objective search output)
# ----------------------------------------------------------------------
#: Column order of the Pareto CSV export.
PARETO_CSV_FIELDS = (
    "algorithm",
    "total_cycles",
    "moved_kernel_count",
    "cgc_rows_used",
    "moved_bb_ids",
)


def render_pareto(points: Iterable[VisitedConfiguration]) -> str:
    """Non-dominated configurations as an ASCII table."""
    headers = ["algorithm", "cycles", "kernels moved", "CGC rows", "BBs"]
    rows = [
        [
            point.algorithm or "-",
            str(point.total_cycles),
            str(point.moved_kernel_count),
            str(point.cgc_rows_used),
            ",".join(str(b) for b in point.moved_bb_ids) or "-",
        ]
        for point in points
    ]
    return format_grid(headers, rows)


def write_pareto_csv(
    points: Iterable[VisitedConfiguration], path: str | Path
) -> Path:
    """One row per non-dominated configuration; BB ids are ';'-joined."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=PARETO_CSV_FIELDS)
        writer.writeheader()
        for point in points:
            row = point.to_dict()
            row["moved_bb_ids"] = ";".join(
                str(b) for b in point.moved_bb_ids
            )
            writer.writerow(row)
    return path
