"""Rendering and export of scenario-suite runs and diffs."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from ..suite.compare import SuiteComparison
from ..suite.store import ScenarioResult, SuiteRun
from .tables import format_grid

#: Column order of the suite CSV export.
SUITE_CSV_FIELDS = (
    "scenario",
    "workload",
    "platform",
    "algorithm",
    "constraint_fraction",
    "timing_constraint",
    "initial_cycles",
    "total_cycles",
    "reduction_percent",
    "kernels_moved",
    "moved_bb_ids",
    "rows_used",
    "constraint_met",
    "wall_time_seconds",
    "configs_per_second",
    "pruned_subtrees",
    "phases",
)


def render_suite(run: SuiteRun) -> str:
    """One suite run as an ASCII table plus its metadata line."""
    headers = [
        "scenario",
        "workload",
        "algorithm",
        "C/initial",
        "initial",
        "total",
        "red %",
        "moved",
        "rows",
        "met",
        "wall s",
        "cfg/s",
    ]
    rows = []
    for result in run.results:
        rows.append(
            [
                result.scenario,
                result.workload,
                result.algorithm,
                f"{result.constraint_fraction:.2f}",
                str(result.initial_cycles),
                str(result.total_cycles),
                f"{result.reduction_percent:.1f}",
                str(result.kernels_moved),
                str(result.rows_used),
                "yes" if result.constraint_met else "no",
                f"{result.wall_time_seconds:.3f}",
                f"{result.configs_per_second:.0f}",
            ]
        )
    table = format_grid(headers, rows)
    label = f" [{run.label}]" if run.label else ""
    meta = (
        f"{len(run.results)} scenario(s){label} @ {run.fingerprint} "
        f"in {run.elapsed_seconds:.2f}s"
    )
    return f"{table}\n{meta}"


def render_suite_diff(comparison: SuiteComparison) -> str:
    """A candidate-vs-baseline diff as an ASCII table plus summary."""
    headers = [
        "scenario",
        "status",
        "base cycles",
        "cand cycles",
        "cycles Δ%",
        "base wall",
        "cand wall",
        "wall Δ%",
        "why",
    ]
    rows = []
    for delta in comparison.deltas:
        base, cand = delta.baseline, delta.candidate
        rows.append(
            [
                delta.scenario,
                delta.status,
                str(base.total_cycles) if base else "-",
                str(cand.total_cycles) if cand else "-",
                (
                    f"{delta.cycle_delta_percent:+.1f}"
                    if delta.cycle_delta_percent is not None
                    else "-"
                ),
                f"{base.wall_time_seconds:.3f}" if base else "-",
                f"{cand.wall_time_seconds:.3f}" if cand else "-",
                (
                    f"{delta.wall_delta_percent:+.0f}"
                    if delta.wall_delta_percent is not None
                    else "-"
                ),
                "; ".join(delta.reasons) or "-",
            ]
        )
    table = format_grid(headers, rows)
    return f"{table}\n{comparison.summary()}"


def write_suite_csv(
    results: Iterable[ScenarioResult], path: str | Path
) -> Path:
    """One row per scenario; BB id lists are ';'-joined."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=SUITE_CSV_FIELDS)
        writer.writeheader()
        for result in results:
            row = result.to_dict()
            row["moved_bb_ids"] = ";".join(
                str(b) for b in result.moved_bb_ids
            )
            # One cell per result: phase breakdowns are ragged across
            # scenarios, so they stay a compact JSON object.
            row["phases"] = json.dumps(row["phases"], sort_keys=True)
            writer.writerow(row)
    return path


def write_suite_json(run: SuiteRun, path: str | Path) -> Path:
    """The run in the baseline JSON format (same file ``suite compare``
    accepts as either side)."""
    return run.write_json(path)
