"""Experiment reproduction runners and table rendering."""

from .experiments import (
    HeadlineClaims,
    PartitionComparison,
    Table1Comparison,
    TableReproduction,
    reproduce_headline_claims,
    reproduce_partition_table,
    reproduce_table1,
    reproduce_table1_jpeg,
    reproduce_table1_ofdm,
    reproduce_table2,
    reproduce_table3,
    scaled_constraint,
)
from .exploration import (
    render_exploration,
    render_pareto,
    write_exploration_csv,
    write_exploration_json,
    write_pareto_csv,
)
from .suite import (
    render_suite,
    render_suite_diff,
    write_suite_csv,
    write_suite_json,
)
from .tables import format_grid, render_partition_table, render_table1

__all__ = [
    "HeadlineClaims",
    "PartitionComparison",
    "Table1Comparison",
    "TableReproduction",
    "format_grid",
    "render_exploration",
    "render_pareto",
    "render_partition_table",
    "render_suite",
    "render_suite_diff",
    "render_table1",
    "reproduce_headline_claims",
    "reproduce_partition_table",
    "reproduce_table1",
    "reproduce_table1_jpeg",
    "reproduce_table1_ofdm",
    "reproduce_table2",
    "reproduce_table3",
    "scaled_constraint",
    "write_exploration_csv",
    "write_exploration_json",
    "write_pareto_csv",
    "write_suite_csv",
    "write_suite_json",
]
