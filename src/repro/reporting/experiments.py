"""Experiment runners: regenerate every table of the paper's evaluation.

Normalization policy
--------------------
Our substrate is a calibrated simulator, not the authors' tool chain, so
absolute cycle counts differ by a workload-dependent factor.  To make the
engine face the *same decision problem* the paper's did, each experiment
scales the published timing constraint by the ratio between our all-FPGA
cycle count and the paper's, both measured at the A_FPGA = 1500 baseline::

    scale   = initial_ours(A=1500) / initial_paper(A=1500)
    C_ours  = round(C_paper × scale)

i.e. the deadline keeps the same *relative* slack.  EXPERIMENTS.md records
paper-vs-measured for every cell under this policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.weights import WeightModel
from ..partition.engine import EngineConfig, PartitioningEngine
from ..partition.result import PartitionResult
from ..partition.workload import ApplicationWorkload
from ..platform.soc import paper_platform
from ..workloads import profiles as paper_profiles
from ..workloads.profiles import PaperKernelRow, PaperPartitionRow


@dataclass(frozen=True)
class Table1Comparison:
    """One Table 1 row: ours vs the paper's (these must match exactly)."""

    bb_id: int
    exec_freq: int
    ops_weight: int
    total_weight: int
    paper: PaperKernelRow

    @property
    def matches(self) -> bool:
        return (
            self.bb_id == self.paper.bb_id
            and self.exec_freq == self.paper.exec_freq
            and self.ops_weight == self.paper.ops_weight
            and self.total_weight == self.paper.total_weight
        )


@dataclass(frozen=True)
class PartitionComparison:
    """One Table 2/3 configuration: our engine run vs the paper's row."""

    paper: PaperPartitionRow
    result: PartitionResult
    scaled_constraint: int

    @property
    def moved_match(self) -> bool:
        return self.result.moved_bb_ids == list(self.paper.moved_bbs)

    @property
    def reduction_error(self) -> float:
        return self.result.reduction_percent - self.paper.reduction_percent

    def describe(self) -> str:
        status = "match" if self.moved_match else "DIFFERENT KERNEL SET"
        return (
            f"A={self.paper.afpga}, {self.paper.cgc_count} CGCs: moved "
            f"{self.result.moved_bb_ids} vs paper {list(self.paper.moved_bbs)} "
            f"({status}); reduction {self.result.reduction_percent:.1f}% vs "
            f"{self.paper.reduction_percent}% (paper)"
        )


@dataclass
class TableReproduction:
    """Full reproduction record of one results table."""

    name: str
    rows: list[PartitionComparison] = field(default_factory=list)
    scale: float = 1.0

    @property
    def all_sets_match(self) -> bool:
        return all(row.moved_match for row in self.rows)

    @property
    def all_constraints_met(self) -> bool:
        return all(row.result.constraint_met for row in self.rows)

    def max_reduction(self) -> float:
        return max(row.result.reduction_percent for row in self.rows)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def reproduce_table1(
    workload: ApplicationWorkload,
    paper_rows: list[PaperKernelRow],
    weight_model: WeightModel | None = None,
) -> list[Table1Comparison]:
    """Run the analysis ordering and compare against the published rows."""
    model = weight_model or WeightModel()
    rows = workload.analysis_rows(model, count=len(paper_rows))
    comparisons = []
    for (bb_id, freq, weight, total), paper_row in zip(
        rows, paper_rows, strict=False
    ):
        comparisons.append(
            Table1Comparison(bb_id, freq, weight, total, paper_row)
        )
    return comparisons


def reproduce_table1_ofdm() -> list[Table1Comparison]:
    return reproduce_table1(
        paper_profiles.ofdm_workload(), paper_profiles.OFDM_TABLE1
    )


def reproduce_table1_jpeg() -> list[Table1Comparison]:
    return reproduce_table1(
        paper_profiles.jpeg_workload(), paper_profiles.JPEG_TABLE1
    )


# ----------------------------------------------------------------------
# Tables 2 and 3
# ----------------------------------------------------------------------
def scaled_constraint(
    workload: ApplicationWorkload,
    paper_rows: list[PaperPartitionRow],
    paper_constraint: int,
    platform_factory=paper_platform,
) -> tuple[int, float]:
    """Apply the normalization policy; returns (constraint, scale)."""
    baseline = platform_factory(1500, 2)
    engine = PartitioningEngine(workload, baseline)
    ours = engine.initial_cycles()
    scale = ours / paper_rows[0].initial_cycles
    return int(round(paper_constraint * scale)), scale


def reproduce_partition_table(
    workload: ApplicationWorkload,
    paper_rows: list[PaperPartitionRow],
    paper_constraint: int,
    name: str,
    platform_factory=paper_platform,
    engine_config: EngineConfig | None = None,
) -> TableReproduction:
    """Run the partitioning engine for every configuration of a table."""
    constraint, scale = scaled_constraint(
        workload, paper_rows, paper_constraint, platform_factory
    )
    table = TableReproduction(name=name, scale=scale)
    for paper_row in paper_rows:
        platform = platform_factory(paper_row.afpga, paper_row.cgc_count)
        engine = PartitioningEngine(
            workload, platform, config=engine_config
        )
        result = engine.run(constraint)
        table.rows.append(
            PartitionComparison(
                paper=paper_row,
                result=result,
                scaled_constraint=constraint,
            )
        )
    return table


def reproduce_table2() -> TableReproduction:
    """Table 2: OFDM partitioning across the four platform configurations."""
    return reproduce_partition_table(
        paper_profiles.ofdm_workload(),
        paper_profiles.PAPER_TABLE2_OFDM,
        paper_profiles.OFDM_TIMING_CONSTRAINT,
        name="Table 2 (OFDM transmitter)",
    )


def reproduce_table3() -> TableReproduction:
    """Table 3: JPEG partitioning across the four platform configurations."""
    return reproduce_partition_table(
        paper_profiles.jpeg_workload(),
        paper_profiles.PAPER_TABLE3_JPEG,
        paper_profiles.JPEG_TIMING_CONSTRAINT,
        name="Table 3 (JPEG encoder)",
    )


# ----------------------------------------------------------------------
# Headline claims (§4 / abstract)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HeadlineClaims:
    """The paper's abstract-level results, ours vs theirs."""

    ofdm_max_reduction: float
    jpeg_max_reduction: float
    ofdm_area_trend_holds: bool
    jpeg_area_trend_holds: bool

    PAPER_OFDM_MAX = 81.8
    PAPER_JPEG_MAX = 43.5


def reproduce_headline_claims(
    table2: TableReproduction | None = None,
    table3: TableReproduction | None = None,
) -> HeadlineClaims:
    """Max reductions and the larger-area ⇒ smaller-reduction trend."""
    table2 = table2 or reproduce_table2()
    table3 = table3 or reproduce_table3()

    def trend(table: TableReproduction) -> bool:
        by_area: dict[int, list[float]] = {}
        for row in table.rows:
            by_area.setdefault(row.paper.afpga, []).append(
                row.result.reduction_percent
            )
        small = min(by_area)
        large = max(by_area)
        return max(by_area[large]) < min(by_area[small])

    return HeadlineClaims(
        ofdm_max_reduction=table2.max_reduction(),
        jpeg_max_reduction=table3.max_reduction(),
        ofdm_area_trend_holds=trend(table2),
        jpeg_area_trend_holds=trend(table3),
    )
