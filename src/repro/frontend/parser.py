"""Recursive-descent parser for the mini-C language.

Grammar sketch (EBNF)::

    program        := (global_decl | function_decl)*
    function_decl  := type IDENT '(' params? ')' block
    global_decl    := 'const'? type declarator ('=' initializer)? ';'
    declarator     := IDENT ('[' INT ']')*
    statement      := block | if | while | do-while | for | return
                    | break ';' | continue ';' | decl ';' | expr_stmt ';'
    expr_stmt      := assignment | expression
    assignment     := lvalue assign_op expression | lvalue '++' | lvalue '--'

Expressions use precedence climbing with C-like precedence, including the
ternary conditional and short-circuit ``&&`` / ``||``.
"""

from __future__ import annotations

from .ast_nodes import (
    ArrayRef,
    ArrayType,
    AssignStmt,
    BinaryExpr,
    BinaryOp,
    BlockStmt,
    BreakStmt,
    CallExpr,
    ConditionalExpr,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FunctionDecl,
    GlobalDecl,
    IfStmt,
    IntLiteral,
    NameRef,
    Param,
    Program,
    ReturnStmt,
    Stmt,
    Type,
    UnaryExpr,
    UnaryOp,
    WhileStmt,
)
from .errors import ParserError
from .lexer import tokenize
from .tokens import COMPOUND_ASSIGN_BASE, Token, TokenKind

#: Binary operator precedence (larger binds tighter), mirroring C.
_BINARY_PRECEDENCE: dict[TokenKind, tuple[int, BinaryOp]] = {
    TokenKind.OROR: (1, BinaryOp.LOR),
    TokenKind.ANDAND: (2, BinaryOp.LAND),
    TokenKind.PIPE: (3, BinaryOp.OR),
    TokenKind.CARET: (4, BinaryOp.XOR),
    TokenKind.AMP: (5, BinaryOp.AND),
    TokenKind.EQ: (6, BinaryOp.EQ),
    TokenKind.NE: (6, BinaryOp.NE),
    TokenKind.LT: (7, BinaryOp.LT),
    TokenKind.GT: (7, BinaryOp.GT),
    TokenKind.LE: (7, BinaryOp.LE),
    TokenKind.GE: (7, BinaryOp.GE),
    TokenKind.SHL: (8, BinaryOp.SHL),
    TokenKind.SHR: (8, BinaryOp.SHR),
    TokenKind.PLUS: (9, BinaryOp.ADD),
    TokenKind.MINUS: (9, BinaryOp.SUB),
    TokenKind.STAR: (10, BinaryOp.MUL),
    TokenKind.SLASH: (10, BinaryOp.DIV),
    TokenKind.PERCENT: (10, BinaryOp.MOD),
}

_TYPE_KEYWORDS = {
    TokenKind.KW_INT: Type.INT,
    TokenKind.KW_FLOAT: Type.FLOAT,
    TokenKind.KW_VOID: Type.VOID,
}

_ASSIGN_KINDS = {TokenKind.ASSIGN} | set(COMPOUND_ASSIGN_BASE)


class Parser:
    """Parses one translation unit from a token list."""

    def __init__(self, tokens: list[Token], filename: str = "<source>"):
        self.tokens = tokens
        self.index = 0
        self.filename = filename

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _check(self, *kinds: TokenKind) -> bool:
        return self._peek().kind in kinds

    def _match(self, *kinds: TokenKind) -> Token | None:
        if self._check(*kinds):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParserError(
                f"expected {kind.value!r} {context}, found {token.text!r}",
                token.location,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        program = Program(filename=self.filename)
        while not self._check(TokenKind.EOF):
            is_const = self._match(TokenKind.KW_CONST) is not None
            type_token = self._peek()
            if type_token.kind not in _TYPE_KEYWORDS:
                raise ParserError(
                    f"expected a type at top level, found {type_token.text!r}",
                    type_token.location,
                )
            self._advance()
            base_type = _TYPE_KEYWORDS[type_token.kind]
            name_token = self._expect(TokenKind.IDENT, "after type")
            if self._check(TokenKind.LPAREN) and not is_const:
                program.functions.append(
                    self._parse_function_rest(base_type, name_token)
                )
            else:
                program.globals.append(
                    self._parse_global_rest(base_type, name_token, is_const)
                )
        return program

    def _parse_function_rest(self, return_type: Type, name: Token) -> FunctionDecl:
        self._expect(TokenKind.LPAREN, "to open parameter list")
        params: list[Param] = []
        if not self._check(TokenKind.RPAREN):
            if self._check(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
                self._advance()
            else:
                params.append(self._parse_param())
                while self._match(TokenKind.COMMA):
                    params.append(self._parse_param())
        self._expect(TokenKind.RPAREN, "to close parameter list")
        body = self._parse_block()
        return FunctionDecl(
            name=str(name.value),
            return_type=return_type,
            params=params,
            body=body,
            location=name.location,
        )

    def _parse_param(self) -> Param:
        type_token = self._peek()
        if type_token.kind not in _TYPE_KEYWORDS or type_token.kind is TokenKind.KW_VOID:
            raise ParserError(
                f"expected parameter type, found {type_token.text!r}",
                type_token.location,
            )
        self._advance()
        base_type = _TYPE_KEYWORDS[type_token.kind]
        name_token = self._expect(TokenKind.IDENT, "as parameter name")
        dims: list[int] = []
        while self._match(TokenKind.LBRACKET):
            # Allow `a[]` for the first dimension of an array parameter —
            # callers pass whole arrays by reference, so an unsized first
            # dimension is recorded as size 1 placeholder replaced by the
            # argument's true shape at call time.
            if self._check(TokenKind.RBRACKET):
                dims.append(0)
            else:
                size_token = self._expect(TokenKind.INT_LITERAL, "as array dimension")
                dims.append(int(size_token.value))  # type: ignore[arg-type]
            self._expect(TokenKind.RBRACKET, "to close array dimension")
        param_type: Type | ArrayType
        if dims:
            param_type = ArrayType(base_type, tuple(d if d > 0 else 1 for d in dims))
        else:
            param_type = base_type
        return Param(str(name_token.value), param_type, name_token.location)

    def _parse_global_rest(
        self, base_type: Type, name: Token, is_const: bool
    ) -> GlobalDecl:
        dims: list[int] = []
        while self._match(TokenKind.LBRACKET):
            size_token = self._expect(TokenKind.INT_LITERAL, "as array dimension")
            dims.append(int(size_token.value))  # type: ignore[arg-type]
            self._expect(TokenKind.RBRACKET, "to close array dimension")
        decl_type: Type | ArrayType = (
            ArrayType(base_type, tuple(dims)) if dims else base_type
        )
        init_values: list[float | int] | None = None
        if self._match(TokenKind.ASSIGN):
            init_values = self._parse_initializer_list(base_type, bool(dims))
        self._expect(TokenKind.SEMICOLON, "after global declaration")
        return GlobalDecl(
            name=str(name.value),
            decl_type=decl_type,
            init_values=init_values,
            is_const=is_const,
            location=name.location,
        )

    def _parse_initializer_list(
        self, base_type: Type, is_array: bool
    ) -> list[float | int]:
        values: list[float | int] = []
        if is_array:
            self._expect(TokenKind.LBRACE, "to open initializer list")
            while not self._check(TokenKind.RBRACE):
                values.append(self._parse_constant(base_type))
                if not self._match(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RBRACE, "to close initializer list")
        else:
            values.append(self._parse_constant(base_type))
        return values

    def _parse_constant(self, base_type: Type) -> float | int:
        negative = self._match(TokenKind.MINUS) is not None
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            value: float | int = int(token.value)  # type: ignore[arg-type]
        elif token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            value = float(token.value)  # type: ignore[arg-type]
        else:
            raise ParserError(
                f"expected literal initializer, found {token.text!r}", token.location
            )
        if negative:
            value = -value
        if base_type is Type.FLOAT:
            return float(value)
        return int(value)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> BlockStmt:
        open_token = self._expect(TokenKind.LBRACE, "to open block")
        body: list[Stmt] = []
        while not self._check(TokenKind.RBRACE, TokenKind.EOF):
            body.append(self._parse_statement())
        self._expect(TokenKind.RBRACE, "to close block")
        return BlockStmt(body=body, location=open_token.location)

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.kind is TokenKind.LBRACE:
            return self._parse_block()
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if token.kind is TokenKind.KW_FOR:
            return self._parse_for()
        if token.kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if token.kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMICOLON, "after break")
            return BreakStmt(location=token.location)
        if token.kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMICOLON, "after continue")
            return ContinueStmt(location=token.location)
        if token.kind in (TokenKind.KW_INT, TokenKind.KW_FLOAT, TokenKind.KW_CONST):
            stmt = self._parse_declaration()
            self._expect(TokenKind.SEMICOLON, "after declaration")
            return stmt
        stmt = self._parse_expression_statement()
        self._expect(TokenKind.SEMICOLON, "after statement")
        return stmt

    def _parse_if(self) -> IfStmt:
        token = self._advance()
        self._expect(TokenKind.LPAREN, "after if")
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN, "to close if condition")
        then = self._parse_statement()
        otherwise: Stmt | None = None
        if self._match(TokenKind.KW_ELSE):
            otherwise = self._parse_statement()
        return IfStmt(cond=cond, then=then, otherwise=otherwise, location=token.location)

    def _parse_while(self) -> WhileStmt:
        token = self._advance()
        self._expect(TokenKind.LPAREN, "after while")
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN, "to close while condition")
        body = self._parse_statement()
        return WhileStmt(cond=cond, body=body, location=token.location)

    def _parse_do_while(self) -> DoWhileStmt:
        token = self._advance()
        body = self._parse_statement()
        self._expect(TokenKind.KW_WHILE, "after do body")
        self._expect(TokenKind.LPAREN, "after while")
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN, "to close do-while condition")
        self._expect(TokenKind.SEMICOLON, "after do-while")
        return DoWhileStmt(body=body, cond=cond, location=token.location)

    def _parse_for(self) -> ForStmt:
        token = self._advance()
        self._expect(TokenKind.LPAREN, "after for")
        init: Stmt | None = None
        if not self._check(TokenKind.SEMICOLON):
            if self._check(TokenKind.KW_INT, TokenKind.KW_FLOAT, TokenKind.KW_CONST):
                init = self._parse_declaration()
            else:
                init = self._parse_expression_statement()
        self._expect(TokenKind.SEMICOLON, "after for initializer")
        cond: Expr | None = None
        if not self._check(TokenKind.SEMICOLON):
            cond = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "after for condition")
        step: Stmt | None = None
        if not self._check(TokenKind.RPAREN):
            step = self._parse_expression_statement()
        self._expect(TokenKind.RPAREN, "to close for header")
        body = self._parse_statement()
        return ForStmt(init=init, cond=cond, step=step, body=body, location=token.location)

    def _parse_return(self) -> ReturnStmt:
        token = self._advance()
        value: Expr | None = None
        if not self._check(TokenKind.SEMICOLON):
            value = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "after return")
        return ReturnStmt(value=value, location=token.location)

    def _parse_declaration(self) -> DeclStmt:
        is_const = self._match(TokenKind.KW_CONST) is not None
        type_token = self._peek()
        if type_token.kind not in (TokenKind.KW_INT, TokenKind.KW_FLOAT):
            raise ParserError(
                f"expected 'int' or 'float', found {type_token.text!r}",
                type_token.location,
            )
        self._advance()
        base_type = _TYPE_KEYWORDS[type_token.kind]
        name_token = self._expect(TokenKind.IDENT, "as variable name")
        dims: list[int] = []
        while self._match(TokenKind.LBRACKET):
            size_token = self._expect(TokenKind.INT_LITERAL, "as array dimension")
            dims.append(int(size_token.value))  # type: ignore[arg-type]
            self._expect(TokenKind.RBRACKET, "to close array dimension")
        decl_type: Type | ArrayType = (
            ArrayType(base_type, tuple(dims)) if dims else base_type
        )
        init: Expr | None = None
        if self._match(TokenKind.ASSIGN):
            if dims:
                raise ParserError(
                    "array initializers are only supported on globals",
                    name_token.location,
                )
            init = self._parse_expression()
        return DeclStmt(
            name=str(name_token.value),
            decl_type=decl_type,
            init=init,
            is_const=is_const,
            location=name_token.location,
        )

    def _parse_expression_statement(self) -> Stmt:
        start = self._peek()
        expr = self._parse_expression()
        if self._check(*_ASSIGN_KINDS):
            op_token = self._advance()
            value = self._parse_expression()
            self._require_lvalue(expr)
            if op_token.kind is not TokenKind.ASSIGN:
                base_kind = COMPOUND_ASSIGN_BASE[op_token.kind]
                __, binop = _BINARY_PRECEDENCE[base_kind]
                value = BinaryExpr(
                    op=binop, left=expr, right=value, location=op_token.location
                )
            return AssignStmt(target=expr, value=value, location=start.location)
        if self._check(TokenKind.PLUSPLUS, TokenKind.MINUSMINUS):
            op_token = self._advance()
            self._require_lvalue(expr)
            binop = (
                BinaryOp.ADD if op_token.kind is TokenKind.PLUSPLUS else BinaryOp.SUB
            )
            one = IntLiteral(value=1, location=op_token.location)
            value = BinaryExpr(op=binop, left=expr, right=one, location=op_token.location)
            return AssignStmt(target=expr, value=value, location=start.location)
        return ExprStmt(expr=expr, location=start.location)

    def _require_lvalue(self, expr: Expr) -> None:
        if not isinstance(expr, (NameRef, ArrayRef)):
            raise ParserError("assignment target is not an lvalue", expr.location)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self) -> Expr:
        return self._parse_conditional()

    def _parse_conditional(self) -> Expr:
        cond = self._parse_binary(1)
        if self._check(TokenKind.QUESTION):
            token = self._advance()
            then = self._parse_expression()
            self._expect(TokenKind.COLON, "in conditional expression")
            otherwise = self._parse_conditional()
            return ConditionalExpr(
                cond=cond, then=then, otherwise=otherwise, location=token.location
            )
        return cond

    def _parse_binary(self, min_precedence: int) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            entry = _BINARY_PRECEDENCE.get(token.kind)
            if entry is None or entry[0] < min_precedence:
                return left
            precedence, op = entry
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = BinaryExpr(op=op, left=left, right=right, location=token.location)

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return UnaryExpr(
                op=UnaryOp.NEG, operand=self._parse_unary(), location=token.location
            )
        if token.kind is TokenKind.PLUS:
            self._advance()
            return UnaryExpr(
                op=UnaryOp.POS, operand=self._parse_unary(), location=token.location
            )
        if token.kind is TokenKind.NOT:
            self._advance()
            return UnaryExpr(
                op=UnaryOp.NOT, operand=self._parse_unary(), location=token.location
            )
        if token.kind is TokenKind.TILDE:
            self._advance()
            return UnaryExpr(
                op=UnaryOp.BNOT, operand=self._parse_unary(), location=token.location
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._check(TokenKind.LBRACKET):
            if not isinstance(expr, NameRef):
                raise ParserError("only named arrays can be indexed", expr.location)
            indices: list[Expr] = []
            while self._match(TokenKind.LBRACKET):
                indices.append(self._parse_expression())
                self._expect(TokenKind.RBRACKET, "to close array index")
            expr = ArrayRef(name=expr.name, indices=indices, location=expr.location)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return IntLiteral(value=int(token.value), location=token.location)  # type: ignore[arg-type]
        if token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            return FloatLiteral(value=float(token.value), location=token.location)  # type: ignore[arg-type]
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = str(token.value)
            if self._check(TokenKind.LPAREN):
                self._advance()
                args: list[Expr] = []
                if not self._check(TokenKind.RPAREN):
                    args.append(self._parse_expression())
                    while self._match(TokenKind.COMMA):
                        args.append(self._parse_expression())
                self._expect(TokenKind.RPAREN, "to close call")
                return CallExpr(callee=name, args=args, location=token.location)
            return NameRef(name=name, location=token.location)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            # Support C-style casts `(int) e` / `(float) e`.
            if self._check(TokenKind.KW_INT, TokenKind.KW_FLOAT):
                cast_token = self._advance()
                self._expect(TokenKind.RPAREN, "to close cast")
                operand = self._parse_unary()
                callee = "int" if cast_token.kind is TokenKind.KW_INT else "float"
                return CallExpr(callee=f"__cast_{callee}", args=[operand],
                                location=token.location)
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN, "to close parenthesized expression")
            return expr
        raise ParserError(f"unexpected token {token.text!r}", token.location)


def parse_program(source: str, filename: str = "<source>") -> Program:
    """Tokenize and parse ``source`` into a :class:`Program`."""
    return Parser(tokenize(source, filename), filename).parse_program()
