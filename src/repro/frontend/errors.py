"""Source-located diagnostics for the mini-C frontend.

The paper's toolchain used SUIF2/MachineSUIF for compilation and Lex for
analysis; our from-scratch frontend needs its own diagnostic machinery so
that malformed application sources fail with actionable messages instead of
stack traces deep inside the lowering passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A (line, column) position inside a named source buffer.

    Lines and columns are 1-based, matching what editors display.
    """

    line: int = 1
    column: int = 1
    filename: str = "<source>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for synthesized nodes with no source counterpart.
UNKNOWN_LOCATION = SourceLocation(0, 0, "<synthetic>")


class FrontendError(Exception):
    """Base class for every error raised by the mini-C frontend."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location or UNKNOWN_LOCATION
        super().__init__(f"{self.location}: {message}")


class LexerError(FrontendError):
    """Raised for malformed tokens (bad characters, unterminated comments)."""


class ParserError(FrontendError):
    """Raised when the token stream does not match the mini-C grammar."""


class SemanticError(FrontendError):
    """Raised for type errors, undeclared names and other semantic faults."""


@dataclass
class Diagnostic:
    """A non-fatal finding collected while checking a program."""

    severity: str  # "error" | "warning"
    message: str
    location: SourceLocation = UNKNOWN_LOCATION

    def __str__(self) -> str:
        return f"{self.location}: {self.severity}: {self.message}"


@dataclass
class DiagnosticBag:
    """Accumulates diagnostics so semantic analysis can report them in bulk.

    Fatal errors still raise :class:`SemanticError`; warnings (e.g. an unused
    variable) accumulate here and never abort compilation.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(self, message: str, location: SourceLocation = UNKNOWN_LOCATION) -> None:
        self.diagnostics.append(Diagnostic("error", message, location))

    def warning(self, message: str, location: SourceLocation = UNKNOWN_LOCATION) -> None:
        self.diagnostics.append(Diagnostic("warning", message, location))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def has_errors(self) -> bool:
        return bool(self.errors)

    def raise_if_errors(self) -> None:
        """Raise a :class:`SemanticError` summarizing all collected errors."""
        if not self.has_errors():
            return
        first = self.errors[0]
        summary = "; ".join(str(d) for d in self.errors)
        raise SemanticError(
            f"{len(self.errors)} semantic error(s): {summary}", first.location
        )
