"""Hand-written scanner for the mini-C language.

This plays the role of Lex in the paper's toolchain (§3.1): it turns
application source text into a token stream, tracking exact source
locations so later phases can report where analysis results came from.
"""

from __future__ import annotations

from .errors import LexerError, SourceLocation
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_TOKENS,
    Token,
    TokenKind,
)

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")
_HEX_DIGITS = _DIGITS | set("abcdefABCDEF")


class Lexer:
    """Streaming scanner over one source buffer.

    Usage::

        tokens = Lexer(source, filename="ofdm.c").tokenize()
    """

    def __init__(self, source: str, filename: str = "<source>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    # Character-level helpers
    # ------------------------------------------------------------------
    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    # ------------------------------------------------------------------
    # Trivia
    # ------------------------------------------------------------------
    def _skip_trivia(self) -> None:
        """Skip whitespace plus // line and /* block */ comments."""
        while not self._at_end():
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._at_end():
                        raise LexerError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    # ------------------------------------------------------------------
    # Token scanners
    # ------------------------------------------------------------------
    def _scan_identifier(self) -> Token:
        start = self._location()
        begin = self.pos
        while not self._at_end() and self._peek() in _IDENT_CONT:
            self._advance()
        text = self.source[begin : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        value = text if kind is TokenKind.IDENT else None
        return Token(kind, text, start, value)

    def _scan_number(self) -> Token:
        start = self._location()
        begin = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise LexerError("malformed hexadecimal literal", start)
            while self._peek() in _HEX_DIGITS:
                self._advance()
            text = self.source[begin : self.pos]
            return Token(TokenKind.INT_LITERAL, text, start, int(text, 16))

        is_float = False
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS:
            is_float = True
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1) in _DIGITS
            or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() == "f" and is_float:
            # Accept (and discard) a C float suffix.
            text = self.source[begin : self.pos]
            self._advance()
            return Token(TokenKind.FLOAT_LITERAL, text + "f", start, float(text))

        text = self.source[begin : self.pos]
        if is_float:
            return Token(TokenKind.FLOAT_LITERAL, text, start, float(text))
        return Token(TokenKind.INT_LITERAL, text, start, int(text, 10))

    def _scan_operator(self) -> Token:
        start = self._location()
        for spelling, kind in MULTI_CHAR_OPERATORS:
            if self.source.startswith(spelling, self.pos):
                self._advance(len(spelling))
                return Token(kind, spelling, start)
        char = self._peek()
        kind = SINGLE_CHAR_TOKENS.get(char)
        if kind is None:
            raise LexerError(f"unexpected character {char!r}", start)
        self._advance()
        return Token(kind, char, start)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def next_token(self) -> Token:
        """Return the next token, producing a final EOF token at the end."""
        self._skip_trivia()
        if self._at_end():
            return Token(TokenKind.EOF, "", self._location())
        char = self._peek()
        if char in _IDENT_START:
            return self._scan_identifier()
        if char in _DIGITS:
            return self._scan_number()
        if char == "." and self._peek(1) in _DIGITS:
            return self._scan_number()
        return self._scan_operator()

    def tokenize(self) -> list[Token]:
        """Scan the whole buffer and return the tokens ending with EOF."""
        tokens: list[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens


def tokenize(source: str, filename: str = "<source>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` in one call."""
    return Lexer(source, filename).tokenize()
