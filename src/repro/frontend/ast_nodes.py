"""Typed AST for the mini-C language.

Every node carries a :class:`~repro.frontend.errors.SourceLocation` so the
analysis stage (paper §3.1) can attribute weights and profiling counters
back to concrete source constructs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import SourceLocation, UNKNOWN_LOCATION


class Type(enum.Enum):
    """Scalar element types supported by the language."""

    INT = "int"
    FLOAT = "float"
    VOID = "void"

    def is_numeric(self) -> bool:
        return self in (Type.INT, Type.FLOAT)


def unify_numeric(left: Type, right: Type) -> Type:
    """Usual arithmetic conversion: float wins over int."""
    if Type.FLOAT in (left, right):
        return Type.FLOAT
    return Type.INT


@dataclass(frozen=True)
class ArrayType:
    """A fixed-size one- or two-dimensional array of a scalar element type."""

    element: Type
    dimensions: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ValueError("array type requires at least one dimension")
        if any(d <= 0 for d in self.dimensions):
            raise ValueError("array dimensions must be positive")

    @property
    def size(self) -> int:
        total = 1
        for dim in self.dimensions:
            total *= dim
        return total

    def __str__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.dimensions)
        return f"{self.element.value}{dims}"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    """Base class for expressions. ``ctype`` is filled by semantic analysis."""

    location: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)
    ctype: Type | None = field(default=None, kw_only=True)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class NameRef(Expr):
    """A reference to a scalar variable or to an array (in index position)."""

    name: str = ""


@dataclass
class ArrayRef(Expr):
    """``base[i]`` or ``base[i][j]`` — always a *flat* load target after
    semantic analysis linearizes multi-dimensional indices."""

    name: str = ""
    indices: list[Expr] = field(default_factory=list)


class BinaryOp(enum.Enum):
    """Binary operators, annotated with the hardware operator class used by
    the static analysis weight model (ALU vs MUL vs DIV)."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    SHL = "<<"
    SHR = ">>"
    AND = "&"
    OR = "|"
    XOR = "^"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    LAND = "&&"
    LOR = "||"


class UnaryOp(enum.Enum):
    NEG = "-"
    NOT = "!"
    BNOT = "~"
    POS = "+"


@dataclass
class BinaryExpr(Expr):
    op: BinaryOp = BinaryOp.ADD
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class UnaryExpr(Expr):
    op: UnaryOp = UnaryOp.NEG
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class ConditionalExpr(Expr):
    """The C ternary ``cond ? then : otherwise``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    location: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)


@dataclass
class DeclStmt(Stmt):
    """``int x = e;`` / ``float a[64];`` — one declarator per statement."""

    name: str = ""
    decl_type: Type | ArrayType = Type.INT
    init: Expr | None = None
    is_const: bool = False


@dataclass
class AssignStmt(Stmt):
    """``target = value;`` where target is a NameRef or ArrayRef."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for side effects (e.g. a call)."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass
class BlockStmt(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Stmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class ForStmt(Stmt):
    """C-style for. ``init`` may be a declaration or assignment; ``step``
    is a statement (assignment) executed after each iteration."""

    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass
class Param:
    name: str
    param_type: Type | ArrayType
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class FunctionDecl:
    name: str
    return_type: Type
    params: list[Param]
    body: BlockStmt
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class GlobalDecl:
    """A file-scope variable, optionally const with a literal initializer
    list (used for tables such as quantization matrices or twiddle factors).
    """

    name: str
    decl_type: Type | ArrayType
    init_values: list[float | int] | None = None
    is_const: bool = False
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass
class Program:
    """A translation unit: globals plus functions, in declaration order."""

    functions: list[FunctionDecl] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    filename: str = "<source>"

    def function(self, name: str) -> FunctionDecl:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    @property
    def function_names(self) -> list[str]:
        return [fn.name for fn in self.functions]


# ----------------------------------------------------------------------
# AST utilities
# ----------------------------------------------------------------------
def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, BinaryExpr):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryExpr):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ArrayRef):
        for index in expr.indices:
            yield from walk_expr(index)
    elif isinstance(expr, CallExpr):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ConditionalExpr):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.otherwise)


def walk_stmt(stmt: Stmt):
    """Yield ``stmt`` and every nested statement, pre-order."""
    yield stmt
    if isinstance(stmt, BlockStmt):
        for child in stmt.body:
            yield from walk_stmt(child)
    elif isinstance(stmt, IfStmt):
        yield from walk_stmt(stmt.then)
        if stmt.otherwise is not None:
            yield from walk_stmt(stmt.otherwise)
    elif isinstance(stmt, WhileStmt):
        yield from walk_stmt(stmt.body)
    elif isinstance(stmt, DoWhileStmt):
        yield from walk_stmt(stmt.body)
    elif isinstance(stmt, ForStmt):
        if stmt.init is not None:
            yield from walk_stmt(stmt.init)
        if stmt.step is not None:
            yield from walk_stmt(stmt.step)
        yield from walk_stmt(stmt.body)
