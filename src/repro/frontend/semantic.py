"""Semantic analysis for the mini-C language.

Checks performed:

* every name is declared before use, with no duplicate declarations in the
  same scope;
* array references have the right number of indices and scalars are never
  indexed;
* assignment targets are mutable (not ``const``);
* calls match a declared function or a known intrinsic, with correct arity;
* ``break``/``continue`` appear only inside loops;
* non-void functions return a value on the paths we can see syntactically.

Expression types are annotated in-place (``Expr.ctype``) because lowering
uses them to pick integer vs floating operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast_nodes import (
    ArrayRef,
    ArrayType,
    AssignStmt,
    BinaryExpr,
    BinaryOp,
    BlockStmt,
    BreakStmt,
    CallExpr,
    ConditionalExpr,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FunctionDecl,
    IfStmt,
    IntLiteral,
    NameRef,
    Program,
    ReturnStmt,
    Stmt,
    Type,
    UnaryExpr,
    UnaryOp,
    WhileStmt,
    unify_numeric,
)
from .errors import DiagnosticBag, SemanticError, SourceLocation

#: Intrinsic functions available without declaration.  Values are
#: ``(arity, return_type_rule)`` where the rule is either a fixed Type or
#: the string "same" (returns its argument's type).
INTRINSICS: dict[str, tuple[int, Type | str]] = {
    "abs": (1, "same"),
    "min": (2, "same"),
    "max": (2, "same"),
    "sqrt": (1, Type.FLOAT),
    "sin": (1, Type.FLOAT),
    "cos": (1, Type.FLOAT),
    "floor": (1, Type.FLOAT),
    "round": (1, Type.INT),
    "__cast_int": (1, Type.INT),
    "__cast_float": (1, Type.FLOAT),
}


@dataclass
class Symbol:
    """One declared name: scalar or array, possibly const."""

    name: str
    sym_type: Type | ArrayType
    is_const: bool = False
    is_global: bool = False
    is_param: bool = False
    location: SourceLocation = field(default_factory=SourceLocation)

    @property
    def is_array(self) -> bool:
        return isinstance(self.sym_type, ArrayType)

    @property
    def element_type(self) -> Type:
        if isinstance(self.sym_type, ArrayType):
            return self.sym_type.element
        return self.sym_type


class Scope:
    """A lexical scope in the symbol table chain."""

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self.symbols: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(
                f"duplicate declaration of {symbol.name!r}", symbol.location
            )
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


@dataclass
class FunctionSignature:
    name: str
    return_type: Type
    param_types: list[Type | ArrayType]


class SemanticAnalyzer:
    """Runs all checks over a parsed :class:`Program`."""

    def __init__(self, program: Program):
        self.program = program
        self.diagnostics = DiagnosticBag()
        self.global_scope = Scope()
        self.functions: dict[str, FunctionSignature] = {}
        self._loop_depth = 0
        self._current_function: FunctionDecl | None = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def analyze(self) -> DiagnosticBag:
        for decl in self.program.globals:
            self._check_global(decl)
        for fn in self.program.functions:
            if fn.name in self.functions:
                raise SemanticError(f"duplicate function {fn.name!r}", fn.location)
            if fn.name in INTRINSICS:
                raise SemanticError(
                    f"function {fn.name!r} shadows an intrinsic", fn.location
                )
            self.functions[fn.name] = FunctionSignature(
                fn.name, fn.return_type, [p.param_type for p in fn.params]
            )
        for fn in self.program.functions:
            self._check_function(fn)
        self.diagnostics.raise_if_errors()
        return self.diagnostics

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _check_global(self, decl) -> None:
        if isinstance(decl.decl_type, ArrayType) and decl.init_values is not None:
            if len(decl.init_values) > decl.decl_type.size:
                raise SemanticError(
                    f"initializer for {decl.name!r} has {len(decl.init_values)} "
                    f"values but the array holds {decl.decl_type.size}",
                    decl.location,
                )
        self.global_scope.declare(
            Symbol(
                decl.name,
                decl.decl_type,
                is_const=decl.is_const,
                is_global=True,
                location=decl.location,
            )
        )

    def _check_function(self, fn: FunctionDecl) -> None:
        self._current_function = fn
        scope = Scope(self.global_scope)
        for param in fn.params:
            scope.declare(
                Symbol(
                    param.name,
                    param.param_type,
                    is_param=True,
                    location=param.location,
                )
            )
        self._check_block(fn.body, Scope(scope))
        if fn.return_type is not Type.VOID and not self._returns_on_all_paths(fn.body):
            self.diagnostics.warning(
                f"function {fn.name!r} may not return a value on all paths",
                fn.location,
            )
        self._current_function = None

    def _returns_on_all_paths(self, stmt: Stmt) -> bool:
        if isinstance(stmt, ReturnStmt):
            return True
        if isinstance(stmt, BlockStmt):
            return any(self._returns_on_all_paths(child) for child in stmt.body)
        if isinstance(stmt, IfStmt):
            return (
                stmt.otherwise is not None
                and self._returns_on_all_paths(stmt.then)
                and self._returns_on_all_paths(stmt.otherwise)
            )
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _check_block(self, block: BlockStmt, scope: Scope) -> None:
        for stmt in block.body:
            self._check_statement(stmt, scope)

    def _check_statement(self, stmt: Stmt, scope: Scope) -> None:
        if isinstance(stmt, BlockStmt):
            self._check_block(stmt, Scope(scope))
        elif isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
            scope.declare(
                Symbol(
                    stmt.name,
                    stmt.decl_type,
                    is_const=stmt.is_const,
                    location=stmt.location,
                )
            )
        elif isinstance(stmt, AssignStmt):
            target_type = self._check_expr(stmt.target, scope)
            self._check_expr(stmt.value, scope)
            self._check_assignable(stmt.target, scope)
            if target_type is Type.VOID:
                self.diagnostics.error(
                    "cannot assign to a void expression", stmt.location
                )
        elif isinstance(stmt, ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, IfStmt):
            self._check_expr(stmt.cond, scope)
            self._check_statement(stmt.then, Scope(scope))
            if stmt.otherwise is not None:
                self._check_statement(stmt.otherwise, Scope(scope))
        elif isinstance(stmt, WhileStmt):
            self._check_expr(stmt.cond, scope)
            self._in_loop(stmt.body, Scope(scope))
        elif isinstance(stmt, DoWhileStmt):
            self._in_loop(stmt.body, Scope(scope))
            self._check_expr(stmt.cond, scope)
        elif isinstance(stmt, ForStmt):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_statement(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_statement(stmt.step, inner)
            self._in_loop(stmt.body, Scope(inner))
        elif isinstance(stmt, ReturnStmt):
            fn = self._current_function
            assert fn is not None
            if stmt.value is not None:
                value_type = self._check_expr(stmt.value, scope)
                if fn.return_type is Type.VOID:
                    self.diagnostics.error(
                        f"void function {fn.name!r} returns a value", stmt.location
                    )
                elif value_type is Type.VOID:
                    self.diagnostics.error(
                        "returning a void expression", stmt.location
                    )
            elif fn.return_type is not Type.VOID:
                self.diagnostics.error(
                    f"non-void function {fn.name!r} returns without a value",
                    stmt.location,
                )
        elif isinstance(stmt, (BreakStmt, ContinueStmt)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(stmt, BreakStmt) else "continue"
                self.diagnostics.error(f"{keyword} outside of a loop", stmt.location)
        else:  # pragma: no cover - exhaustive over our AST
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _in_loop(self, body: Stmt, scope: Scope) -> None:
        self._loop_depth += 1
        try:
            self._check_statement(body, scope)
        finally:
            self._loop_depth -= 1

    def _check_assignable(self, target: Expr, scope: Scope) -> None:
        name = target.name if isinstance(target, (NameRef, ArrayRef)) else None
        if name is None:
            self.diagnostics.error("assignment target is not an lvalue", target.location)
            return
        symbol = scope.lookup(name)
        if symbol is not None and symbol.is_const:
            self.diagnostics.error(
                f"cannot assign to const {name!r}", target.location
            )
        if (
            symbol is not None
            and symbol.is_array
            and isinstance(target, NameRef)
        ):
            self.diagnostics.error(
                f"cannot assign to whole array {name!r}", target.location
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _check_expr(self, expr: Expr, scope: Scope) -> Type:
        result = self._infer(expr, scope)
        expr.ctype = result
        return result

    def _infer(self, expr: Expr, scope: Scope) -> Type:
        if isinstance(expr, IntLiteral):
            return Type.INT
        if isinstance(expr, FloatLiteral):
            return Type.FLOAT
        if isinstance(expr, NameRef):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                self.diagnostics.error(
                    f"use of undeclared name {expr.name!r}", expr.location
                )
                return Type.INT
            # A bare array name is only valid as a call argument; treat its
            # type as its element type so arithmetic misuse is flagged by the
            # call/arity checks rather than cascading failures here.
            return symbol.element_type
        if isinstance(expr, ArrayRef):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                self.diagnostics.error(
                    f"use of undeclared array {expr.name!r}", expr.location
                )
                return Type.INT
            if not symbol.is_array:
                self.diagnostics.error(
                    f"{expr.name!r} is scalar and cannot be indexed", expr.location
                )
                return symbol.element_type
            assert isinstance(symbol.sym_type, ArrayType)
            if len(expr.indices) != len(symbol.sym_type.dimensions):
                self.diagnostics.error(
                    f"array {expr.name!r} expects "
                    f"{len(symbol.sym_type.dimensions)} indices, got "
                    f"{len(expr.indices)}",
                    expr.location,
                )
            for index in expr.indices:
                index_type = self._check_expr(index, scope)
                if index_type is Type.FLOAT:
                    self.diagnostics.error(
                        "array index must be an integer", index.location
                    )
            return symbol.element_type
        if isinstance(expr, UnaryExpr):
            operand_type = self._check_expr(expr.operand, scope)
            if expr.op in (UnaryOp.NOT, UnaryOp.BNOT) and operand_type is Type.FLOAT:
                if expr.op is UnaryOp.BNOT:
                    self.diagnostics.error(
                        "bitwise complement requires an integer operand",
                        expr.location,
                    )
                return Type.INT
            if expr.op is UnaryOp.NOT:
                return Type.INT
            return operand_type
        if isinstance(expr, BinaryExpr):
            left = self._check_expr(expr.left, scope)
            right = self._check_expr(expr.right, scope)
            integer_only = {
                BinaryOp.MOD,
                BinaryOp.SHL,
                BinaryOp.SHR,
                BinaryOp.AND,
                BinaryOp.OR,
                BinaryOp.XOR,
            }
            if expr.op in integer_only and Type.FLOAT in (left, right):
                self.diagnostics.error(
                    f"operator {expr.op.value!r} requires integer operands",
                    expr.location,
                )
                return Type.INT
            comparisons = {
                BinaryOp.LT,
                BinaryOp.GT,
                BinaryOp.LE,
                BinaryOp.GE,
                BinaryOp.EQ,
                BinaryOp.NE,
                BinaryOp.LAND,
                BinaryOp.LOR,
            }
            if expr.op in comparisons:
                return Type.INT
            return unify_numeric(left, right)
        if isinstance(expr, ConditionalExpr):
            self._check_expr(expr.cond, scope)
            then_type = self._check_expr(expr.then, scope)
            else_type = self._check_expr(expr.otherwise, scope)
            return unify_numeric(then_type, else_type)
        if isinstance(expr, CallExpr):
            return self._check_call(expr, scope)
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def _check_call(self, expr: CallExpr, scope: Scope) -> Type:
        arg_types = [self._check_expr(arg, scope) for arg in expr.args]
        intrinsic = INTRINSICS.get(expr.callee)
        if intrinsic is not None:
            arity, rule = intrinsic
            if len(expr.args) != arity:
                self.diagnostics.error(
                    f"intrinsic {expr.callee!r} expects {arity} argument(s), "
                    f"got {len(expr.args)}",
                    expr.location,
                )
            if rule == "same":
                return arg_types[0] if arg_types else Type.INT
            assert isinstance(rule, Type)
            return rule
        signature = self.functions.get(expr.callee)
        if signature is None:
            self.diagnostics.error(
                f"call to undeclared function {expr.callee!r}", expr.location
            )
            return Type.INT
        if len(expr.args) != len(signature.param_types):
            self.diagnostics.error(
                f"function {expr.callee!r} expects "
                f"{len(signature.param_types)} argument(s), got {len(expr.args)}",
                expr.location,
            )
        for arg, param_type in zip(
            expr.args, signature.param_types, strict=False
        ):
            if isinstance(param_type, ArrayType):
                if not isinstance(arg, NameRef):
                    self.diagnostics.error(
                        "array parameters accept only whole arrays", arg.location
                    )
                else:
                    symbol = scope.lookup(arg.name)
                    if symbol is not None and not symbol.is_array:
                        self.diagnostics.error(
                            f"passing scalar {arg.name!r} where an array is "
                            "expected",
                            arg.location,
                        )
        return signature.return_type


def analyze_program(program: Program) -> DiagnosticBag:
    """Run semantic analysis, raising :class:`SemanticError` on failure."""
    return SemanticAnalyzer(program).analyze()
