"""Token definitions for the mini-C language accepted by the frontend.

The language is the C subset the paper's applications need: scalar and array
``int``/``float`` variables, arithmetic and bitwise expressions, ``for`` /
``while`` / ``do-while`` loops, ``if``/``else`` conditionals, and functions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Every terminal the lexer can produce."""

    # Literals and identifiers
    IDENT = "identifier"
    INT_LITERAL = "int literal"
    FLOAT_LITERAL = "float literal"

    # Keywords
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_CONST = "const"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"

    # Operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    SHL = "<<"
    SHR = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    NOT = "!"
    ANDAND = "&&"
    OROR = "||"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    PLUSPLUS = "++"
    MINUSMINUS = "--"
    QUESTION = "?"
    COLON = ":"

    EOF = "<eof>"


#: Reserved words mapped to their keyword token kinds.
KEYWORDS: dict[str, TokenKind] = {
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "const": TokenKind.KW_CONST,
}

#: Multi-character operators ordered longest-first so the lexer can use
#: maximal munch by simple linear probing.
MULTI_CHAR_OPERATORS: list[tuple[str, TokenKind]] = [
    ("<<=", TokenKind.SHL_ASSIGN),
    (">>=", TokenKind.SHR_ASSIGN),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.ANDAND),
    ("||", TokenKind.OROR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("++", TokenKind.PLUSPLUS),
    ("--", TokenKind.MINUSMINUS),
]

#: Single-character operators / punctuation.
SINGLE_CHAR_TOKENS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
    "=": TokenKind.ASSIGN,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
}

#: Compound-assignment token -> underlying binary operator token.
COMPOUND_ASSIGN_BASE: dict[TokenKind, TokenKind] = {
    TokenKind.PLUS_ASSIGN: TokenKind.PLUS,
    TokenKind.MINUS_ASSIGN: TokenKind.MINUS,
    TokenKind.STAR_ASSIGN: TokenKind.STAR,
    TokenKind.SLASH_ASSIGN: TokenKind.SLASH,
    TokenKind.PERCENT_ASSIGN: TokenKind.PERCENT,
    TokenKind.SHL_ASSIGN: TokenKind.SHL,
    TokenKind.SHR_ASSIGN: TokenKind.SHR,
    TokenKind.AMP_ASSIGN: TokenKind.AMP,
    TokenKind.PIPE_ASSIGN: TokenKind.PIPE,
    TokenKind.CARET_ASSIGN: TokenKind.CARET,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position.

    ``value`` carries the decoded payload: the identifier string, the
    ``int``/``float`` literal value, or the operator spelling.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: object = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"

    def is_kind(self, *kinds: TokenKind) -> bool:
        return self.kind in kinds
