"""Static analysis within basic blocks (paper §3.1).

The Lex-based static pass of the paper "identifies the basic operations and
the memory accesses inside the basic blocks and generates a detailed and
illustrative overview of the distribution of the algorithm complexity over
basic operators".  This module produces exactly that: per-block operator
histograms, weights and memory-access counts over a CDFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.basicblock import BasicBlock
from ..ir.cdfg import CDFG
from ..ir.operations import OpClass
from .weights import WeightModel


@dataclass(frozen=True)
class BlockStaticInfo:
    """Static facts about one basic block."""

    bb_id: int
    function: str
    label: str
    bb_weight: int
    alu_ops: int
    mul_ops: int
    div_ops: int
    memory_accesses: int
    move_ops: int
    call_ops: int
    #: ``len(block.instructions)`` including the terminator — the same
    #: count the block compiler bakes into its slots, so static totals
    #: can be checked against ``profiles_from_frequencies`` inputs.
    instruction_count: int = 0

    @property
    def compute_ops(self) -> int:
        return self.alu_ops + self.mul_ops + self.div_ops


@dataclass
class StaticAnalysisResult:
    """Per-block static info plus program-level distributions."""

    blocks: dict[int, BlockStaticInfo] = field(default_factory=dict)

    def weight_of(self, bb_id: int) -> int:
        return self.blocks[bb_id].bb_weight

    def operator_distribution(self) -> dict[str, int]:
        """Program-wide complexity distribution over operator classes —
        the "illustrative overview" output of the paper's static pass."""
        totals = {"alu": 0, "mul": 0, "div": 0, "mem": 0, "move": 0, "call": 0}
        for info in self.blocks.values():
            totals["alu"] += info.alu_ops
            totals["mul"] += info.mul_ops
            totals["div"] += info.div_ops
            totals["mem"] += info.memory_accesses
            totals["move"] += info.move_ops
            totals["call"] += info.call_ops
        return totals

    def heaviest_blocks(self, count: int = 8) -> list[BlockStaticInfo]:
        ordered = sorted(
            self.blocks.values(), key=lambda b: (-b.bb_weight, b.bb_id)
        )
        return ordered[:count]

    def total_instructions(self) -> int:
        """Program-wide instruction count, terminators included."""
        return sum(info.instruction_count for info in self.blocks.values())

    def total_memory_accesses(self) -> int:
        return sum(info.memory_accesses for info in self.blocks.values())


def analyze_block(
    block: BasicBlock,
    weight_model: WeightModel,
    function: str = "",
) -> BlockStaticInfo:
    """Static info for one block (works for real and synthetic blocks)."""
    histogram = block.count_op_classes()
    return BlockStaticInfo(
        bb_id=block.bb_id,
        function=function,
        label=block.label,
        bb_weight=weight_model.block_weight(block),
        alu_ops=histogram.get(OpClass.ALU, 0),
        mul_ops=histogram.get(OpClass.MUL, 0),
        div_ops=histogram.get(OpClass.DIV, 0),
        memory_accesses=histogram.get(OpClass.MEM, 0),
        move_ops=histogram.get(OpClass.MOVE, 0),
        call_ops=histogram.get(OpClass.CALL, 0),
        instruction_count=len(block.instructions),
    )


def analyze_cdfg(
    cdfg: CDFG, weight_model: WeightModel | None = None
) -> StaticAnalysisResult:
    """Run static analysis over every block of a CDFG."""
    model = weight_model or WeightModel()
    result = StaticAnalysisResult()
    for key in cdfg.all_block_keys():
        block = cdfg.block(key)
        result.blocks[block.bb_id] = analyze_block(block, model, key.function)
    return result
