"""Analysis stage (paper §3.1): weights, static & dynamic analysis, kernels."""

from .dynamic_analysis import (
    DynamicProfile,
    TraceProfile,
    profile_cdfg,
    profile_cdfg_many,
)
from .kernels import (
    AnalysisResult,
    KernelInfo,
    extract_kernels,
    kernels_from_records,
)
from .static_analysis import (
    BlockStaticInfo,
    StaticAnalysisResult,
    analyze_block,
    analyze_cdfg,
)
from .weights import PAPER_WEIGHT_MODEL, WeightModel, total_weight

__all__ = [
    "AnalysisResult",
    "BlockStaticInfo",
    "DynamicProfile",
    "KernelInfo",
    "PAPER_WEIGHT_MODEL",
    "StaticAnalysisResult",
    "TraceProfile",
    "WeightModel",
    "analyze_block",
    "analyze_cdfg",
    "extract_kernels",
    "kernels_from_records",
    "profile_cdfg",
    "profile_cdfg_many",
    "total_weight",
]
