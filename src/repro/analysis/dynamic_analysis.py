"""Dynamic analysis: per-block execution frequencies (paper §3.1).

"For the dynamic analysis, the source code is executed with appropriate
input and profiling information is gathered at the basic block level."
Two backends are provided:

* :func:`profile_cdfg` — interpret the program on representative inputs
  (the exact equivalent of the paper's Lex counter instrumentation);
* :class:`TraceProfile` — adopt externally supplied frequencies, which is
  how the calibrated Table 1 workloads inject the paper's measured counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interp.cache import ProfileCache
from ..interp.interpreter import Interpreter
from ..interp.profiler import BlockProfiler
from ..ir.cdfg import CDFG


@dataclass
class DynamicProfile:
    """Execution frequencies per program-wide basic-block id."""

    frequencies: dict[int, int] = field(default_factory=dict)
    runs: int = 0

    def exec_freq(self, bb_id: int) -> int:
        return self.frequencies.get(bb_id, 0)

    def merge(self, other: "DynamicProfile") -> None:
        """Accumulate another profile (multiple representative inputs)."""
        for bb_id, freq in other.frequencies.items():
            self.frequencies[bb_id] = self.frequencies.get(bb_id, 0) + freq
        self.runs += other.runs

    def hottest(self, count: int = 8) -> list[tuple[int, int]]:
        ordered = sorted(
            self.frequencies.items(), key=lambda item: (-item[1], item[0])
        )
        return ordered[:count]


def profile_cdfg(
    cdfg: CDFG,
    entry: str,
    *args: object,
    cache: ProfileCache | None = None,
    mode: str = "auto",
) -> DynamicProfile:
    """Run ``entry`` on one representative input under profiling.

    ``mode`` selects the interpreter engine (``"auto"`` uses the
    block-compiled counter-only fast path).  Passing a
    :class:`~repro.interp.cache.ProfileCache` memoizes the run
    content-keyed on (CDFG fingerprint, entry, args); cached execution
    is always counter-only compiled, so combining a cache with
    ``mode="walker"`` is rejected rather than silently ignored.
    """
    if cache is not None:
        if mode not in ("auto", "compiled"):
            raise ValueError(
                "a ProfileCache always executes in compiled mode; "
                f"mode={mode!r} cannot be honored — drop the cache to "
                "profile under the walker"
            )
        return cache.profile(cdfg, entry, *args)
    profiler = BlockProfiler()
    Interpreter(cdfg, profiler, mode=mode).run(entry, *args)
    return DynamicProfile(frequencies=profiler.frequencies(), runs=1)


def profile_cdfg_many(
    cdfg: CDFG,
    entry: str,
    input_sets: list[tuple],
    *,
    cache: ProfileCache | None = None,
    mode: str = "auto",
) -> DynamicProfile:
    """Accumulate frequencies across several representative inputs."""
    if cache is not None:
        if mode not in ("auto", "compiled"):
            raise ValueError(
                "a ProfileCache always executes in compiled mode; "
                f"mode={mode!r} cannot be honored — drop the cache to "
                "profile under the walker"
            )
        # One CDFG fingerprint for the whole batch.
        return cache.profile_many(cdfg, entry, input_sets)
    combined = DynamicProfile()
    for args in input_sets:
        combined.merge(profile_cdfg(cdfg, entry, *args, mode=mode))
    return combined


@dataclass
class TraceProfile:
    """A dynamic profile supplied from outside (measured traces).

    Used by the calibrated workloads, whose execution frequencies come
    verbatim from the paper's Table 1.
    """

    frequencies: dict[int, int]

    def as_profile(self) -> DynamicProfile:
        return DynamicProfile(frequencies=dict(self.frequencies), runs=1)
