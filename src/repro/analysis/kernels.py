"""Kernel extraction and ordering (paper §3.1).

"The critical part is the set of kernels, which are the basic blocks
inside loops that cause performance overheads...  After all critical basic
blocks have been identified, an ordering of these critical basic blocks
takes place: kernels are sorted in descending order of computational
complexity" — i.e. by Eq. 1's ``total_weight = exec_freq × bb_weight``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cdfg import CDFG
from ..ir.loops import LoopForest
from .dynamic_analysis import DynamicProfile
from .static_analysis import StaticAnalysisResult, analyze_cdfg
from .weights import WeightModel, total_weight


@dataclass(frozen=True)
class KernelInfo:
    """One kernel candidate, ordered by total weight."""

    bb_id: int
    exec_freq: int
    bb_weight: int
    total_weight: int
    function: str = ""
    label: str = ""
    loop_depth: int = 0

    def table_row(self) -> tuple[int, int, int, int]:
        """The (BB no., exec freq, ops weight, total weight) row of
        the paper's Table 1."""
        return (self.bb_id, self.exec_freq, self.bb_weight, self.total_weight)


@dataclass
class AnalysisResult:
    """Combined outcome of the analysis step (§3.1)."""

    kernels: list[KernelInfo] = field(default_factory=list)
    non_critical: list[KernelInfo] = field(default_factory=list)
    static: StaticAnalysisResult | None = None
    profile: DynamicProfile | None = None

    def kernel_order(self) -> list[int]:
        """BB ids in the order the partitioning engine will move them."""
        return [kernel.bb_id for kernel in self.kernels]

    def top_table(self, count: int = 8) -> list[KernelInfo]:
        """The paper's Table 1: the ``count`` heaviest kernels."""
        return self.kernels[:count]

    def kernel(self, bb_id: int) -> KernelInfo:
        for kernel in self.kernels:
            if kernel.bb_id == bb_id:
                return kernel
        raise KeyError(f"BB {bb_id} is not a kernel")


def _loop_depths(cdfg: CDFG) -> dict[int, int]:
    depths: dict[int, int] = {}
    for function_name, cfg in cdfg.cfgs.items():
        forest = LoopForest(cfg)
        for block in cfg:
            depths[block.bb_id] = forest.loop_depth(block.label)
    return depths


def extract_kernels(
    cdfg: CDFG,
    profile: DynamicProfile,
    weight_model: WeightModel | None = None,
    require_loop: bool = True,
) -> AnalysisResult:
    """Full analysis step over a real CDFG.

    Kernel candidates are executed blocks located inside loops with a
    non-zero weight; everything else is non-critical and stays on the
    fine-grain fabric.  Set ``require_loop=False`` to consider every
    executed block (useful for synthetic workloads without loop shape).
    """
    model = weight_model or WeightModel()
    static = analyze_cdfg(cdfg, model)
    depths = _loop_depths(cdfg)

    kernels: list[KernelInfo] = []
    non_critical: list[KernelInfo] = []
    for bb_id, info in static.blocks.items():
        freq = profile.exec_freq(bb_id)
        weight = info.bb_weight
        entry = KernelInfo(
            bb_id=bb_id,
            exec_freq=freq,
            bb_weight=weight,
            total_weight=total_weight(freq, weight),
            function=info.function,
            label=info.label,
            loop_depth=depths.get(bb_id, 0),
        )
        in_loop = entry.loop_depth > 0
        is_candidate = (
            freq > 0 and weight > 0 and (in_loop or not require_loop)
        )
        if is_candidate:
            kernels.append(entry)
        else:
            non_critical.append(entry)

    kernels.sort(key=lambda k: (-k.total_weight, k.bb_id))
    non_critical.sort(key=lambda k: (-k.total_weight, k.bb_id))
    return AnalysisResult(
        kernels=kernels,
        non_critical=non_critical,
        static=static,
        profile=profile,
    )


def kernels_from_records(
    records: list[tuple[int, int, int]],
) -> AnalysisResult:
    """Build an ordered kernel list from (bb_id, exec_freq, bb_weight)
    records — the entry point used by the calibrated Table 1 workloads."""
    kernels = [
        KernelInfo(
            bb_id=bb_id,
            exec_freq=freq,
            bb_weight=weight,
            total_weight=total_weight(freq, weight),
        )
        for bb_id, freq, weight in records
    ]
    kernels.sort(key=lambda k: (-k.total_weight, k.bb_id))
    return AnalysisResult(kernels=kernels)
