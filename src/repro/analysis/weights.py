"""Operation weight model for static analysis (paper §3.1 / Eq. 1).

"Since operations in a basic block do not have a uniform cost, a weighted
sum is calculated and aggregated at the basic block level...  The weights
indicate the delay allocated to each basic operator."  The experiments use
weight 1 for ALU operations and weight 2 for multiplications (§4).

Memory accesses are *counted* by the analysis but carry weight 0 by
default: the paper's per-block operation weights (e.g. weight 3 for JPEG's
most-executed block, which necessarily also loads/stores pixels) are only
consistent with compute-op weighting.  The weight is configurable for
sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.basicblock import BasicBlock
from ..ir.dfg import DataFlowGraph
from ..ir.operations import OpClass


@dataclass(frozen=True)
class WeightModel:
    """Per-operator-class weights used by Eq. 1."""

    class_weights: dict[OpClass, int] = field(
        default_factory=lambda: {
            OpClass.ALU: 1,
            OpClass.MUL: 2,
            OpClass.DIV: 4,
            OpClass.MEM: 0,
            OpClass.MOVE: 0,
            OpClass.CALL: 0,
            OpClass.CONTROL: 0,
        }
    )

    def __post_init__(self) -> None:
        missing = [c for c in OpClass if c not in self.class_weights]
        if missing:
            raise ValueError(f"weight model missing op classes: {missing}")
        if any(w < 0 for w in self.class_weights.values()):
            raise ValueError("weights cannot be negative")

    def weight_of_class(self, op_class: OpClass) -> int:
        return self.class_weights[op_class]

    def block_weight(self, block: BasicBlock) -> int:
        """The paper's ``bb_weight``: weighted op count of one block."""
        total = 0
        for op_class, count in block.count_op_classes().items():
            total += self.class_weights[op_class] * count
        return total

    def dfg_weight(self, dfg: DataFlowGraph) -> int:
        """Weight computed from a DFG (identical to the block's weight)."""
        total = 0
        for op_class, count in dfg.op_class_histogram().items():
            total += self.class_weights[op_class] * count
        return total


#: The exact weight assignment of the paper's experiments.
PAPER_WEIGHT_MODEL = WeightModel()


def total_weight(exec_freq: int, bb_weight: int) -> int:
    """Eq. 1: ``total_weight = exec_freq × bb_weight``."""
    if exec_freq < 0:
        raise ValueError("execution frequency cannot be negative")
    return exec_freq * bb_weight
