"""The named end-to-end scenario registry.

A :class:`Scenario` pins one complete experiment — a workload, a
platform, a relative timing constraint and a partitioning algorithm —
under a stable name, so a result recorded today is comparable with the
same scenario re-run against any future version of the code.  The
default suite spans the paper's applications (OFDM, JPEG), the two
kernel-rich communications/audio workloads added alongside it
(FIR/IIR filter bank, Viterbi trellis decoder), and the synthetic
families across their skew / communication-intensity / size axes, with
the heuristic algorithms represented next to the paper's greedy loop.

Scenario names are the primary key of the persistent result store:
renaming one orphans its history, so add new names rather than repurpose
old ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..explore.space import PlatformSpec, WorkloadSpec
from ..search.base import AlgorithmSpec


@dataclass(frozen=True)
class Scenario:
    """One named, fully pinned experiment."""

    name: str
    workload: WorkloadSpec
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    constraint_fraction: float = 0.5
    algorithm: AlgorithmSpec = field(default_factory=AlgorithmSpec.greedy)
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.constraint_fraction <= 0.0:
            raise ValueError("constraint_fraction must be positive")

    def describe(self) -> str:
        return (
            f"{self.workload.label} on {self.platform.label} @ "
            f"{self.constraint_fraction:g}·initial via {self.algorithm.label}"
        )


#: name -> Scenario; populated below, ordered by registration.
SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the global registry (names are unique)."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"duplicate scenario name {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> list[str]:
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        ) from None


def select_scenarios(
    names: list[str] | None = None, tag: str | None = None
) -> list[Scenario]:
    """The scenarios to run: all by default, else by name list / tag."""
    if names:
        chosen = [get_scenario(name) for name in names]
    else:
        chosen = list(SCENARIOS.values())
    if tag is not None:
        chosen = [s for s in chosen if tag in s.tags]
    return chosen


def default_suite() -> list[Scenario]:
    """Every registered scenario, in registration order."""
    return list(SCENARIOS.values())


# ----------------------------------------------------------------------
# The default suite
# ----------------------------------------------------------------------
# Paper applications (§4 platform, the Table 2/3 A=1500 column).
register_scenario(
    Scenario(
        name="ofdm-greedy",
        workload=WorkloadSpec.ofdm(),
        constraint_fraction=0.5,
        tags=("paper", "ofdm"),
    )
)
register_scenario(
    Scenario(
        name="ofdm-tight-annealing",
        workload=WorkloadSpec.ofdm(),
        constraint_fraction=0.25,
        algorithm=AlgorithmSpec.annealing(seed=11),
        tags=("paper", "ofdm", "heuristic"),
    )
)
register_scenario(
    Scenario(
        name="jpeg-greedy",
        workload=WorkloadSpec.jpeg(),
        constraint_fraction=0.6,
        tags=("paper", "jpeg"),
    )
)
register_scenario(
    Scenario(
        name="jpeg-multistart",
        workload=WorkloadSpec.jpeg(),
        constraint_fraction=0.6,
        algorithm=AlgorithmSpec.multi_start(restarts=6, seed=5),
        tags=("paper", "jpeg", "heuristic"),
    )
)

# New kernel-rich workloads.
register_scenario(
    Scenario(
        name="filterbank-greedy",
        workload=WorkloadSpec.filterbank(),
        constraint_fraction=0.55,
        tags=("new-workload", "filterbank"),
    )
)
register_scenario(
    Scenario(
        name="filterbank-wide-multistart",
        workload=WorkloadSpec.filterbank(channels=12, taps=24),
        constraint_fraction=0.5,
        algorithm=AlgorithmSpec.multi_start(restarts=6, seed=3),
        tags=("new-workload", "filterbank", "heuristic"),
    )
)
register_scenario(
    Scenario(
        name="viterbi-greedy",
        workload=WorkloadSpec.viterbi(),
        constraint_fraction=0.5,
        tags=("new-workload", "viterbi"),
    )
)
register_scenario(
    Scenario(
        name="viterbi-deep-annealing",
        workload=WorkloadSpec.viterbi(states=32, stages=96),
        constraint_fraction=0.45,
        algorithm=AlgorithmSpec.annealing(seed=7),
        tags=("new-workload", "viterbi", "heuristic"),
    )
)

# Synthetic family — weight-skew axis.
register_scenario(
    Scenario(
        name="synth-skewed",
        workload=WorkloadSpec.synthetic(32, seed=1, weight_skew=3.0),
        constraint_fraction=0.6,
        tags=("synthetic", "skew"),
    )
)
register_scenario(
    Scenario(
        name="synth-flat",
        workload=WorkloadSpec.synthetic(32, seed=1, weight_skew=1.0),
        constraint_fraction=0.6,
        tags=("synthetic", "skew"),
    )
)

# Synthetic family — communication-intensity axis.
register_scenario(
    Scenario(
        name="synth-comm-light",
        workload=WorkloadSpec.synthetic(24, seed=2, comm_intensity=0.1),
        constraint_fraction=0.5,
        tags=("synthetic", "comm"),
    )
)
register_scenario(
    Scenario(
        name="synth-comm-heavy",
        workload=WorkloadSpec.synthetic(24, seed=2, comm_intensity=1.5),
        constraint_fraction=0.5,
        tags=("synthetic", "comm"),
    )
)

# Synthetic family — size axis.
register_scenario(
    Scenario(
        name="synth-small",
        workload=WorkloadSpec.synthetic(12, seed=4),
        constraint_fraction=0.5,
        tags=("synthetic", "size"),
    )
)
register_scenario(
    Scenario(
        name="synth-large",
        workload=WorkloadSpec.synthetic(96, seed=4),
        constraint_fraction=0.5,
        tags=("synthetic", "size"),
    )
)
register_scenario(
    Scenario(
        name="synth-large-annealing",
        workload=WorkloadSpec.synthetic(96, seed=4),
        constraint_fraction=0.5,
        algorithm=AlgorithmSpec.annealing(seed=13),
        tags=("synthetic", "size", "heuristic"),
    )
)

# Exact search — certified optima (results are bit-identical to the
# serial unpruned enumeration by construction, so these scenarios gate
# the exact-search machinery itself in the regression suite).
register_scenario(
    Scenario(
        name="exact-sharded-16k",
        # 16 supported kernels -> the full 65,536-subset Gray walk,
        # sharded into four worker segments.
        workload=WorkloadSpec.synthetic(
            20, seed=5, kernel_fraction=0.8, comm_intensity=0.5
        ),
        constraint_fraction=0.5,
        algorithm=AlgorithmSpec.exhaustive(shards=4),
        tags=("synthetic", "exact", "sharded"),
    )
)
register_scenario(
    Scenario(
        name="exact-bnb-certify-34",
        # 34 supported kernels (a 2^34 mask space) certified by the
        # additive-bound branch-and-bound in a few thousand visits.
        workload=WorkloadSpec.synthetic(40, seed=9, kernel_fraction=0.85),
        constraint_fraction=0.5,
        algorithm=AlgorithmSpec.exhaustive(prune=True),
        tags=("synthetic", "exact", "bnb"),
    )
)
register_scenario(
    Scenario(
        name="exact-bnb-sharded-filterbank",
        # Both modes composed on a real kernel-rich workload.
        workload=WorkloadSpec.filterbank(),
        constraint_fraction=0.55,
        algorithm=AlgorithmSpec.exhaustive(shards=2, prune=True),
        tags=("new-workload", "filterbank", "exact", "sharded", "bnb"),
    )
)
