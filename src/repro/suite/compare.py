"""Run-against-baseline comparison and regression gating.

Diffs a candidate :class:`~repro.suite.store.SuiteRun` against a
baseline run scenario-by-scenario and classifies each pair under
configurable :class:`RegressionThresholds`.  Cycle counts are
deterministic, so any growth beyond the threshold is a genuine
algorithmic regression; wall times are machine-dependent, so wall
gating is opt-in and guarded by an absolute noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .store import ScenarioResult, SuiteRun

#: Delta classifications, roughly worst-first.
STATUS_REGRESSED = "regressed"
STATUS_REMOVED = "removed"
STATUS_ADDED = "added"
STATUS_IMPROVED = "improved"
STATUS_OK = "ok"


@dataclass(frozen=True)
class RegressionThresholds:
    """What counts as a regression.

    ``cycle_percent`` gates the deterministic total-cycle metric.
    ``wall_percent`` (None = wall gating off) gates wall time, but only
    when the candidate also exceeds ``min_wall_seconds`` — sub-floor
    scenarios finish too fast for a percentage to mean anything.
    ``throughput_percent`` (None = off) gates evaluation throughput: a
    ``configs_per_second`` *drop* beyond the threshold fails, exactly
    like a cycle growth would, so a change that silently slows the
    search substrate gates next to one that worsens its answers.  Both
    sides must have recorded a throughput (pre-v2 baselines carry 0.0)
    and the baseline must clear ``min_configs_per_second``, the
    throughput noise floor.  Machine-dependent metrics (wall,
    throughput) are opt-in; compare runs from the same machine.
    A scenario present in the baseline but missing from the candidate
    always gates (history must not silently disappear).
    """

    cycle_percent: float = 20.0
    wall_percent: float | None = None
    min_wall_seconds: float = 0.25
    throughput_percent: float | None = None
    min_configs_per_second: float = 1000.0

    def __post_init__(self) -> None:
        if self.cycle_percent < 0.0:
            raise ValueError("cycle_percent must be >= 0")
        if self.wall_percent is not None and self.wall_percent < 0.0:
            raise ValueError("wall_percent must be >= 0 (or None)")
        if self.min_wall_seconds < 0.0:
            raise ValueError("min_wall_seconds must be >= 0")
        if self.throughput_percent is not None and (
            self.throughput_percent < 0.0
        ):
            raise ValueError("throughput_percent must be >= 0 (or None)")
        if self.min_configs_per_second < 0.0:
            raise ValueError("min_configs_per_second must be >= 0")


@dataclass(frozen=True)
class ScenarioDelta:
    """One scenario's baseline-vs-candidate comparison."""

    scenario: str
    baseline: ScenarioResult | None
    candidate: ScenarioResult | None
    status: str
    #: 100·(candidate−baseline)/baseline; None when either side is absent.
    cycle_delta_percent: float | None = None
    wall_delta_percent: float | None = None
    throughput_delta_percent: float | None = None
    #: Human-readable reasons this delta gates (empty when it does not).
    reasons: tuple[str, ...] = ()

    @property
    def is_regression(self) -> bool:
        return bool(self.reasons)


@dataclass
class SuiteComparison:
    """A full candidate-vs-baseline diff."""

    baseline: SuiteRun
    candidate: SuiteRun
    thresholds: RegressionThresholds
    deltas: list[ScenarioDelta] = field(default_factory=list)

    def regressions(self) -> list[ScenarioDelta]:
        return [delta for delta in self.deltas if delta.is_regression]

    @property
    def has_regressions(self) -> bool:
        return any(delta.is_regression for delta in self.deltas)

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for delta in self.deltas:
            counts[delta.status] = counts.get(delta.status, 0) + 1
        parts = [
            f"{count} {status}"
            for status, count in sorted(counts.items())
        ]
        verdict = (
            f"{len(self.regressions())} regression(s)"
            if self.has_regressions
            else "no regressions"
        )
        return (
            f"compared {len(self.deltas)} scenario(s) "
            f"[{', '.join(parts)}]: {verdict} "
            f"(baseline {self.baseline.fingerprint} vs "
            f"candidate {self.candidate.fingerprint})"
        )


def _percent_delta(baseline: float, candidate: float) -> float | None:
    if baseline == 0:
        return None
    return 100.0 * (candidate - baseline) / baseline


def compare_runs(
    baseline: SuiteRun,
    candidate: SuiteRun,
    thresholds: RegressionThresholds | None = None,
) -> SuiteComparison:
    """Diff ``candidate`` against ``baseline`` under the thresholds."""
    thresholds = thresholds or RegressionThresholds()
    comparison = SuiteComparison(
        baseline=baseline, candidate=candidate, thresholds=thresholds
    )
    names: dict[str, None] = {}
    for result in baseline.results:
        names.setdefault(result.scenario)
    for result in candidate.results:
        names.setdefault(result.scenario)

    for name in names:
        base = baseline.result_for(name)
        cand = candidate.result_for(name)
        if base is None:
            comparison.deltas.append(
                ScenarioDelta(
                    scenario=name,
                    baseline=None,
                    candidate=cand,
                    status=STATUS_ADDED,
                )
            )
            continue
        if cand is None:
            comparison.deltas.append(
                ScenarioDelta(
                    scenario=name,
                    baseline=base,
                    candidate=None,
                    status=STATUS_REMOVED,
                    reasons=("scenario missing from candidate run",),
                )
            )
            continue

        cycle_delta = _percent_delta(base.total_cycles, cand.total_cycles)
        wall_delta = _percent_delta(
            base.wall_time_seconds, cand.wall_time_seconds
        )
        throughput_delta = _percent_delta(
            base.configs_per_second, cand.configs_per_second
        )
        reasons: list[str] = []
        if (
            cycle_delta is not None
            and cycle_delta > thresholds.cycle_percent
        ):
            reasons.append(
                f"total_cycles +{cycle_delta:.1f}% "
                f"({base.total_cycles} -> {cand.total_cycles}, "
                f"threshold {thresholds.cycle_percent:g}%)"
            )
        if base.constraint_met and not cand.constraint_met:
            reasons.append("timing constraint met in baseline, missed now")
        if (
            thresholds.wall_percent is not None
            and wall_delta is not None
            and cand.wall_time_seconds >= thresholds.min_wall_seconds
            and wall_delta > thresholds.wall_percent
        ):
            reasons.append(
                f"wall_time +{wall_delta:.0f}% "
                f"({base.wall_time_seconds:.3f}s -> "
                f"{cand.wall_time_seconds:.3f}s, "
                f"threshold {thresholds.wall_percent:g}%)"
            )
        if (
            thresholds.throughput_percent is not None
            and throughput_delta is not None
            and base.configs_per_second >= thresholds.min_configs_per_second
            # A candidate recorded before schema v2 carries 0.0 — that
            # is a missing metric, not a -100% collapse.
            and cand.configs_per_second > 0.0
            and -throughput_delta > thresholds.throughput_percent
        ):
            reasons.append(
                f"configs_per_second {throughput_delta:.0f}% "
                f"({base.configs_per_second:.0f}/s -> "
                f"{cand.configs_per_second:.0f}/s, "
                f"threshold -{thresholds.throughput_percent:g}%)"
            )

        if reasons:
            status = STATUS_REGRESSED
        elif cycle_delta is not None and cycle_delta < 0.0:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
        comparison.deltas.append(
            ScenarioDelta(
                scenario=name,
                baseline=base,
                candidate=cand,
                status=status,
                cycle_delta_percent=cycle_delta,
                wall_delta_percent=wall_delta,
                throughput_delta_percent=throughput_delta,
                reasons=tuple(reasons),
            )
        )
    return comparison


def assert_no_regressions(comparison: SuiteComparison) -> None:
    """Raise ``AssertionError`` listing every gating delta (bench/CI
    helper)."""
    if not comparison.has_regressions:
        return
    lines = [comparison.summary()]
    for delta in comparison.regressions():
        for reason in delta.reasons:
            lines.append(f"  {delta.scenario}: {reason}")
    raise AssertionError("\n".join(lines))
