"""Code-version fingerprints for persisted suite runs.

Every recorded run is stamped with where the code stood when it ran, so
a comparison knows whether two runs actually exercised different code.
The fingerprint is ``<git-describe>@<content-hash>`` when the package
lives in a git checkout, or just the content hash when it does not
(installed wheels, tarballs, sandboxes without git).  The content hash
covers every ``.py`` file under ``repro`` in a deterministic order, so
it changes exactly when the shipped source changes.
"""

from __future__ import annotations

import hashlib
import subprocess
from pathlib import Path

#: Hex digits of the content hash kept in the fingerprint.
CONTENT_HASH_LENGTH = 12


def package_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def content_fingerprint(root: Path | None = None) -> str:
    """sha256 over every .py file under ``root`` (path + contents)."""
    root = root or package_root()
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:CONTENT_HASH_LENGTH]


def git_describe(root: Path | None = None) -> str | None:
    """``git describe --always --dirty`` of the checkout, or None."""
    root = root or package_root()
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    described = completed.stdout.strip()
    return described or None


def repo_fingerprint(root: Path | None = None) -> str:
    """The fingerprint stored with every suite run."""
    content = content_fingerprint(root)
    described = git_describe(root)
    if described is None:
        return content
    return f"{described}@{content}"
