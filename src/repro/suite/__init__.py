"""Named scenario suite with persistent results and regression gating.

The answer to "did I regress anything?": a registry of named end-to-end
scenarios (:mod:`.scenarios`), a batched runner executing them through
the search substrate (:mod:`.runner`), an SQLite/JSON result store
stamping every run with a code fingerprint (:mod:`.store`,
:mod:`.fingerprint`), and a thresholded comparison layer
(:mod:`.compare`) that CI gates on via
``python -m repro suite compare``.
"""

from .compare import (
    RegressionThresholds,
    ScenarioDelta,
    SuiteComparison,
    assert_no_regressions,
    compare_runs,
)
from .fingerprint import content_fingerprint, git_describe, repo_fingerprint
from .runner import run_scenario, run_suite
from .scenarios import (
    SCENARIOS,
    Scenario,
    default_suite,
    get_scenario,
    register_scenario,
    scenario_names,
    select_scenarios,
)
from .store import (
    ResultStore,
    ScenarioResult,
    ScenarioTrendPoint,
    SuiteRun,
    read_run_json,
)

__all__ = [
    "SCENARIOS",
    "RegressionThresholds",
    "ResultStore",
    "Scenario",
    "ScenarioDelta",
    "ScenarioResult",
    "ScenarioTrendPoint",
    "SuiteComparison",
    "SuiteRun",
    "assert_no_regressions",
    "compare_runs",
    "content_fingerprint",
    "default_suite",
    "get_scenario",
    "git_describe",
    "read_run_json",
    "register_scenario",
    "repo_fingerprint",
    "run_scenario",
    "run_suite",
    "scenario_names",
    "select_scenarios",
]
