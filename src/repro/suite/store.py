"""Persistent suite results: records, SQLite store, JSON baselines.

Two complementary persistence formats share one record model:

* :class:`ResultStore` — an append-only SQLite database accumulating
  every run on a machine (``runs`` × ``results`` tables), the substrate
  for "did I regress anything since last week?" queries.
* JSON — a single run serialized as one reviewable file
  (:meth:`SuiteRun.write_json` / :func:`read_run_json`), the format the
  committed CI baseline uses so baseline refreshes show up as readable
  diffs.
"""

from __future__ import annotations

import datetime
import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

#: Bumped when the schema changes; stored via PRAGMA user_version.
#: v2 added ``results.configs_per_second`` (evaluation throughput is a
#: first-class longitudinal metric next to cycles and wall time).
#: v3 added ``results.pruned_subtrees`` (how much of the exact search
#: space the branch-and-bound certified without visiting).
#: v4 added ``results.phases`` (per-scenario phase breakdown from the
#: telemetry trace, a JSON object of phase name -> seconds).
SCHEMA_VERSION = 4

#: Individual statements (not one executescript) so schema creation and
#: migration can run inside a single immediate transaction — see
#: ResultStore.__init__.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    label TEXT NOT NULL DEFAULT '',
    fingerprint TEXT NOT NULL,
    created_at TEXT NOT NULL,
    elapsed_seconds REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS results (
    run_id INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    scenario TEXT NOT NULL,
    workload TEXT NOT NULL,
    platform TEXT NOT NULL,
    algorithm TEXT NOT NULL,
    constraint_fraction REAL NOT NULL,
    timing_constraint INTEGER NOT NULL,
    initial_cycles INTEGER NOT NULL,
    total_cycles INTEGER NOT NULL,
    reduction_percent REAL NOT NULL,
    kernels_moved INTEGER NOT NULL,
    moved_bb_ids TEXT NOT NULL,
    rows_used INTEGER NOT NULL,
    constraint_met INTEGER NOT NULL,
    wall_time_seconds REAL NOT NULL,
    configs_per_second REAL NOT NULL DEFAULT 0.0,
    pruned_subtrees INTEGER NOT NULL DEFAULT 0,
    phases TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (run_id, scenario)
);
CREATE INDEX IF NOT EXISTS idx_results_scenario ON results(scenario);
"""


def _phases_from_json_text(text: object) -> tuple[tuple[str, float], ...]:
    """Decode a ``phases`` JSON column value, tolerating junk as ()."""
    if not isinstance(text, str) or not text:
        return ()
    try:
        return _phases_from_payload(json.loads(text))
    except ValueError:
        return ()


def _phases_from_payload(payload: object) -> tuple[tuple[str, float], ...]:
    """A phases mapping from untrusted JSON/SQLite data, or ().

    Sorted by phase name so equal breakdowns compare equal regardless
    of the order a producer emitted them in.
    """
    if not isinstance(payload, dict):
        return ()
    try:
        return tuple(
            sorted((str(name), float(seconds))
                   for name, seconds in payload.items())
        )
    except (TypeError, ValueError):
        return ()


def _utcnow() -> str:
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome within one suite run."""

    scenario: str
    workload: str
    platform: str
    algorithm: str
    constraint_fraction: float
    timing_constraint: int
    initial_cycles: int
    total_cycles: int
    reduction_percent: float
    kernels_moved: int
    moved_bb_ids: tuple[int, ...]
    rows_used: int
    constraint_met: bool
    wall_time_seconds: float
    #: Visited configurations per second of search time — the
    #: evaluation-throughput metric the packed substrate is judged on.
    #: 0.0 in records predating schema v2.
    configs_per_second: float = 0.0
    #: Branch-and-bound subtrees pruned by the exact-search additive
    #: bound; 0 for non-exact algorithms and records predating v3.
    pruned_subtrees: int = 0
    #: Per-phase wall seconds from the telemetry trace, sorted by phase
    #: name (a tuple of pairs so the record stays frozen/hashable).
    #: Empty when telemetry was off or the record predates schema v4.
    phases: tuple[tuple[str, float], ...] = ()

    def phases_dict(self) -> dict[str, float]:
        return dict(self.phases)

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "workload": self.workload,
            "platform": self.platform,
            "algorithm": self.algorithm,
            "constraint_fraction": self.constraint_fraction,
            "timing_constraint": self.timing_constraint,
            "initial_cycles": self.initial_cycles,
            "total_cycles": self.total_cycles,
            "reduction_percent": round(self.reduction_percent, 3),
            "kernels_moved": self.kernels_moved,
            "moved_bb_ids": list(self.moved_bb_ids),
            "rows_used": self.rows_used,
            "constraint_met": self.constraint_met,
            "wall_time_seconds": round(self.wall_time_seconds, 6),
            "configs_per_second": round(self.configs_per_second, 1),
            "pruned_subtrees": self.pruned_subtrees,
            "phases": {
                name: round(seconds, 6) for name, seconds in self.phases
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioResult":
        return cls(
            scenario=str(payload["scenario"]),
            workload=str(payload["workload"]),
            platform=str(payload["platform"]),
            algorithm=str(payload["algorithm"]),
            constraint_fraction=float(payload["constraint_fraction"]),
            timing_constraint=int(payload["timing_constraint"]),
            initial_cycles=int(payload["initial_cycles"]),
            total_cycles=int(payload["total_cycles"]),
            reduction_percent=float(payload["reduction_percent"]),
            kernels_moved=int(payload["kernels_moved"]),
            moved_bb_ids=tuple(int(b) for b in payload["moved_bb_ids"]),
            rows_used=int(payload["rows_used"]),
            constraint_met=bool(payload["constraint_met"]),
            wall_time_seconds=float(payload["wall_time_seconds"]),
            # Absent in pre-v2 baselines; 0.0 disables throughput gating
            # for the record.
            configs_per_second=float(payload.get("configs_per_second", 0.0)),
            # Absent in pre-v3 baselines.
            pruned_subtrees=int(payload.get("pruned_subtrees", 0)),
            # Absent in pre-v4 baselines and telemetry-off runs.
            phases=_phases_from_payload(payload.get("phases")),
        )


@dataclass
class SuiteRun:
    """One complete suite execution (metadata + per-scenario results)."""

    fingerprint: str
    label: str = ""
    #: Stamped at construction so every producer (suite runner, bench
    #: scripts, ad-hoc callers) writes a real timestamp; consumers still
    #: tolerate "" in legacy JSON by falling back to run-id order.
    created_at: str = field(default_factory=_utcnow)
    elapsed_seconds: float = 0.0
    results: list[ScenarioResult] = field(default_factory=list)
    #: Assigned by the store on record; None for unpersisted/JSON runs.
    run_id: int | None = None

    def scenario_names(self) -> list[str]:
        return [result.scenario for result in self.results]

    def result_for(self, scenario: str) -> ScenarioResult | None:
        for result in self.results:
            if result.scenario == scenario:
                return result
        return None

    def to_json_dict(self) -> dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "label": self.label,
            "created_at": self.created_at,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "SuiteRun":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            label=str(payload.get("label", "")),
            created_at=str(payload.get("created_at", "")),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            results=[
                ScenarioResult.from_dict(entry)
                for entry in payload["results"]
            ],
        )

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path


def read_run_json(path: str | Path) -> SuiteRun:
    """Load a run previously written with :meth:`SuiteRun.write_json`."""
    payload = json.loads(Path(path).read_text())
    return SuiteRun.from_json_dict(payload)


@dataclass(frozen=True)
class ScenarioTrendPoint:
    """One scenario's metrics in one run — a row of the trends view."""

    run_id: int
    created_at: str
    fingerprint: str
    label: str
    total_cycles: int
    wall_time_seconds: float
    configs_per_second: float
    phases: tuple[tuple[str, float], ...] = ()

    def phases_dict(self) -> dict[str, float]:
        return dict(self.phases)


class ResultStore:
    """Append-only SQLite store of suite runs.

    Usable as a context manager; ``path=":memory:"`` gives an ephemeral
    store for tests.
    """

    #: How long a connection waits on another writer's lock before
    #: giving up — generous, because concurrent `suite run` processes
    #: legitimately serialize on the migration and on run inserts.
    BUSY_TIMEOUT_SECONDS = 30.0

    def __init__(self, path: str | Path = "suite_results.sqlite"):
        self.path = str(path)
        self._conn = sqlite3.connect(
            self.path, timeout=self.BUSY_TIMEOUT_SECONDS
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        # Schema creation + migration run under one immediate
        # transaction: BEGIN IMMEDIATE takes the write lock up front, so
        # two processes opening the same store concurrently serialize
        # here instead of racing each other's ALTERs (the loser of the
        # race re-reads the version inside its own transaction and sees
        # the migration already done).  sqlite3's autocommit machinery
        # never begins a transaction for DDL, so the explicit BEGIN is
        # the whole story.
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            for statement in _SCHEMA.split(";"):
                if statement.strip():
                    self._conn.execute(statement)
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if 0 < version < SCHEMA_VERSION:
                # Older schema: add every missing column.  A crash
                # between an ALTER and the version bump rolls the whole
                # transaction back now, but guard on the actual column
                # set anyway so stores half-migrated by older code
                # converge instead of failing on a duplicate column.
                columns = {
                    row["name"]
                    for row in self._conn.execute(
                        "PRAGMA table_info(results)"
                    )
                }
                if "configs_per_second" not in columns:
                    # v1 -> v2: evaluation throughput joins the results.
                    self._conn.execute(
                        "ALTER TABLE results ADD COLUMN configs_per_second "
                        "REAL NOT NULL DEFAULT 0.0"
                    )
                if "pruned_subtrees" not in columns:
                    # v2 -> v3: exact-search pruning counts join the
                    # results.
                    self._conn.execute(
                        "ALTER TABLE results ADD COLUMN pruned_subtrees "
                        "INTEGER NOT NULL DEFAULT 0"
                    )
                if "phases" not in columns:
                    # v3 -> v4: telemetry phase breakdowns join the
                    # results.
                    self._conn.execute(
                        "ALTER TABLE results ADD COLUMN phases "
                        "TEXT NOT NULL DEFAULT '{}'"
                    )
                version = 0
            if version == 0:
                self._conn.execute(
                    f"PRAGMA user_version = {SCHEMA_VERSION}"
                )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            self._conn.close()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record_run(self, run: SuiteRun) -> int:
        """Persist a run and its results atomically; returns (and sets)
        run_id.  A failure inserting any result rolls the whole run
        back, so the store never holds a run row without its results."""
        created_at = run.created_at or _utcnow()
        # sqlite3 connections as context managers commit on success and
        # roll back on exception.
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (label, fingerprint, created_at,"
                " elapsed_seconds) VALUES (?, ?, ?, ?)",
                (run.label, run.fingerprint, created_at, run.elapsed_seconds),
            )
            run_id = cursor.lastrowid
            assert run_id is not None
            # Columns are named because migrated databases can hold them
            # in a different physical order (ALTER TABLE appends).
            self._conn.executemany(
                "INSERT INTO results (run_id, scenario, workload,"
                " platform, algorithm, constraint_fraction,"
                " timing_constraint, initial_cycles, total_cycles,"
                " reduction_percent, kernels_moved, moved_bb_ids,"
                " rows_used, constraint_met, wall_time_seconds,"
                " configs_per_second, pruned_subtrees, phases) VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run_id,
                        r.scenario,
                        r.workload,
                        r.platform,
                        r.algorithm,
                        r.constraint_fraction,
                        r.timing_constraint,
                        r.initial_cycles,
                        r.total_cycles,
                        r.reduction_percent,
                        r.kernels_moved,
                        ",".join(str(b) for b in r.moved_bb_ids),
                        r.rows_used,
                        int(r.constraint_met),
                        r.wall_time_seconds,
                        r.configs_per_second,
                        r.pruned_subtrees,
                        json.dumps(dict(r.phases), sort_keys=True),
                    )
                    for r in run.results
                ],
            )
        run.run_id = run_id
        run.created_at = created_at
        return run_id

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def run_ids(self, label: str | None = None) -> list[int]:
        """Recorded run ids, oldest first; optionally filtered by label."""
        if label is None:
            rows = self._conn.execute(
                "SELECT run_id FROM runs ORDER BY run_id"
            )
        else:
            rows = self._conn.execute(
                "SELECT run_id FROM runs WHERE label = ? ORDER BY run_id",
                (label,),
            )
        return [row["run_id"] for row in rows]

    def latest_run_id(self, label: str | None = None) -> int | None:
        ids = self.run_ids(label)
        return ids[-1] if ids else None

    def load_run(self, run_id: int) -> SuiteRun:
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no run with id {run_id}")
        run = SuiteRun(
            fingerprint=row["fingerprint"],
            label=row["label"],
            created_at=row["created_at"],
            elapsed_seconds=row["elapsed_seconds"],
            run_id=run_id,
        )
        for record in self._conn.execute(
            "SELECT * FROM results WHERE run_id = ? ORDER BY rowid",
            (run_id,),
        ):
            moved = tuple(
                int(b) for b in record["moved_bb_ids"].split(",") if b
            )
            run.results.append(
                ScenarioResult(
                    scenario=record["scenario"],
                    workload=record["workload"],
                    platform=record["platform"],
                    algorithm=record["algorithm"],
                    constraint_fraction=record["constraint_fraction"],
                    timing_constraint=record["timing_constraint"],
                    initial_cycles=record["initial_cycles"],
                    total_cycles=record["total_cycles"],
                    reduction_percent=record["reduction_percent"],
                    kernels_moved=record["kernels_moved"],
                    moved_bb_ids=moved,
                    rows_used=record["rows_used"],
                    constraint_met=bool(record["constraint_met"]),
                    wall_time_seconds=record["wall_time_seconds"],
                    configs_per_second=record["configs_per_second"],
                    pruned_subtrees=record["pruned_subtrees"],
                    phases=_phases_from_json_text(record["phases"]),
                )
            )
        return run

    def load_latest(self, label: str | None = None) -> SuiteRun | None:
        run_id = self.latest_run_id(label)
        if run_id is None:
            return None
        return self.load_run(run_id)

    def scenario_history(
        self, scenario: str
    ) -> list[tuple[int, str, int, float, float]]:
        """(run_id, created_at, total_cycles, wall_time,
        configs_per_second) per run, oldest first — the longitudinal
        view of one scenario."""
        rows = self._conn.execute(
            "SELECT r.run_id, runs.created_at, r.total_cycles,"
            " r.wall_time_seconds, r.configs_per_second"
            " FROM results r JOIN runs USING (run_id)"
            " WHERE r.scenario = ? ORDER BY r.run_id",
            (scenario,),
        )
        return [
            (
                row["run_id"],
                row["created_at"],
                row["total_cycles"],
                row["wall_time_seconds"],
                row["configs_per_second"],
            )
            for row in rows
        ]

    def scenario_names_recorded(self) -> list[str]:
        """Every scenario name with at least one recorded result."""
        rows = self._conn.execute(
            "SELECT DISTINCT scenario FROM results ORDER BY scenario"
        )
        return [row["scenario"] for row in rows]

    def scenario_trend_points(
        self, scenario: str
    ) -> list[ScenarioTrendPoint]:
        """The full longitudinal view of one scenario, oldest first.

        Richer than :meth:`scenario_history` (whose 5-tuple shape is
        pinned by existing callers): adds the run's fingerprint/label
        and the per-phase breakdown, which is what the trends report
        needs to name the first offending commit.
        """
        rows = self._conn.execute(
            "SELECT r.run_id, runs.created_at, runs.fingerprint,"
            " runs.label, r.total_cycles, r.wall_time_seconds,"
            " r.configs_per_second, r.phases"
            " FROM results r JOIN runs USING (run_id)"
            " WHERE r.scenario = ? ORDER BY r.run_id",
            (scenario,),
        )
        return [
            ScenarioTrendPoint(
                run_id=row["run_id"],
                created_at=row["created_at"],
                fingerprint=row["fingerprint"],
                label=row["label"],
                total_cycles=row["total_cycles"],
                wall_time_seconds=row["wall_time_seconds"],
                configs_per_second=row["configs_per_second"],
                phases=_phases_from_json_text(row["phases"]),
            )
            for row in rows
        ]

    def runs_summary(self) -> list[dict[str, object]]:
        """One dict per recorded run (id, label, fingerprint, when,
        scenario count) for ``suite list``-style displays."""
        rows = self._conn.execute(
            "SELECT runs.run_id, runs.label, runs.fingerprint,"
            " runs.created_at, runs.elapsed_seconds,"
            " COUNT(results.scenario) AS scenarios"
            " FROM runs LEFT JOIN results USING (run_id)"
            " GROUP BY runs.run_id ORDER BY runs.run_id"
        )
        return [dict(row) for row in rows]
