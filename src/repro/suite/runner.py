"""Batched scenario execution.

Runs a list of named scenarios through the :mod:`repro.search`
substrate (the same partitioners the :mod:`repro.explore` grids fan
out), timing each scenario and packaging the outcomes as a
:class:`~repro.suite.store.SuiteRun` ready for the store, the JSON
baseline writer, or a comparison.

Scenarios fan out over ``ProcessPoolExecutor`` like exploration tasks
do, with the same serial fallback when process pools are unavailable;
built workloads are cached per process by spec, so scenarios sharing a
workload (e.g. the skew axis pair) build its DFGs once, and packed cost
tables are cached per (workload, platform) pair, so scenarios that
differ only in algorithm or constraint fraction price their blocks
once instead of once per scenario.
"""

from __future__ import annotations

import os
import time

from .. import telemetry
from ..explore.space import PlatformSpec, WorkloadSpec
from ..parallel import map_tasks
from ..partition.costs import CostModel
from ..partition.engine import EngineConfig
from ..partition.packed import PackedCostTable
from ..partition.workload import ApplicationWorkload
from ..search import make_partitioner
from .fingerprint import repo_fingerprint
from .scenarios import Scenario, default_suite
from .store import ResultStore, ScenarioResult, SuiteRun

#: Per-process workload cache (worker processes grow their own copy).
_WORKLOAD_CACHE: dict[WorkloadSpec, ApplicationWorkload] = {}

#: Per-process packed-table cache: one pricing pass per (workload,
#: platform) pair, shared by every scenario the worker runs on it.
_TABLE_CACHE: dict[tuple[WorkloadSpec, PlatformSpec], PackedCostTable] = {}


def run_scenario(
    scenario: Scenario,
    workload_cache: dict[WorkloadSpec, ApplicationWorkload] | None = None,
    table_cache: (
        dict[tuple[WorkloadSpec, PlatformSpec], PackedCostTable] | None
    ) = None,
) -> ScenarioResult:
    """Execute one scenario.

    ``wall_time_seconds`` covers the partitioning search itself
    (pricing through the final result — pricing is amortized to the
    pair's first scenario by the packed-table cache), not the cached
    workload build.  ``configs_per_second`` is the visited-configuration
    count over the search-only time (``run()`` on the warm substrate) —
    the evaluation-throughput metric regressions gate on.

    With telemetry enabled, ``phases`` carries the per-phase seconds of
    the walled region (the scenario span's direct children, e.g.
    ``price_table``/``search``), so their sum never exceeds
    ``wall_time_seconds``; with telemetry off it is empty and nothing
    else changes.
    """
    cache = _WORKLOAD_CACHE if workload_cache is None else workload_cache
    workload = cache.get(scenario.workload)
    if workload is None:
        # Outside the scenario span on purpose: the build is cached and
        # excluded from wall_time_seconds, so it must not show up in the
        # phase breakdown that reconciles against the wall either.
        with telemetry.span("build_workload"):
            workload = scenario.workload.build()
        cache[scenario.workload] = workload
    platform = scenario.platform.build()

    # The walled region runs under one span per scenario, so its direct
    # children (price_table, search, ...) are exactly the phases the
    # result records — their sum is ≤ wall by construction.
    with telemetry.span(f"scenario:{scenario.name}") as scenario_span:
        # Span nodes accumulate across repeat runs in one process; the
        # result's phases must cover only THIS invocation, so diff
        # against the node's state at entry.
        phase_baseline = {
            name: node.seconds
            for name, node in scenario_span.children.items()
        }
        started = time.perf_counter()
        tables = _TABLE_CACHE if table_cache is None else table_cache
        table_key = (scenario.workload, scenario.platform)
        table = tables.get(table_key)
        if table is None:
            table = PackedCostTable.from_model(CostModel(workload, platform))
            tables[table_key] = table
        else:
            telemetry.count("cost_table_cache_hits")
        partitioner = make_partitioner(
            scenario.algorithm,
            workload,
            platform,
            config=EngineConfig(),
            packed_table=table,
        )
        initial = partitioner.initial_cycles()
        constraint = max(1, round(initial * scenario.constraint_fraction))
        search_started = time.perf_counter()
        result = partitioner.run(constraint)
        search_seconds = time.perf_counter() - search_started

        final_subset = tuple(sorted(result.moved_bb_ids))
        rows_used = partitioner.subset_rows_used(final_subset)
        wall = time.perf_counter() - started

    phases = tuple(
        sorted(
            (name, node.seconds - phase_baseline.get(name, 0.0))
            for name, node in scenario_span.children.items()
            if node.seconds > phase_baseline.get(name, 0.0)
        )
    )

    return ScenarioResult(
        scenario=scenario.name,
        workload=result.workload_name,
        platform=scenario.platform.label,
        algorithm=scenario.algorithm.label,
        constraint_fraction=scenario.constraint_fraction,
        timing_constraint=result.timing_constraint,
        initial_cycles=result.initial_cycles,
        total_cycles=result.final_cycles,
        reduction_percent=result.reduction_percent,
        kernels_moved=result.kernels_moved,
        moved_bb_ids=final_subset,
        rows_used=rows_used,
        constraint_met=result.constraint_met,
        wall_time_seconds=wall,
        configs_per_second=(
            partitioner.visited_count / search_seconds
            if search_seconds > 0
            else 0.0
        ),
        # Exact-search scenarios report how many branch-and-bound
        # subtrees the additive bound cut; 0 for every other algorithm.
        pruned_subtrees=getattr(partitioner, "pruned_subtrees", 0),
        phases=phases,
    )


def run_suite(
    scenarios: list[Scenario] | None = None,
    *,
    store: ResultStore | None = None,
    label: str = "",
    max_workers: int | None = None,
    fingerprint: str | None = None,
) -> SuiteRun:
    """Run every scenario (the full registry by default) and return the
    assembled :class:`SuiteRun`, recorded into ``store`` when given.

    ``max_workers=None`` sizes the pool to ``min(scenarios, cpus)``;
    ``max_workers=1`` forces a serial in-process run.  Results come back
    in scenario order regardless of worker scheduling.
    """
    scenarios = default_suite() if scenarios is None else list(scenarios)
    if not scenarios:
        raise ValueError("no scenarios to run")
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise ValueError("scenario names must be unique within a run")

    started = time.perf_counter()
    workers = max_workers
    if workers is None:
        workers = min(len(scenarios), os.cpu_count() or 1)
    workers = max(1, workers)

    def run_serially(serial_scenarios) -> list[ScenarioResult]:
        workloads: dict[WorkloadSpec, ApplicationWorkload] = {}
        tables: dict[
            tuple[WorkloadSpec, PlatformSpec], PackedCostTable
        ] = {}
        return [
            run_scenario(scenario, workloads, tables)
            for scenario in serial_scenarios
        ]

    # Same fallback contract as repro.explore, via the shared
    # repro.parallel fan-out: an unusable pool degrades to a serial
    # run, genuine scenario errors propagate.
    results, workers = map_tasks(
        run_scenario,
        scenarios,
        workers,
        what="suite scenarios",
        serial_runner=run_serially,
    )

    run = SuiteRun(
        fingerprint=fingerprint or repo_fingerprint(),
        label=label,
        elapsed_seconds=time.perf_counter() - started,
        results=results,
    )
    if store is not None:
        store.record_run(run)
    return run
