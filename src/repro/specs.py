"""Text syntax for workload / algorithm specs, shared by CLI and server.

One mini-language names every buildable spec in the project::

    ofdm | jpeg | ofdm-measured | jpeg-measured | filterbank | viterbi
        | minic:<seed> | synthetic:<blocks>      (+ ``:key=value,...``)
    greedy | exhaustive | multi_start | annealing  (+ ``:key=value,...``)

The ``python -m repro`` argument parsers and the serving layer's JSON
job decoder both accept these strings, so a request a user typed on the
command line is exactly a request a client can POST to the daemon.
Every function raises :class:`ValueError` on malformed input; callers
wrap that into their own error surface (``argparse.ArgumentTypeError``
on the CLI, a structured validation error on the server).
"""

from __future__ import annotations

from .explore.space import WorkloadSpec
from .search.base import AlgorithmSpec

__all__ = [
    "algorithm_spec_from_text",
    "params_from_text",
    "workload_spec_from_text",
]


def params_from_text(text: str) -> dict[str, object]:
    """``"seed=3,cooling=0.8"`` -> ``{'seed': 3, 'cooling': 0.8}``.

    Values coerce ``true``/``false`` to bool, then int, then float, then
    stay strings.
    """
    params: dict[str, object] = {}
    for item in filter(None, text.split(",")):
        if "=" not in item:
            raise ValueError(
                f"malformed parameter {item!r}; expected key=value"
            )
        key, raw = item.split("=", 1)
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        params[key.strip()] = value
    return params


def workload_spec_from_text(text: str) -> WorkloadSpec:
    """Parse and validate a workload spec string.

    Parameter names are validated eagerly (by resolving the label), so a
    typo'd key fails here rather than deep inside a worker process.
    """
    spec = _workload_spec(text)
    try:
        _ = spec.label
    except TypeError as error:
        raise ValueError(
            f"bad parameters for workload {text!r}: {error}"
        ) from None
    return spec


def _workload_spec(text: str) -> WorkloadSpec:
    kind, __, rest = text.partition(":")
    if kind == "ofdm":
        return WorkloadSpec.ofdm()
    if kind == "jpeg":
        return WorkloadSpec.jpeg()
    if kind == "ofdm-measured":
        return WorkloadSpec.ofdm_measured(**params_from_text(rest))  # type: ignore[arg-type]
    if kind == "jpeg-measured":
        return WorkloadSpec.jpeg_measured(**params_from_text(rest))  # type: ignore[arg-type]
    if kind == "filterbank":
        return WorkloadSpec.filterbank(**params_from_text(rest))
    if kind == "viterbi":
        return WorkloadSpec.viterbi(**params_from_text(rest))
    if kind == "minic":
        seed_text, __, params = rest.partition(":")
        if not seed_text:
            return WorkloadSpec.minic()
        try:
            seed = int(seed_text)
        except ValueError:
            raise ValueError(
                f"minic seed must be an integer, got {seed_text!r}"
            ) from None
        return WorkloadSpec.minic(seed, **params_from_text(params))  # type: ignore[arg-type]
    if kind == "synthetic":
        blocks, __, params = rest.partition(":")
        if not blocks:
            raise ValueError(
                "synthetic workloads need a block count: synthetic:<blocks>"
            )
        try:
            block_count = int(blocks)
        except ValueError:
            raise ValueError(
                f"synthetic block count must be an integer, got {blocks!r}"
            ) from None
        return WorkloadSpec.synthetic(block_count, **params_from_text(params))
    raise ValueError(
        f"unknown workload {text!r}; expected ofdm, jpeg, ofdm-measured, "
        "jpeg-measured, filterbank, viterbi, minic:<seed> or "
        "synthetic:<blocks>[:key=value,...]"
    )


def algorithm_spec_from_text(text: str) -> AlgorithmSpec:
    """Parse and validate an algorithm spec string."""
    name, __, rest = text.partition(":")
    factories = {
        "greedy": AlgorithmSpec.greedy,
        "exhaustive": AlgorithmSpec.exhaustive,
        "multi_start": AlgorithmSpec.multi_start,
        "annealing": AlgorithmSpec.annealing,
    }
    factory = factories.get(name)
    if factory is None:
        raise ValueError(
            f"unknown algorithm {name!r}; expected one of {sorted(factories)}"
        )
    try:
        return factory(**params_from_text(rest))  # type: ignore[arg-type]
    except TypeError as error:
        raise ValueError(str(error)) from None
