"""Natural-loop detection and loop nesting depth.

The analysis step (§3.1) extracts kernels among "basic blocks inside
loops"; this module finds those blocks structurally from back edges in the
CFG (an edge ``t -> h`` where ``h`` dominates ``t``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import ControlFlowGraph
from .dominators import DominatorTree


@dataclass
class NaturalLoop:
    """One natural loop: its header plus every block in its body."""

    header: str
    body: set[str] = field(default_factory=set)
    back_edges: list[tuple[str, str]] = field(default_factory=list)

    def contains(self, label: str) -> bool:
        return label in self.body

    @property
    def size(self) -> int:
        return len(self.body)


class LoopForest:
    """All natural loops of a CFG plus per-block nesting depth."""

    def __init__(
        self, cfg: ControlFlowGraph, dom: DominatorTree | None = None
    ) -> None:
        self.cfg = cfg
        self.dom = dom or DominatorTree(cfg)
        self.loops: list[NaturalLoop] = []
        self._find_loops()

    def _find_loops(self) -> None:
        loops_by_header: dict[str, NaturalLoop] = {}
        reachable = set(self.cfg.reverse_post_order())
        for label in reachable:
            for successor in self.cfg.successors(label):
                if successor in reachable and self.dom.dominates(successor, label):
                    loop = loops_by_header.setdefault(
                        successor, NaturalLoop(successor, {successor})
                    )
                    loop.back_edges.append((label, successor))
                    self._collect_body(loop, label)
        self.loops = sorted(loops_by_header.values(), key=lambda x: x.header)

    def _collect_body(self, loop: NaturalLoop, tail: str) -> None:
        """Blocks that can reach the back edge tail without passing the
        header — the classic natural-loop body computation."""
        stack = [tail]
        while stack:
            label = stack.pop()
            if label in loop.body:
                continue
            loop.body.add(label)
            stack.extend(self.cfg.predecessors(label))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def loop_depth(self, label: str) -> int:
        """How many loops contain this block (0 = not in any loop)."""
        return sum(1 for loop in self.loops if loop.contains(label))

    def innermost_loop(self, label: str) -> NaturalLoop | None:
        containing = [loop for loop in self.loops if loop.contains(label)]
        if not containing:
            return None
        return min(containing, key=lambda x: x.size)

    def blocks_in_loops(self) -> set[str]:
        blocks: set[str] = set()
        for loop in self.loops:
            blocks |= loop.body
        return blocks

    def headers(self) -> list[str]:
        return [loop.header for loop in self.loops]

    @property
    def loop_count(self) -> int:
        return len(self.loops)


def find_loops(cfg: ControlFlowGraph) -> LoopForest:
    return LoopForest(cfg)
