"""Basic blocks: straight-line instruction sequences ended by a terminator.

The paper defines a basic block as "a sequence of instructions (operations)
with no branches into or out of the middle" (§3); these are the unit at
which profiling counters, weights and kernel selection operate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .operations import Instruction, OpClass, Opcode


@dataclass
class BasicBlock:
    """One basic block inside a function's CFG.

    ``label`` is unique within the function.  ``bb_id`` is a *program-wide*
    identifier assigned by CDFG construction so results can reference blocks
    the way the paper's tables do ("BB no. 22").  A value of ``-1`` means
    "not yet numbered".
    """

    label: str
    instructions: list[Instruction] = field(default_factory=list)
    bb_id: int = -1

    def append(self, instruction: Instruction) -> None:
        if self.is_terminated:
            raise ValueError(
                f"cannot append to terminated block {self.label!r}"
            )
        self.instructions.append(instruction)

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].opcode.is_control:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator (the DFG payload)."""
        if self.is_terminated:
            return self.instructions[:-1]
        return list(self.instructions)

    def successor_labels(self) -> tuple[str, ...]:
        terminator = self.terminator
        if terminator is None or terminator.opcode is Opcode.RET:
            return ()
        return terminator.targets

    # ------------------------------------------------------------------
    # Statistics used by the analysis stage
    # ------------------------------------------------------------------
    def count_op_classes(self) -> dict[OpClass, int]:
        """Histogram of operator classes over the block body."""
        counts: dict[OpClass, int] = {}
        for instruction in self.body:
            op_class = instruction.op_class
            counts[op_class] = counts.get(op_class, 0) + 1
        return counts

    def memory_access_count(self) -> int:
        return sum(1 for ins in self.body if ins.opcode.is_memory)

    def compute_op_count(self) -> int:
        """Number of value-computing (non-move, non-memory) operations."""
        return sum(
            1
            for ins in self.body
            if ins.op_class in (OpClass.ALU, OpClass.MUL, OpClass.DIV)
        )

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {ins}" for ins in self.instructions)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)
