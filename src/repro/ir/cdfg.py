"""Whole-program Control/Data Flow Graph (paper §3, step 1).

A :class:`CDFG` bundles the per-function CFGs, assigns program-wide basic
block numbers (the "BB no." of the paper's tables), and caches per-block
DFGs.  It is the input to the analysis stage, both mappers, and the
partitioning engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.ast_nodes import Program
from ..frontend.parser import parse_program
from ..frontend.semantic import analyze_program
from .basicblock import BasicBlock
from .cfg import ControlFlowGraph
from .dfg import DataFlowGraph, DFGStatistics
from .lowering import lower_program


@dataclass(frozen=True)
class BlockKey:
    """Identifies one basic block inside the whole program."""

    function: str
    label: str

    def __str__(self) -> str:
        return f"{self.function}/{self.label}"


class CDFG:
    """Program-level view over lowered CFGs with stable block numbering."""

    def __init__(
        self, program: Program, cfgs: dict[str, ControlFlowGraph]
    ) -> None:
        self.program = program
        self.cfgs = cfgs
        self._by_id: dict[int, BlockKey] = {}
        self._dfg_cache: dict[BlockKey, DataFlowGraph] = {}
        self._assign_block_ids()

    # ------------------------------------------------------------------
    # Block numbering
    # ------------------------------------------------------------------
    def _assign_block_ids(self) -> None:
        """Number blocks 1..N in (function declaration order, RPO) order.

        The paper reports basic blocks by number ("BB no. 22"); we produce a
        deterministic program-wide numbering so analysis reports, the
        partitioning engine and the experiment tables all refer to the same
        blocks across runs.
        """
        next_id = 1
        for function in self.program.functions:
            cfg = self.cfgs[function.name]
            for label in cfg.reverse_post_order():
                block = cfg.block(label)
                block.bb_id = next_id
                self._by_id[next_id] = BlockKey(function.name, label)
                next_id += 1

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def cfg(self, function: str) -> ControlFlowGraph:
        return self.cfgs[function]

    def block(self, key: BlockKey) -> BasicBlock:
        return self.cfgs[key.function].block(key.label)

    def block_by_id(self, bb_id: int) -> BasicBlock:
        return self.block(self._by_id[bb_id])

    def key_for_id(self, bb_id: int) -> BlockKey:
        return self._by_id[bb_id]

    def all_block_keys(self) -> list[BlockKey]:
        return [self._by_id[bb_id] for bb_id in sorted(self._by_id)]

    def all_blocks(self) -> list[BasicBlock]:
        return [self.block(key) for key in self.all_block_keys()]

    @property
    def block_count(self) -> int:
        return len(self._by_id)

    def dfg(self, key: BlockKey) -> DataFlowGraph:
        """The (cached) data-flow graph of one block."""
        if key not in self._dfg_cache:
            self._dfg_cache[key] = DataFlowGraph(self.block(key))
        return self._dfg_cache[key]

    def dfg_by_id(self, bb_id: int) -> DataFlowGraph:
        return self.dfg(self._by_id[bb_id])

    def statistics(self) -> dict[int, DFGStatistics]:
        """DFG statistics for every block, keyed by program-wide BB id."""
        return {
            bb_id: DFGStatistics.from_dfg(self.dfg(key))
            for bb_id, key in sorted(self._by_id.items())
        }

    def prune_removed_blocks(self) -> list[int]:
        """Re-sync the id index after passes removed blocks.

        Blocks deleted from a member CFG (unreachable-code elimination)
        are dropped from ``_by_id`` and the DFG cache; surviving blocks
        keep their numbering, so recorded profiles and partitioning
        results stay valid (ids simply gain gaps).  Returns the pruned
        program-wide bb_ids.
        """
        stale = [
            bb_id
            for bb_id, key in self._by_id.items()
            if key.label not in self.cfgs[key.function].blocks
        ]
        for bb_id in stale:
            key = self._by_id.pop(bb_id)
            self._dfg_cache.pop(key, None)
        return stale

    def verify(self) -> None:
        for cfg in self.cfgs.values():
            cfg.verify()
        for key in self.all_block_keys():
            dfg = self.dfg(key)
            if not dfg.is_acyclic():
                raise ValueError(f"DFG for {key} contains a cycle")

    def __str__(self) -> str:
        lines = [f"CDFG ({self.block_count} basic blocks)"]
        for cfg in self.cfgs.values():
            lines.append(str(cfg))
        return "\n".join(lines)


def build_cdfg(program: Program, verify: bool | None = None) -> CDFG:
    """Lower an analyzed AST into a CDFG.

    When the IR sanitizer is active (the default; see
    :func:`repro.ir.verify.set_sanitizer`), the freshly lowered CDFG is
    statically verified and construction fails with a
    :class:`~repro.ir.verify.VerificationError` carrying block-level
    diagnostics rather than handing malformed IR downstream.
    """
    from .verify import assert_verified, sanitizer_enabled

    cdfg = CDFG(program, lower_program(program))
    if sanitizer_enabled() if verify is None else verify:
        assert_verified(cdfg, "frontend lowering")
    return cdfg


def cdfg_from_source(
    source: str, filename: str = "<source>", verify: bool | None = None
) -> CDFG:
    """Full pipeline: parse, semantic-check, lower, and number blocks."""
    program = parse_program(source, filename)
    analyze_program(program)
    return build_cdfg(program, verify=verify)
