"""Optimization passes over lowered CFGs: block-local and whole-CFG.

These keep the DFGs the mappers see honest: a naive lowering emits folding
opportunities (e.g. linearized 2-D indices with constant rows) and dead
temps that real compilers would never hand to a mapper.  The block-local
passes (fold / copy-propagate / DCE) preserve basic-block structure; the
*global* passes layered on top use the dataflow framework
(:mod:`repro.ir.dataflow`) to act across blocks:

* :func:`simplify_constant_branches` — CBR on a constant condition (or
  with two identical targets) becomes an unconditional BR, exposing
  unreachable code;
* :func:`eliminate_unreachable_blocks` — drops blocks no path from the
  entry reaches.  Removed blocks never carried execution frequency, so
  partitioning results are unaffected;
* :func:`eliminate_dead_code_global` — liveness-based DCE: a scalar
  write is removed when no path can read it again (the block-local DCE
  must keep every ``VarRef`` write because it cannot see other blocks).

The pipeline drivers (:func:`optimize_cfg`, :func:`optimize_cdfg`)
iterate local+global passes to a fixed point and — when the IR sanitizer
is enabled (:func:`repro.ir.verify.set_sanitizer`) — re-verify the IR
after every iteration, so a buggy pass is caught at the iteration that
broke the CDFG instead of deep inside a mapper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: cdfg builds passes' sanitizer
    from .cdfg import CDFG

from .basicblock import BasicBlock
from .cfg import ControlFlowGraph
from .dataflow import LivenessAnalysis
from .operations import (
    Const,
    Instruction,
    Opcode,
    Temp,
    VarRef,
)
from .opsemantics import FOLDABLE_OPCODES, evaluate_opcode
from .verify import VerificationError, sanitizer_enabled, verify_cfg

#: Keys every pipeline totals dict carries (stable reporting schema).
PASS_TOTAL_KEYS = (
    "folded",
    "propagated",
    "removed",
    "branches_simplified",
    "unreachable_removed",
    "global_removed",
)


def fold_constants_in_block(block: BasicBlock) -> int:
    """Evaluate ops whose operands are all constants; returns fold count.

    Folded instructions become ``COPY dest <- #value`` so downstream passes
    (copy propagation, DCE) can finish cleaning them up.
    """
    known: dict[Temp, Const] = {}
    folded = 0
    new_instructions: list[Instruction] = []
    for ins in block.instructions:
        operands = tuple(
            known.get(op, op) if isinstance(op, Temp) else op
            for op in ins.operands
        )
        ins = Instruction(
            ins.opcode,
            dest=ins.dest,
            operands=operands,
            targets=ins.targets,
            callee=ins.callee,
            result_type=ins.result_type,
            location=ins.location,
        )
        if (
            ins.opcode in FOLDABLE_OPCODES
            and isinstance(ins.dest, Temp)
            and all(isinstance(op, Const) for op in operands)
        ):
            try:
                value = evaluate_opcode(
                    ins.opcode, tuple(op.value for op in operands)  # type: ignore[union-attr]
                )
            except ZeroDivisionError:
                new_instructions.append(ins)
                continue
            constant = Const(value)
            known[ins.dest] = constant
            new_instructions.append(
                Instruction(
                    Opcode.COPY,
                    dest=ins.dest,
                    operands=(constant,),
                    result_type=ins.result_type,
                    location=ins.location,
                )
            )
            folded += 1
        else:
            if isinstance(ins.dest, Temp):
                known.pop(ins.dest, None)
            new_instructions.append(ins)
    block.instructions = new_instructions
    return folded


def propagate_copies_in_block(block: BasicBlock) -> int:
    """Forward temp-to-temp/const copies into later uses (block-local)."""
    replacement: dict[Temp, object] = {}
    rewrites = 0
    new_instructions: list[Instruction] = []
    for ins in block.instructions:
        operands = []
        changed = False
        for op in ins.operands:
            if isinstance(op, Temp) and op in replacement:
                operands.append(replacement[op])
                changed = True
            else:
                operands.append(op)
        if changed:
            rewrites += 1
            ins = Instruction(
                ins.opcode,
                dest=ins.dest,
                operands=tuple(operands),
                targets=ins.targets,
                callee=ins.callee,
                result_type=ins.result_type,
                location=ins.location,
            )
        if (
            ins.opcode is Opcode.COPY
            and isinstance(ins.dest, Temp)
            and isinstance(ins.operands[0], (Temp, Const))
        ):
            source = ins.operands[0]
            # Chase chains: if the source itself has a replacement use that.
            if isinstance(source, Temp) and source in replacement:
                source = replacement[source]  # type: ignore[assignment]
            replacement[ins.dest] = source
        elif isinstance(ins.dest, Temp):
            replacement.pop(ins.dest, None)
        # A scalar VarRef write invalidates copies that read that VarRef.
        if isinstance(ins.dest, VarRef):
            stale = [
                t
                for t, v in replacement.items()
                if isinstance(v, VarRef) and v.name == ins.dest.name
            ]
            for t in stale:
                del replacement[t]
        new_instructions.append(ins)
    block.instructions = new_instructions
    return rewrites


def eliminate_dead_code_in_block(block: BasicBlock) -> int:
    """Remove pure instructions whose Temp result is never used.

    Temps are block-local by construction, so liveness is purely local.
    CALLs, STOREs, VarRef writes and terminators are always kept.
    """
    used: set[Temp] = set()
    for ins in block.instructions:
        for op in ins.operands:
            if isinstance(op, Temp):
                used.add(op)
    removed = 0
    kept: list[Instruction] = []
    for ins in reversed(block.instructions):
        is_dead = (
            isinstance(ins.dest, Temp)
            and ins.dest not in used
            and ins.opcode is not Opcode.CALL
            and not ins.opcode.is_control
            and ins.opcode is not Opcode.STORE
        )
        if is_dead:
            removed += 1
            continue
        kept.append(ins)
    kept.reverse()
    block.instructions = kept
    return removed


# ----------------------------------------------------------------------
# Global passes
# ----------------------------------------------------------------------
def simplify_constant_branches(cfg: ControlFlowGraph) -> int:
    """Turn decidable CBRs into BRs; returns the simplification count.

    A conditional branch whose condition folded to a constant (or whose
    two targets coincide) always goes one way; rewriting it to an
    unconditional BR lets :func:`eliminate_unreachable_blocks` drop the
    never-taken side and block-local DCE reclaim the dead condition.
    """
    simplified = 0
    for block in cfg.blocks.values():
        terminator = block.terminator
        if terminator is None or terminator.opcode is not Opcode.CBR:
            continue
        condition = terminator.operands[0]
        taken: str | None = None
        if isinstance(condition, Const):
            taken = terminator.targets[0] if condition.value else terminator.targets[1]
        elif terminator.targets[0] == terminator.targets[1]:
            taken = terminator.targets[0]
        if taken is not None:
            block.instructions[-1] = Instruction(
                Opcode.BR, targets=(taken,), location=terminator.location
            )
            simplified += 1
    return simplified


def eliminate_unreachable_blocks(cfg: ControlFlowGraph) -> list[str]:
    """Drop blocks unreachable from the entry; returns removed labels.

    Surviving blocks keep their program-wide ``bb_id``: unreachable
    blocks never execute, so the numbering (and with it every recorded
    profile and partitioning result) stays valid with gaps.
    """
    reachable = cfg.reachable_labels()
    doomed = [label for label in cfg.blocks if label not in reachable]
    for label in doomed:
        del cfg.blocks[label]
    return doomed


def eliminate_dead_code_global(cfg: ControlFlowGraph) -> int:
    """Liveness-based DCE across blocks; returns the removal count.

    Removes pure scalar writes — including ``VarRef`` writes the local
    DCE must conservatively keep — when the destination is dead: no
    path from the write can read the variable again.  Global scalars
    are modelled as live across calls and at every function exit, and
    CALL/STORE/terminators are never removed.
    """
    liveness = LivenessAnalysis().solve(cfg)
    global_scalars = frozenset(
        name
        for name, info in cfg.variables.items()
        if info.is_global and not info.is_array
    )
    removed = 0
    for label, block in cfg.blocks.items():
        if label not in liveness.out_sets:
            continue  # unreachable: left for eliminate_unreachable_blocks
        live = set(liveness.out_sets[label])
        used_temps: set[Temp] = set()
        kept: list[Instruction] = []
        for ins in reversed(block.instructions):
            removable = (
                ins.opcode is not Opcode.CALL
                and ins.opcode is not Opcode.STORE
                and not ins.opcode.is_control
                and (
                    (isinstance(ins.dest, Temp) and ins.dest not in used_temps)
                    or (
                        isinstance(ins.dest, VarRef)
                        and ins.dest.name not in live
                    )
                )
            )
            if removable:
                removed += 1
                continue
            if isinstance(ins.dest, VarRef):
                live.discard(ins.dest.name)
            for op in ins.operands:
                if isinstance(op, Temp):
                    used_temps.add(op)
                elif isinstance(op, VarRef):
                    live.add(op.name)
            if ins.opcode is Opcode.CALL:
                # The callee may read any global before we regain control.
                live |= global_scalars
            kept.append(ins)
        kept.reverse()
        block.instructions = kept
    return removed


# ----------------------------------------------------------------------
# Pipeline drivers
# ----------------------------------------------------------------------
def run_block_passes(block: BasicBlock, max_iterations: int = 4) -> dict[str, int]:
    """Fold/propagate/DCE to a fixed point (bounded)."""
    totals = {"folded": 0, "propagated": 0, "removed": 0}
    for _ in range(max_iterations):
        folded = fold_constants_in_block(block)
        propagated = propagate_copies_in_block(block)
        removed = eliminate_dead_code_in_block(block)
        totals["folded"] += folded
        totals["propagated"] += propagated
        totals["removed"] += removed
        if folded == propagated == removed == 0:
            break
    return totals


def _empty_totals() -> dict[str, int]:
    return dict.fromkeys(PASS_TOTAL_KEYS, 0)


def _merge(totals: dict[str, int], other: dict[str, int]) -> None:
    for key, value in other.items():
        totals[key] += value


def _sanitize_cfg(cfg: ControlFlowGraph, context: str) -> None:
    errors = [d for d in verify_cfg(cfg) if d.severity == "error"]
    if errors:
        raise VerificationError(errors, context)


def optimize_cfg(
    cfg: ControlFlowGraph,
    *,
    global_passes: bool = True,
    verify: bool | None = None,
    max_iterations: int = 8,
) -> dict[str, int]:
    """Run the local (+ global) pass pipeline over a CFG to a fixed point.

    ``verify=None`` defers to the module sanitizer switch
    (:func:`repro.ir.verify.sanitizer_enabled`); when active, the IR is
    re-verified after every pass iteration and a
    :class:`~repro.ir.verify.VerificationError` pinpoints the iteration
    that corrupted it.
    """
    sanitize = sanitizer_enabled() if verify is None else verify
    totals = _empty_totals()
    for iteration in range(max_iterations):
        changed = 0
        for block in cfg:
            _merge(totals, run_block_passes(block))
        if global_passes:
            branches = simplify_constant_branches(cfg)
            unreachable = len(eliminate_unreachable_blocks(cfg))
            globally_removed = eliminate_dead_code_global(cfg)
            totals["branches_simplified"] += branches
            totals["unreachable_removed"] += unreachable
            totals["global_removed"] += globally_removed
            changed += branches + unreachable + globally_removed
            # Local cleanup of what the global passes exposed counts
            # toward this iteration's progress via the next sweep.
            for block in cfg:
                local = run_block_passes(block)
                _merge(totals, local)
                changed += sum(local.values())
        if sanitize:
            _sanitize_cfg(cfg, f"pass pipeline iteration {iteration}")
        if changed == 0:
            break
    cfg.verify()
    return totals


def optimize_cdfg(
    cdfg: CDFG,
    *,
    global_passes: bool = True,
    verify: bool | None = None,
    max_iterations: int = 8,
) -> dict[str, int]:
    """Optimize every function of a CDFG in place.

    Surviving blocks keep their bb_ids (see
    :func:`eliminate_unreachable_blocks`); the CDFG's id index and DFG
    cache are refreshed to match.  Note: invalidates cached DFGs, so
    this must run before any DFG queries.
    """
    totals = _empty_totals()
    for cfg in cdfg.cfgs.values():
        _merge(
            totals,
            optimize_cfg(
                cfg,
                global_passes=global_passes,
                verify=verify,
                max_iterations=max_iterations,
            ),
        )
    cdfg.prune_removed_blocks()
    cdfg._dfg_cache.clear()
    return totals
