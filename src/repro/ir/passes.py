"""Local optimization passes over lowered CFGs.

These keep the DFGs the mappers see honest: a naive lowering emits folding
opportunities (e.g. linearized 2-D indices with constant rows) and dead
temps that real compilers would never hand to a mapper.  All passes are
block-local, so they preserve the basic-block structure the analysis and
partitioning stages rely on.
"""

from __future__ import annotations

from .basicblock import BasicBlock
from .cfg import ControlFlowGraph
from .operations import (
    Const,
    Instruction,
    Opcode,
    Temp,
    VarRef,
)
from .opsemantics import FOLDABLE_OPCODES, evaluate_opcode


def fold_constants_in_block(block: BasicBlock) -> int:
    """Evaluate ops whose operands are all constants; returns fold count.

    Folded instructions become ``COPY dest <- #value`` so downstream passes
    (copy propagation, DCE) can finish cleaning them up.
    """
    known: dict[Temp, Const] = {}
    folded = 0
    new_instructions: list[Instruction] = []
    for ins in block.instructions:
        operands = tuple(
            known.get(op, op) if isinstance(op, Temp) else op
            for op in ins.operands
        )
        ins = Instruction(
            ins.opcode,
            dest=ins.dest,
            operands=operands,
            targets=ins.targets,
            callee=ins.callee,
            result_type=ins.result_type,
            location=ins.location,
        )
        if (
            ins.opcode in FOLDABLE_OPCODES
            and isinstance(ins.dest, Temp)
            and all(isinstance(op, Const) for op in operands)
        ):
            try:
                value = evaluate_opcode(
                    ins.opcode, tuple(op.value for op in operands)  # type: ignore[union-attr]
                )
            except ZeroDivisionError:
                new_instructions.append(ins)
                continue
            constant = Const(value)
            known[ins.dest] = constant
            new_instructions.append(
                Instruction(
                    Opcode.COPY,
                    dest=ins.dest,
                    operands=(constant,),
                    result_type=ins.result_type,
                    location=ins.location,
                )
            )
            folded += 1
        else:
            if isinstance(ins.dest, Temp):
                known.pop(ins.dest, None)
            new_instructions.append(ins)
    block.instructions = new_instructions
    return folded


def propagate_copies_in_block(block: BasicBlock) -> int:
    """Forward temp-to-temp/const copies into later uses (block-local)."""
    replacement: dict[Temp, object] = {}
    rewrites = 0
    new_instructions: list[Instruction] = []
    for ins in block.instructions:
        operands = []
        changed = False
        for op in ins.operands:
            if isinstance(op, Temp) and op in replacement:
                operands.append(replacement[op])
                changed = True
            else:
                operands.append(op)
        if changed:
            rewrites += 1
            ins = Instruction(
                ins.opcode,
                dest=ins.dest,
                operands=tuple(operands),
                targets=ins.targets,
                callee=ins.callee,
                result_type=ins.result_type,
                location=ins.location,
            )
        if (
            ins.opcode is Opcode.COPY
            and isinstance(ins.dest, Temp)
            and isinstance(ins.operands[0], (Temp, Const))
        ):
            source = ins.operands[0]
            # Chase chains: if the source itself has a replacement use that.
            if isinstance(source, Temp) and source in replacement:
                source = replacement[source]  # type: ignore[assignment]
            replacement[ins.dest] = source
        elif isinstance(ins.dest, Temp):
            replacement.pop(ins.dest, None)
        # A scalar VarRef write invalidates copies that read that VarRef.
        if isinstance(ins.dest, VarRef):
            stale = [
                t
                for t, v in replacement.items()
                if isinstance(v, VarRef) and v.name == ins.dest.name
            ]
            for t in stale:
                del replacement[t]
        new_instructions.append(ins)
    block.instructions = new_instructions
    return rewrites


def eliminate_dead_code_in_block(block: BasicBlock) -> int:
    """Remove pure instructions whose Temp result is never used.

    Temps are block-local by construction, so liveness is purely local.
    CALLs, STOREs, VarRef writes and terminators are always kept.
    """
    used: set[Temp] = set()
    for ins in block.instructions:
        for op in ins.operands:
            if isinstance(op, Temp):
                used.add(op)
    removed = 0
    kept: list[Instruction] = []
    for ins in reversed(block.instructions):
        is_dead = (
            isinstance(ins.dest, Temp)
            and ins.dest not in used
            and ins.opcode is not Opcode.CALL
            and not ins.opcode.is_control
            and ins.opcode is not Opcode.STORE
        )
        if is_dead:
            removed += 1
            continue
        kept.append(ins)
    kept.reverse()
    block.instructions = kept
    return removed


def run_block_passes(block: BasicBlock, max_iterations: int = 4) -> dict[str, int]:
    """Fold/propagate/DCE to a fixed point (bounded)."""
    totals = {"folded": 0, "propagated": 0, "removed": 0}
    for _ in range(max_iterations):
        folded = fold_constants_in_block(block)
        propagated = propagate_copies_in_block(block)
        removed = eliminate_dead_code_in_block(block)
        totals["folded"] += folded
        totals["propagated"] += propagated
        totals["removed"] += removed
        if folded == propagated == removed == 0:
            break
    return totals


def optimize_cfg(cfg: ControlFlowGraph) -> dict[str, int]:
    """Run the local pass pipeline over every block of a CFG."""
    totals = {"folded": 0, "propagated": 0, "removed": 0}
    for block in cfg:
        results = run_block_passes(block)
        for key, value in results.items():
            totals[key] += value
    cfg.verify()
    return totals


def optimize_cdfg(cdfg) -> dict[str, int]:
    """Optimize every function of a CDFG in place.

    Note: invalidates cached DFGs, so this must run before any DFG queries.
    """
    totals = {"folded": 0, "propagated": 0, "removed": 0}
    for cfg in cdfg.cfgs.values():
        results = optimize_cfg(cfg)
        for key, value in results.items():
            totals[key] += value
    cdfg._dfg_cache.clear()
    return totals
